"""Figure 8 (III)-(IV): impact of the number of replicas per shard."""

from repro.experiments import figure8


def test_figure8_impact_of_replicas_per_shard(benchmark, show_table):
    rows = benchmark(figure8.impact_of_replicas)
    show_table("Figure 8 (III)-(IV): impact of replicas per shard", rows)

    series = {
        protocol: {r["replicas_per_shard"]: r for r in rows if r["protocol"] == protocol}
        for protocol in ("RingBFT", "Sharper", "AHL")
    }
    # Increasing intra-shard replication costs throughput for every protocol
    # (PBFT's quadratic phases grow), and RingBFT remains the fastest at
    # every replication level.
    for protocol, points in series.items():
        assert points[28]["throughput_tps"] < points[10]["throughput_tps"]
    for n in (10, 16, 22, 28):
        assert (
            series["RingBFT"][n]["throughput_tps"]
            > series["Sharper"][n]["throughput_tps"]
            > series["AHL"][n]["throughput_tps"]
        )
    # Paper: up to ~16x over AHL and ~11x lower latency.
    assert series["RingBFT"][28]["throughput_tps"] / series["AHL"][28]["throughput_tps"] > 8.0
