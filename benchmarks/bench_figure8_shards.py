"""Figure 8 (I)-(II): impact of the number of shards on throughput and latency."""

from repro.experiments import figure8


def test_figure8_impact_of_shards(benchmark, show_table):
    rows = benchmark(figure8.impact_of_shards)
    show_table("Figure 8 (I)-(II): impact of shards", rows)

    series = {
        protocol: {r["num_shards"]: r for r in rows if r["protocol"] == protocol}
        for protocol in ("RingBFT", "Sharper", "AHL")
    }
    # RingBFT throughput stays roughly flat as shards are added (linear
    # neighbour-to-neighbour communication), while its latency grows with the
    # length of the ring.
    assert series["RingBFT"][15]["throughput_tps"] > 0.7 * series["RingBFT"][3]["throughput_tps"]
    assert series["RingBFT"][15]["latency_s"] > series["RingBFT"][3]["latency_s"]
    # The baselines degrade with more shards; at 15 shards RingBFT wins by the
    # paper's margins (about 4x over Sharper and 16x over AHL).
    assert series["Sharper"][15]["throughput_tps"] < series["Sharper"][3]["throughput_tps"]
    assert series["AHL"][15]["throughput_tps"] < series["AHL"][3]["throughput_tps"]
    ring_15 = series["RingBFT"][15]["throughput_tps"]
    assert ring_15 / series["Sharper"][15]["throughput_tps"] > 2.5
    assert ring_15 / series["AHL"][15]["throughput_tps"] > 8.0
