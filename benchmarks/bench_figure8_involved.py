"""Figure 8 (IX)-(X): impact of the number of involved shards per transaction."""

import pytest

from repro.experiments import figure8


def test_figure8_impact_of_involved_shards(benchmark, show_table):
    rows = benchmark(figure8.impact_of_involved_shards)
    show_table("Figure 8 (IX)-(X): impact of involved shards", rows)

    series = {
        protocol: {r["involved_shards"]: r for r in rows if r["protocol"] == protocol}
        for protocol in ("RingBFT", "Sharper", "AHL")
    }
    # One involved shard degenerates to a single-shard workload: all equal.
    base = series["RingBFT"][1]["throughput_tps"]
    assert series["Sharper"][1]["throughput_tps"] == pytest.approx(base, rel=1e-6)
    assert series["AHL"][1]["throughput_tps"] == pytest.approx(base, rel=1e-6)

    # Throughput decreases as transactions touch more shards ...
    for protocol, points in series.items():
        values = [points[i]["throughput_tps"] for i in sorted(points)]
        assert values == sorted(values, reverse=True)

    # ... and the performance gap between RingBFT and the baselines widens
    # with the involved-shard count (4% at 3 shards growing to ~4x at 15 in
    # the paper; the shape, not the exact factor, is what we check).
    gap_small = series["RingBFT"][3]["throughput_tps"] / series["Sharper"][3]["throughput_tps"]
    gap_large = series["RingBFT"][15]["throughput_tps"] / series["Sharper"][15]["throughput_tps"]
    assert gap_large > gap_small
    assert series["RingBFT"][15]["throughput_tps"] > series["AHL"][15]["throughput_tps"] * 8
