"""Figure 9: throughput under primary failure and view change (protocol mode).

Unlike the Figure 1/8/10 benches, this experiment runs the message-level
simulator: nine RingBFT shards process an open-loop workload while the
primaries of the first three shards crash at t=10s.  The throughput timeline
shows the dip at the failure and the recovery after the view change, which is
the shape Figure 9 reports.
"""

from repro.experiments import figure9
from repro.experiments.figure9 import Figure9Config

#: Scaled-down configuration so the protocol-mode run finishes quickly.
BENCH_CONFIG = Figure9Config(
    num_shards=9,
    replicas_per_shard=4,
    failed_shards=3,
    failure_time=10.0,
    horizon=45.0,
    submit_rate_per_s=4.0,
)


def test_figure9_primary_failure_timeline(benchmark, show_table):
    rows = benchmark.pedantic(figure9.run, args=(BENCH_CONFIG,), rounds=1, iterations=1)
    show_table("Figure 9: throughput under primary failure (3 of 9 shards)", rows)

    summary = rows[-1]
    series = {row["time_s"]: row["throughput_tps"] for row in rows[:-1]}

    before = series[5.0]
    during = series[BENCH_CONFIG.failure_time]
    recovery = max(
        tput for time, tput in series.items() if BENCH_CONFIG.failure_time + 10 <= time <= 40.0
    )
    # The failure dents throughput, the view change restores it, and every
    # submitted transaction is eventually served (liveness).
    assert during < before
    assert recovery >= before * 0.8
    assert summary["replicas_that_changed_view"] >= BENCH_CONFIG.failed_shards * 3
    assert summary["completed_transactions"] == int(
        BENCH_CONFIG.horizon * BENCH_CONFIG.submit_rate_per_s
    )
