"""Pipeline benchmark: protocol throughput vs proposal-window depth k.

The earlier perf PRs attacked *machinery* speed (serialization, MACs, the
event kernel); this one attacks *protocol* throughput: a primary with
``PipelineConfig.depth = k`` runs consensus on up to k sequence numbers
concurrently and sizes batches adaptively from its pending queue, so WAN
round-trips overlap instead of serialising.  Three checks, all measured:

* **sweep** -- a figure-8-style cross-shard workload on the simulator at
  k in {1, 2, 4, 8}; the headline is protocol throughput at k=4 over the
  classic k=1 (gate: >= 1.5x).  The closed loop is latency-bound, so any
  k >= 2 must also hold the recorded 406.4 tps plateau (no regression).
* **open loop** -- Poisson arrivals at fixed offered rates against the same
  topology (rate-shaped pump engaged: ``sustain_threshold`` exceeded, slots
  deferred through cross-shard rotations).  ``depth`` bounds the concurrent
  cross-shard rotations per primary, so sustained throughput must climb
  with k; the CI gate is k=4 >= 1.15x k=2 at the saturating rate, with
  shaped batches averaging >= 2 requests (no one-request crumbs).
* **identity** -- k=1 must reproduce the pre-PR behaviour *byte-identically*:
  the run is replayed with the exact parameters recorded in
  ``baselines/pipeline_k1_chains.json`` and every block hash of every shard
  chain must match.
* **backends** -- ledgers stay consistent under a pipelined window (k=4) on
  all three execution backends (sim, realtime, socket).

Writes ``BENCH_pipeline.json``::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --output BENCH_pipeline.json
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke   # CI gate

The open-loop sweep isolates pipeline capacity from unrelated ceilings: it
uses a large key space (no artificial lock contention at saturation depth)
and fault timers well above the injection horizon (a saturated queue must
not read as a faulty primary -- view-change churn is a correctness topic,
measured elsewhere).  Depth=1 runs the legacy propose-on-fill path with
*unbounded* cross-shard speculation (every rotation in flight at once, no
window to bound it), which is exactly the discipline problem the proposal
window exists to fix; its open-loop numbers are reported as the undisciplined
baseline, not gated.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import PipelineConfig, SystemConfig, TimerConfig, WorkloadConfig  # noqa: E402
from repro.engine import Deployment, PoissonSaturationDriver, WorkloadDriver  # noqa: E402
from repro.txn.transaction import TransactionBuilder  # noqa: E402
from repro.workloads.ycsb import YcsbWorkloadGenerator  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "baselines" / "pipeline_k1_chains.json"

DEFAULTS = dict(
    shards=3,
    replicas=4,
    batch_size=100,
    clients_per_shard=2,
    cross_shard=0.3,
    seed=2022,
    total=360,
    window=4,
    depths=(1, 2, 4, 8),
)

SMOKE_OVERRIDES = dict(depths=(1, 4))

#: Required protocol-throughput ratio of k=4 over k=1 (the CI gate).
SPEEDUP_GATE = 1.5

#: Closed-loop plateau recorded before the rate-shaped pump landed; any
#: pipelined depth must still reach it (the shaped pump's fallback regime is
#: byte-for-byte the proven eager pump, so this is an identity in disguise).
CLOSED_LOOP_FLOOR_TPS = 406.4

#: Open-loop gate: sustained throughput at k=4 over k=2 at the saturating
#: rate.  depth bounds concurrent cross-shard rotations per primary, so
#: doubling it must buy a real capacity step, not noise.
OPEN_LOOP_K4_OVER_K2 = 1.15

#: Open-loop gate: mean proposed batch size at k >= 2.  The rate-shaped pump
#: exists to stop one-request crumb proposals under load.
OPEN_LOOP_MIN_AVG_BATCH = 2.0

OPEN_LOOP = dict(
    # Figure-8 topology and mix, but measured open loop at fixed offered
    # rates.  The saturating rate (last entry) drives the k=4-vs-k=2 gate.
    rates=(1500.0, 2500.0),
    depths=(1, 2, 4, 8),
    # Shaped-batch cap: small enough that a single rotation cannot amortise
    # the whole queue (that is the k=1 mega-batch regime), large enough to
    # keep rotations worth their WAN round-trips.
    max_batch=8,
    # Engage the shaped pump at half a slot of measured demand: the
    # closed-loop macro sits at ~0.14 slots (stays eager), the open-loop
    # rates at >= 0.7 (shaped + deferred slots).
    sustain_threshold=0.5,
    # Capacity isolation: large key space (no lock-contention ceiling) and
    # fault timers beyond the horizon (no view-change churn while saturated).
    num_records=100_000,
    duration_s=8.0,
    warmup_s=2.0,
    drain_s=4.0,
    fault_timers=(30.0, 60.0, 90.0, 120.0),
)

OPEN_LOOP_SMOKE = dict(rates=(2500.0,), depths=(2, 4))


# ----------------------------------------------------------------------
# k-sweep: figure-8-style cross-shard macro on the simulator
# ----------------------------------------------------------------------


def _sweep_run(depth: int, params: dict) -> dict:
    """One closed-loop cross-shard run at window depth ``depth``.

    Clients are co-located with their shard's region (the paper's setup:
    clients talk to a nearby primary over a LAN hop, shards talk to each
    other over the WAN), so the queue the adaptive batcher sees reflects
    WAN consensus latency rather than client RTT.
    """
    workload = WorkloadConfig(
        num_records=1_000,
        cross_shard_fraction=params["cross_shard"],
        batch_size=params["batch_size"],
        num_clients=params["shards"] * params["clients_per_shard"],
        seed=params["seed"],
    )
    config = SystemConfig.uniform(
        params["shards"],
        params["replicas"],
        workload=workload,
        pipeline=PipelineConfig(depth=depth),
    )
    deployment = Deployment.build(
        config,
        backend="sim",
        num_clients=0,
        batch_size=params["batch_size"],
        seed=params["seed"],
    )
    try:
        for i, shard in enumerate(config.shards):
            for j in range(params["clients_per_shard"]):
                deployment.add_client(f"client-{i}-{j}", region=shard.region)
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, workload, seed=params["seed"]
        )
        driver = WorkloadDriver(
            deployment,
            generator,
            total=params["total"],
            window=params["window"],
            poll_interval=0.005,
        )
        result = driver.run(timeout=600.0)
    finally:
        deployment.close()
    return {
        "depth": depth,
        "completed": result.completed,
        "submitted": result.submitted,
        "ledgers_consistent": result.ledgers_consistent,
        "protocol_throughput_tps": round(result.throughput_tps, 1),
        "avg_latency_s": round(result.avg_latency, 4),
        "wall_clock_s": round(result.wall_clock_s, 4),
        "pipeline": result.pipeline_stats,
    }


def _sweep(params: dict) -> dict:
    runs = {str(depth): _sweep_run(depth, params) for depth in params["depths"]}
    k1 = runs.get("1", {}).get("protocol_throughput_tps", 0.0)
    speedups = {
        depth: round(run["protocol_throughput_tps"] / k1, 2) if k1 else 0.0
        for depth, run in runs.items()
    }
    return {"runs": runs, "speedup_vs_k1": speedups}


# ----------------------------------------------------------------------
# open-loop k-sweep: Poisson saturation against the same topology
# ----------------------------------------------------------------------


def _open_loop_run(depth: int, rate: float, params: dict, open_params: dict) -> dict:
    """One open-loop Poisson run at window depth ``depth`` and ``rate`` tps."""
    workload = WorkloadConfig(
        num_records=open_params["num_records"],
        cross_shard_fraction=params["cross_shard"],
        batch_size=params["batch_size"],
        num_clients=params["shards"] * params["clients_per_shard"],
        seed=params["seed"],
    )
    local, remote, transmit, client = open_params["fault_timers"]
    config = SystemConfig.uniform(
        params["shards"],
        params["replicas"],
        workload=workload,
        timers=TimerConfig(
            local_timeout=local,
            remote_timeout=remote,
            transmit_timeout=transmit,
            client_timeout=client,
        ),
        pipeline=PipelineConfig(
            depth=depth,
            max_batch_size=open_params["max_batch"],
            sustain_threshold=open_params["sustain_threshold"],
        ),
    )
    deployment = Deployment.build(
        config,
        backend="sim",
        num_clients=0,
        batch_size=params["batch_size"],
        seed=params["seed"],
    )
    try:
        for i, shard in enumerate(config.shards):
            for j in range(params["clients_per_shard"]):
                deployment.add_client(f"client-{i}-{j}", region=shard.region)
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, workload, seed=params["seed"]
        )
        driver = PoissonSaturationDriver(
            deployment,
            generator,
            rate_per_second=rate,
            duration_s=open_params["duration_s"],
            warmup_s=open_params["warmup_s"],
            drain_s=open_params["drain_s"],
            seed=params["seed"],
        )
        result = driver.run()
    finally:
        deployment.close()
    return {
        "depth": depth,
        "offered_rate_tps": rate,
        "submitted": driver.submitted,
        "completed": result.completed,
        "sustained_tps": round(driver.sustained_tps, 1),
        "ledgers_consistent": result.ledgers_consistent,
        "wall_clock_s": round(result.wall_clock_s, 4),
        # Gauges captured at end of injection, while the load was applied.
        "pipeline": driver.steady_pipeline_stats,
    }


def _open_loop_sweep(params: dict, open_params: dict) -> dict:
    """Sustained throughput per depth per offered rate, plus the gate ratio."""
    runs: dict[str, dict[str, dict]] = {}
    for rate in open_params["rates"]:
        for depth in open_params["depths"]:
            runs.setdefault(str(int(rate)), {})[str(depth)] = _open_loop_run(
                depth, rate, params, open_params
            )
    saturating = str(int(open_params["rates"][-1]))
    at_sat = runs.get(saturating, {})
    k2 = at_sat.get("2", {}).get("sustained_tps", 0.0)
    k4 = at_sat.get("4", {}).get("sustained_tps", 0.0)
    return {
        "runs": runs,
        "saturating_rate_tps": float(saturating),
        "k4_over_k2_sustained": round(k4 / k2, 3) if k2 else 0.0,
    }


# ----------------------------------------------------------------------
# identity: k=1 reproduces the pre-PR chains byte-for-byte
# ----------------------------------------------------------------------


def _chain_identity() -> dict:
    """Replay the recorded pre-PR run with depth=1 and diff every block hash."""
    baseline = json.loads(BASELINE_PATH.read_text())
    params = baseline["params"]
    workload = WorkloadConfig(
        num_records=1_000,
        cross_shard_fraction=params["cross_shard"],
        batch_size=params["batch_size"],
        num_clients=4,
        seed=params["seed"],
    )
    config = SystemConfig.uniform(
        params["shards"],
        params["replicas"],
        workload=workload,
        pipeline=PipelineConfig(depth=1),
    )
    deployment = Deployment.build(
        config,
        backend="sim",
        num_clients=4,
        batch_size=params["batch_size"],
        seed=params["seed"],
    )
    try:
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, workload, seed=params["seed"]
        )
        driver = WorkloadDriver(deployment, generator, total=params["total"], window=4)
        result = driver.run(timeout=600.0)
        chains = {
            str(shard): [
                block.block_hash().hex()
                for block in deployment.shard_replicas(shard)[0].ledger.blocks()
            ]
            for shard in config.shard_ids
        }
    finally:
        deployment.close()
    combined = hashlib.sha256(
        "|".join(h for s in sorted(chains) for h in chains[s]).encode()
    ).hexdigest()
    return {
        "match": combined == baseline["combined_chain_digest"]
        and chains == baseline["chains"],
        "completed": result.completed,
        "ledgers_consistent": result.ledgers_consistent,
        "expected_digest": baseline["combined_chain_digest"],
        "actual_digest": combined,
    }


# ----------------------------------------------------------------------
# backends: consistent ledgers under a pipelined window everywhere
# ----------------------------------------------------------------------


def _backend_txns(num_shards: int = 2, count: int = 16) -> list:
    """A burst of single- and cross-shard transactions submitted at once,
    which is exactly the arrival pattern that fills a proposal window."""
    txns = []
    for i in range(count):
        if i % 4 == 0:
            builder = TransactionBuilder(f"pipe-x{i}", "client-0")
            for shard in range(num_shards):
                builder.read_modify_write(shard, f"user{3 + shard}", f"x{i}@{shard}")
            txns.append(builder.build())
        else:
            shard = i % num_shards
            txns.append(
                TransactionBuilder(f"pipe-l{i}", f"client-{i % 2}")
                .read_modify_write(shard, f"user{5 + i % 7}", f"v{i}")
                .build()
            )
    return txns


def _backend_consistency(depth: int = 4) -> dict:
    reports = {}
    for backend in ("sim", "realtime", "socket"):
        config = SystemConfig.uniform(
            2,
            4,
            workload=WorkloadConfig(
                num_records=200,
                cross_shard_fraction=0.25,
                batch_size=1,
                num_clients=2,
                seed=11,
            ),
            pipeline=PipelineConfig(depth=depth),
        )
        deployment = Deployment.build(
            config, backend=backend, num_clients=2, batch_size=1, time_scale=0.02, seed=11
        )
        try:
            result = deployment.run_workload(_backend_txns(), timeout=120.0)
        finally:
            deployment.close()
        reports[backend] = {
            "completed": result.completed,
            "submitted": result.submitted,
            "ledgers_consistent": result.ledgers_consistent,
            "peak_open_slots": result.pipeline_stats.get("peak_open_slots", 0),
        }
    return reports


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


def run_benchmark(smoke: bool = False, **overrides) -> dict:
    params = {**DEFAULTS, **(SMOKE_OVERRIDES if smoke else {}), **overrides}
    open_params = {**OPEN_LOOP, **(OPEN_LOOP_SMOKE if smoke else {})}
    sweep = _sweep(params)
    open_loop = _open_loop_sweep(params, open_params)
    identity = _chain_identity()
    backends = _backend_consistency(depth=max(params["depths"]))

    k4_speedup = sweep["speedup_vs_k1"].get("4", 0.0)
    saturating = open_loop["runs"].get(str(int(open_params["rates"][-1])), {})
    shaped_runs = [run for d, run in saturating.items() if int(d) > 1]
    verdicts = {
        # CI gate (pipeline-perf-smoke): k=4 at least 1.5x the classic k=1.
        "speedup_k4_1_5x": k4_speedup >= SPEEDUP_GATE,
        # CI gate: the closed loop never regresses -- every pipelined depth
        # still reaches the plateau the eager pump recorded.
        "closed_loop_no_regression": all(
            run["protocol_throughput_tps"] >= CLOSED_LOOP_FLOOR_TPS
            for depth, run in sweep["runs"].items()
            if int(depth) > 1
        ),
        # CI gate: depth buys real open-loop capacity at the saturating rate.
        "open_loop_k4_beats_k2": (
            open_loop["k4_over_k2_sustained"] >= OPEN_LOOP_K4_OVER_K2
        ),
        # CI gate: the shaped pump proposes batches, not crumbs, under load.
        "open_loop_no_crumbs": bool(shaped_runs)
        and all(
            run["pipeline"].get("avg_batch_size", 0.0) >= OPEN_LOOP_MIN_AVG_BATCH
            for run in shaped_runs
        ),
        # Safety: pipelining off means bit-for-bit the pre-PR protocol.
        "k1_chain_identity": identity["match"],
        "completed_all_depths": all(
            run["completed"] == run["submitted"] for run in sweep["runs"].values()
        ),
        "ledgers_consistent_all_depths": all(
            run["ledgers_consistent"] for run in sweep["runs"].values()
        ),
        "ledgers_consistent_open_loop": all(
            run["ledgers_consistent"]
            for by_depth in open_loop["runs"].values()
            for run in by_depth.values()
        ),
        "ledgers_consistent_all_backends": all(
            report["ledgers_consistent"] for report in backends.values()
        ),
        "window_actually_opened": all(
            run["pipeline"].get("peak_open_slots", 0) > 1
            for depth, run in sweep["runs"].items()
            if int(depth) > 1
        ),
    }
    verdicts["ok"] = all(verdicts.values())
    return {
        "benchmark": "pipeline",
        "mode": "smoke" if smoke else "full",
        "params": {**params, "depths": list(params["depths"])},
        "open_loop_params": {
            **open_params,
            "rates": list(open_params["rates"]),
            "depths": list(open_params["depths"]),
            "fault_timers": list(open_params["fault_timers"]),
        },
        "sweep": sweep,
        "open_loop": open_loop,
        "k1_identity": identity,
        "backends": backends,
        "verdicts": verdicts,
    }


# ----------------------------------------------------------------------
# pytest entry point (run explicitly: python -m pytest benchmarks/bench_pipeline.py)
# ----------------------------------------------------------------------


def test_pipeline_speedup_and_safety():
    report = run_benchmark(smoke=True)
    assert report["verdicts"]["ok"], json.dumps(
        {
            "speedup_vs_k1": report["sweep"]["speedup_vs_k1"],
            "k1_identity": report["k1_identity"],
            "backends": report["backends"],
            "verdicts": report["verdicts"],
        },
        indent=2,
    )


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI run (k in {1,4})")
    parser.add_argument("--total", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--window", type=int, default=None)
    parser.add_argument("--cross-shard", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--depths", type=int, nargs="+", default=None, help="window depths to sweep"
    )
    parser.add_argument("--output", type=Path, default=Path("BENCH_pipeline.json"))
    args = parser.parse_args(argv)

    overrides = {
        key: value
        for key, value in dict(
            total=args.total,
            batch_size=args.batch_size,
            window=args.window,
            cross_shard=args.cross_shard,
            seed=args.seed,
            depths=tuple(args.depths) if args.depths else None,
        ).items()
        if value is not None
    }
    report = run_benchmark(smoke=args.smoke, **overrides)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.output}")
    for depth, run in report["sweep"]["runs"].items():
        pipe = run["pipeline"]
        print(
            f"k={depth:>2s}: {run['protocol_throughput_tps']:>8} tps"
            f"  (x{report['sweep']['speedup_vs_k1'][depth]:<5} vs k=1,"
            f" peak {pipe.get('peak_open_slots', 0)} slots,"
            f" avg batch {pipe.get('avg_batch_size', 0.0)},"
            f" consistent={run['ledgers_consistent']})"
        )
    for rate, by_depth in report["open_loop"]["runs"].items():
        for depth, run in by_depth.items():
            pipe = run["pipeline"]
            print(
                f"open k={depth:>2s} @ {rate:>5s}/s: {run['sustained_tps']:>8} tps sustained"
                f"  (avg batch {pipe.get('avg_batch_size', 0.0)},"
                f" {pipe.get('shaped_batches', 0)} shaped /"
                f" {pipe.get('fallback_batches', 0)} eager,"
                f" occupancy {pipe.get('slot_occupancy', 0.0)})"
            )
    print(
        "open-loop k4/k2    : "
        f"x{report['open_loop']['k4_over_k2_sustained']}"
        f" @ {report['open_loop']['saturating_rate_tps']:.0f}/s offered"
    )
    identity = report["k1_identity"]
    print(f"k=1 chain identity : {'MATCH' if identity['match'] else 'MISMATCH'}"
          f" ({identity['actual_digest'][:16]})")
    for backend, rep in report["backends"].items():
        print(
            f"backend {backend:8s}: {rep['completed']}/{rep['submitted']} completed,"
            f" consistent={rep['ledgers_consistent']},"
            f" peak {rep['peak_open_slots']} slots"
        )
    print(f"verdict            : {'OK' if report['verdicts']['ok'] else 'FAIL'}")
    return 0 if report["verdicts"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
