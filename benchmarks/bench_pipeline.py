"""Pipeline benchmark: protocol throughput vs proposal-window depth k.

The earlier perf PRs attacked *machinery* speed (serialization, MACs, the
event kernel); this one attacks *protocol* throughput: a primary with
``PipelineConfig.depth = k`` runs consensus on up to k sequence numbers
concurrently and sizes batches adaptively from its pending queue, so WAN
round-trips overlap instead of serialising.  Three checks, all measured:

* **sweep** -- a figure-8-style cross-shard workload on the simulator at
  k in {1, 2, 4, 8}; the headline is protocol throughput at k=4 over the
  classic k=1 (gate: >= 1.5x).
* **identity** -- k=1 must reproduce the pre-PR behaviour *byte-identically*:
  the run is replayed with the exact parameters recorded in
  ``baselines/pipeline_k1_chains.json`` and every block hash of every shard
  chain must match.
* **backends** -- ledgers stay consistent under a pipelined window (k=4) on
  all three execution backends (sim, realtime, socket).

Writes ``BENCH_pipeline.json``::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --output BENCH_pipeline.json
    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke   # CI gate

Known saturation caveat (documented, not hidden): the sweep uses a closed
loop sized so arrival rate, not batch capacity, is the bottleneck.  With far
larger windows per client the k=1 primary eventually mega-batches every
window into one proposal, which amortises cross-shard rotations so well that
pipelining's overlap cannot beat it -- the window helps most at realistic
queue depths, not at unbounded saturation.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import PipelineConfig, SystemConfig, WorkloadConfig  # noqa: E402
from repro.engine import Deployment, WorkloadDriver  # noqa: E402
from repro.txn.transaction import TransactionBuilder  # noqa: E402
from repro.workloads.ycsb import YcsbWorkloadGenerator  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "baselines" / "pipeline_k1_chains.json"

DEFAULTS = dict(
    shards=3,
    replicas=4,
    batch_size=100,
    clients_per_shard=2,
    cross_shard=0.3,
    seed=2022,
    total=360,
    window=4,
    depths=(1, 2, 4, 8),
)

SMOKE_OVERRIDES = dict(depths=(1, 4))

#: Required protocol-throughput ratio of k=4 over k=1 (the CI gate).
SPEEDUP_GATE = 1.5


# ----------------------------------------------------------------------
# k-sweep: figure-8-style cross-shard macro on the simulator
# ----------------------------------------------------------------------


def _sweep_run(depth: int, params: dict) -> dict:
    """One closed-loop cross-shard run at window depth ``depth``.

    Clients are co-located with their shard's region (the paper's setup:
    clients talk to a nearby primary over a LAN hop, shards talk to each
    other over the WAN), so the queue the adaptive batcher sees reflects
    WAN consensus latency rather than client RTT.
    """
    workload = WorkloadConfig(
        num_records=1_000,
        cross_shard_fraction=params["cross_shard"],
        batch_size=params["batch_size"],
        num_clients=params["shards"] * params["clients_per_shard"],
        seed=params["seed"],
    )
    config = SystemConfig.uniform(
        params["shards"],
        params["replicas"],
        workload=workload,
        pipeline=PipelineConfig(depth=depth),
    )
    deployment = Deployment.build(
        config,
        backend="sim",
        num_clients=0,
        batch_size=params["batch_size"],
        seed=params["seed"],
    )
    try:
        for i, shard in enumerate(config.shards):
            for j in range(params["clients_per_shard"]):
                deployment.add_client(f"client-{i}-{j}", region=shard.region)
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, workload, seed=params["seed"]
        )
        driver = WorkloadDriver(
            deployment,
            generator,
            total=params["total"],
            window=params["window"],
            poll_interval=0.005,
        )
        result = driver.run(timeout=600.0)
    finally:
        deployment.close()
    return {
        "depth": depth,
        "completed": result.completed,
        "submitted": result.submitted,
        "ledgers_consistent": result.ledgers_consistent,
        "protocol_throughput_tps": round(result.throughput_tps, 1),
        "avg_latency_s": round(result.avg_latency, 4),
        "wall_clock_s": round(result.wall_clock_s, 4),
        "pipeline": result.pipeline_stats,
    }


def _sweep(params: dict) -> dict:
    runs = {str(depth): _sweep_run(depth, params) for depth in params["depths"]}
    k1 = runs.get("1", {}).get("protocol_throughput_tps", 0.0)
    speedups = {
        depth: round(run["protocol_throughput_tps"] / k1, 2) if k1 else 0.0
        for depth, run in runs.items()
    }
    return {"runs": runs, "speedup_vs_k1": speedups}


# ----------------------------------------------------------------------
# identity: k=1 reproduces the pre-PR chains byte-for-byte
# ----------------------------------------------------------------------


def _chain_identity() -> dict:
    """Replay the recorded pre-PR run with depth=1 and diff every block hash."""
    baseline = json.loads(BASELINE_PATH.read_text())
    params = baseline["params"]
    workload = WorkloadConfig(
        num_records=1_000,
        cross_shard_fraction=params["cross_shard"],
        batch_size=params["batch_size"],
        num_clients=4,
        seed=params["seed"],
    )
    config = SystemConfig.uniform(
        params["shards"],
        params["replicas"],
        workload=workload,
        pipeline=PipelineConfig(depth=1),
    )
    deployment = Deployment.build(
        config,
        backend="sim",
        num_clients=4,
        batch_size=params["batch_size"],
        seed=params["seed"],
    )
    try:
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, workload, seed=params["seed"]
        )
        driver = WorkloadDriver(deployment, generator, total=params["total"], window=4)
        result = driver.run(timeout=600.0)
        chains = {
            str(shard): [
                block.block_hash().hex()
                for block in deployment.shard_replicas(shard)[0].ledger.blocks()
            ]
            for shard in config.shard_ids
        }
    finally:
        deployment.close()
    combined = hashlib.sha256(
        "|".join(h for s in sorted(chains) for h in chains[s]).encode()
    ).hexdigest()
    return {
        "match": combined == baseline["combined_chain_digest"]
        and chains == baseline["chains"],
        "completed": result.completed,
        "ledgers_consistent": result.ledgers_consistent,
        "expected_digest": baseline["combined_chain_digest"],
        "actual_digest": combined,
    }


# ----------------------------------------------------------------------
# backends: consistent ledgers under a pipelined window everywhere
# ----------------------------------------------------------------------


def _backend_txns(num_shards: int = 2, count: int = 16) -> list:
    """A burst of single- and cross-shard transactions submitted at once,
    which is exactly the arrival pattern that fills a proposal window."""
    txns = []
    for i in range(count):
        if i % 4 == 0:
            builder = TransactionBuilder(f"pipe-x{i}", "client-0")
            for shard in range(num_shards):
                builder.read_modify_write(shard, f"user{3 + shard}", f"x{i}@{shard}")
            txns.append(builder.build())
        else:
            shard = i % num_shards
            txns.append(
                TransactionBuilder(f"pipe-l{i}", f"client-{i % 2}")
                .read_modify_write(shard, f"user{5 + i % 7}", f"v{i}")
                .build()
            )
    return txns


def _backend_consistency(depth: int = 4) -> dict:
    reports = {}
    for backend in ("sim", "realtime", "socket"):
        config = SystemConfig.uniform(
            2,
            4,
            workload=WorkloadConfig(
                num_records=200,
                cross_shard_fraction=0.25,
                batch_size=1,
                num_clients=2,
                seed=11,
            ),
            pipeline=PipelineConfig(depth=depth),
        )
        deployment = Deployment.build(
            config, backend=backend, num_clients=2, batch_size=1, time_scale=0.02, seed=11
        )
        try:
            result = deployment.run_workload(_backend_txns(), timeout=120.0)
        finally:
            deployment.close()
        reports[backend] = {
            "completed": result.completed,
            "submitted": result.submitted,
            "ledgers_consistent": result.ledgers_consistent,
            "peak_open_slots": result.pipeline_stats.get("peak_open_slots", 0),
        }
    return reports


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


def run_benchmark(smoke: bool = False, **overrides) -> dict:
    params = {**DEFAULTS, **(SMOKE_OVERRIDES if smoke else {}), **overrides}
    sweep = _sweep(params)
    identity = _chain_identity()
    backends = _backend_consistency(depth=max(params["depths"]))

    k4_speedup = sweep["speedup_vs_k1"].get("4", 0.0)
    verdicts = {
        # CI gate (pipeline-perf-smoke): k=4 at least 1.5x the classic k=1.
        "speedup_k4_1_5x": k4_speedup >= SPEEDUP_GATE,
        # Safety: pipelining off means bit-for-bit the pre-PR protocol.
        "k1_chain_identity": identity["match"],
        "completed_all_depths": all(
            run["completed"] == run["submitted"] for run in sweep["runs"].values()
        ),
        "ledgers_consistent_all_depths": all(
            run["ledgers_consistent"] for run in sweep["runs"].values()
        ),
        "ledgers_consistent_all_backends": all(
            report["ledgers_consistent"] for report in backends.values()
        ),
        "window_actually_opened": all(
            run["pipeline"].get("peak_open_slots", 0) > 1
            for depth, run in sweep["runs"].items()
            if int(depth) > 1
        ),
    }
    verdicts["ok"] = all(verdicts.values())
    return {
        "benchmark": "pipeline",
        "mode": "smoke" if smoke else "full",
        "params": {**params, "depths": list(params["depths"])},
        "sweep": sweep,
        "k1_identity": identity,
        "backends": backends,
        "verdicts": verdicts,
    }


# ----------------------------------------------------------------------
# pytest entry point (run explicitly: python -m pytest benchmarks/bench_pipeline.py)
# ----------------------------------------------------------------------


def test_pipeline_speedup_and_safety():
    report = run_benchmark(smoke=True)
    assert report["verdicts"]["ok"], json.dumps(
        {
            "speedup_vs_k1": report["sweep"]["speedup_vs_k1"],
            "k1_identity": report["k1_identity"],
            "backends": report["backends"],
            "verdicts": report["verdicts"],
        },
        indent=2,
    )


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI run (k in {1,4})")
    parser.add_argument("--total", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--window", type=int, default=None)
    parser.add_argument("--cross-shard", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--depths", type=int, nargs="+", default=None, help="window depths to sweep"
    )
    parser.add_argument("--output", type=Path, default=Path("BENCH_pipeline.json"))
    args = parser.parse_args(argv)

    overrides = {
        key: value
        for key, value in dict(
            total=args.total,
            batch_size=args.batch_size,
            window=args.window,
            cross_shard=args.cross_shard,
            seed=args.seed,
            depths=tuple(args.depths) if args.depths else None,
        ).items()
        if value is not None
    }
    report = run_benchmark(smoke=args.smoke, **overrides)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.output}")
    for depth, run in report["sweep"]["runs"].items():
        pipe = run["pipeline"]
        print(
            f"k={depth:>2s}: {run['protocol_throughput_tps']:>8} tps"
            f"  (x{report['sweep']['speedup_vs_k1'][depth]:<5} vs k=1,"
            f" peak {pipe.get('peak_open_slots', 0)} slots,"
            f" avg batch {pipe.get('avg_batch_size', 0.0)},"
            f" consistent={run['ledgers_consistent']})"
        )
    identity = report["k1_identity"]
    print(f"k=1 chain identity : {'MATCH' if identity['match'] else 'MISMATCH'}"
          f" ({identity['actual_digest'][:16]})")
    for backend, rep in report["backends"].items():
        print(
            f"backend {backend:8s}: {rep['completed']}/{rep['submitted']} completed,"
            f" consistent={rep['ledgers_consistent']},"
            f" peak {rep['peak_open_slots']} slots"
        )
    print(f"verdict            : {'OK' if report['verdicts']['ok'] else 'FAIL'}")
    return 0 if report["verdicts"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
