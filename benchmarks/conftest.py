"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's tables/figures and prints the
series it produced (run pytest with ``-s`` to see the tables inline); the
pytest-benchmark timing measures how long regenerating the figure takes.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture
def show_table():
    """Print an experiment's rows as an aligned table under a heading."""

    from repro.experiments.runner import format_table

    def _show(title: str, rows: list[dict]) -> None:
        print(f"\n=== {title} ===")
        print(format_table(rows))

    return _show
