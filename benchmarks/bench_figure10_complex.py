"""Figure 10: complex cross-shard transactions with remote-read dependencies.

Regenerates the RingBFT-only sweep over 0-64 remote reads per transaction at
paper scale with the analytical model, and additionally validates the second
rotation end-to-end in the message-level simulator (a complex transaction
whose dependencies must be resolved from the accumulated write sets).
"""

from repro.experiments import figure10


def test_figure10_remote_reads_sweep(benchmark, show_table):
    rows = benchmark(figure10.run)
    show_table("Figure 10: impact of remote reads (complex transactions)", rows)

    values = {row["remote_reads"]: row["throughput_tps"] for row in rows}
    ordered = [values[count] for count in sorted(values)]
    # Throughput decreases as dependencies are added, but stays "reasonable"
    # (Section 8.8: at 64 remote reads RingBFT still beats both baselines'
    # zero-dependency throughput).
    assert ordered == sorted(ordered, reverse=True)
    assert values[64] > 0.3 * values[0]


def test_figure10_protocol_mode_dependency_resolution(benchmark):
    summary = benchmark.pedantic(
        figure10.run_protocol_validation,
        kwargs={"num_shards": 4, "remote_reads": 6},
        rounds=1,
        iterations=1,
    )
    print(f"\n=== Figure 10 protocol-mode validation === {summary}")
    assert summary["completed"]
    assert summary["is_complex"]
    assert summary["resolved_dependencies"] == summary["expected_dependencies"]
