"""Hot-path benchmark: binary codec + memoised digests + multicast fast path.

Measures the serialization/authentication overhaul against the pre-PR
baseline, which is reproduced in-process by ``repro.common.codec``'s legacy
mode (per-call ``json.dumps(..., sort_keys=True)`` canonicalization, no
payload/digest memoisation, every MAC tag re-serialising the payload).  Both
modes run the *same* protocol -- per-peer MAC vectors, identical message set
and quorum logic -- so every speedup below is apples-to-apples.

* **micro** -- ops/sec on the primitives the protocol hammers:
  ``encode_digest`` (re-deriving the digest of a live message set, the
  pattern of every send/reception/retransmission), ``encode_cold`` (first
  encode of a fresh envelope, codec vs JSON, no memo effect),
  ``mac_broadcast`` (authenticating one broadcast for an n-peer audience),
  ``vote_encode`` (first encode of fresh Prepare/Commit/Checkpoint votes:
  the struct-packed fixed layouts vs legacy JSON, with the generic codec
  walker recorded alongside), and ``kernel_events`` (simulator calendar
  throughput: arg-tuple delivery events vs one closure per delivery).
* **macro** -- a figure-8-style cross-shard workload on the simulator, run
  once per mode: wall clock, simulator events/sec, and protocol throughput.

Writes ``BENCH_hotpath.json`` recording baseline, optimized, and speedups so
the improvement is measured, not asserted::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --output BENCH_hotpath.json
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke   # CI gate (>= 2x digest micro)
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.common import codec  # noqa: E402
from repro.common.crypto import KeyStore, MacAuthenticator, SignatureScheme  # noqa: E402
from repro.common.messages import (  # noqa: E402
    Checkpoint,
    ClientRequest,
    Commit,
    CommitCertificate,
    Forward,
    Prepare,
    PrePrepare,
    batch_digest,
)
from repro.common.types import ReplicaId  # noqa: E402
from repro.config import SystemConfig, WorkloadConfig  # noqa: E402
from repro.engine import Deployment, WorkloadDriver  # noqa: E402
from repro.txn.transaction import TransactionBuilder  # noqa: E402
from repro.workloads.ycsb import YcsbWorkloadGenerator  # noqa: E402

DEFAULTS = dict(
    shards=3,
    replicas=4,
    batch_size=4,
    cross_shard=0.3,
    seed=2022,
    macro_total=240,
    micro_seconds=0.4,
    audience=16,
)

SMOKE_OVERRIDES = dict(macro_total=60, micro_seconds=0.15)


# ----------------------------------------------------------------------
# fixtures: a representative live message set
# ----------------------------------------------------------------------


def _requests(count: int = 8) -> tuple[ClientRequest, ...]:
    requests = []
    for i in range(count):
        txn = (
            TransactionBuilder(f"bench-{i}", f"client-{i % 4}")
            .read_modify_write(i % 3, f"user{i}", f"value-{i}")
            .read_modify_write((i + 1) % 3, f"user{i + 40}", f"value-{i + 40}")
            .build()
        )
        requests.append(ClientRequest(sender=f"client-{i % 4}", transaction=txn))
    return tuple(requests)


def _message_set() -> list:
    """One of each hot message type, sharing a batch like a real rotation."""
    requests = _requests()
    digest = batch_digest(requests)
    scheme = SignatureScheme(KeyStore())
    commit = Commit(sender=ReplicaId(0, 1), view=0, sequence=3, batch_digest=digest)
    signatures = tuple(
        scheme.sign(f"r{i}@S0", commit.signed_payload()) for i in range(3)
    )
    certificate = CommitCertificate(
        shard=0, view=0, sequence=3, batch_digest=digest, signatures=signatures
    )
    return [
        PrePrepare(
            sender=ReplicaId(0, 0), view=0, sequence=3, batch_digest=digest, requests=requests
        ),
        commit,
        Forward(
            sender=ReplicaId(0, 1),
            requests=requests,
            certificate=certificate,
            batch_digest=digest,
            origin_shard=0,
            read_sets={0: {f"user{i}": f"value-{i}" for i in range(8)}},
        ),
        Checkpoint(sender=ReplicaId(0, 1), sequence=4, state_digest=digest),
    ]


# ----------------------------------------------------------------------
# micro benchmarks
# ----------------------------------------------------------------------


def _ops_per_sec(op, *, seconds: float, batch: int = 1) -> float:
    """Run ``op`` repeatedly for ~``seconds`` and return operations/sec."""
    # Warm once so one-time costs (memo population in optimized mode) are
    # amortised the way they are in a real run.
    op()
    count = 0
    start = time.perf_counter()
    deadline = start + seconds
    while True:
        op()
        count += batch
        now = time.perf_counter()
        if now >= deadline:
            return count / (now - start)


def _micro_encode_digest(seconds: float) -> dict:
    """Re-deriving digests of live messages: the per-send/reception pattern."""

    def run(legacy: bool) -> float:
        ctx = codec.legacy_json_encoding() if legacy else contextlib.nullcontext()
        with ctx:
            messages = _message_set()
            per_call = len(messages) + len(messages[0].requests)

            def op() -> None:
                for message in messages:
                    message.digest()
                # batch_digest re-derivation: every PrePrepare reception does this.
                batch_digest(messages[0].requests)

            return _ops_per_sec(op, seconds=seconds, batch=per_call)

    baseline = run(legacy=True)
    optimized = run(legacy=False)
    return {
        "unit": "digest ops/sec",
        "baseline_ops_per_sec": round(baseline),
        "optimized_ops_per_sec": round(optimized),
        "speedup": round(optimized / baseline, 2) if baseline else 0.0,
    }


def _micro_encode_cold(seconds: float) -> dict:
    """First-time encode of fresh envelopes: codec vs JSON, no memo effect."""

    def run(legacy: bool) -> float:
        ctx = codec.legacy_json_encoding() if legacy else contextlib.nullcontext()
        with ctx:
            counter = iter(range(1_000_000_000))

            def op() -> None:
                i = next(counter)
                txn = (
                    TransactionBuilder(f"cold-{i}", "client-0")
                    .read_modify_write(0, f"user{i % 97}", "v")
                    .build()
                )
                txn.digest()

            return _ops_per_sec(op, seconds=seconds)

    baseline = run(legacy=True)
    optimized = run(legacy=False)
    return {
        "unit": "fresh envelope encodes/sec",
        "baseline_ops_per_sec": round(baseline),
        "optimized_ops_per_sec": round(optimized),
        "speedup": round(optimized / baseline, 2) if baseline else 0.0,
    }


def _micro_mac_broadcast(seconds: float, audience: int) -> dict:
    """Authenticating one broadcast for an n-peer audience.

    Both modes compute the same per-peer MAC vector (the PBFT authenticator
    -- the key structure is part of the trust model and is never weakened
    for speed).  Baseline: every tag re-serialises the payload (the pre-codec
    cost profile).  Optimized: all n tags share one memoised binary payload,
    so the comparison isolates the serialization win under an identical
    authentication scheme.
    """
    keystore = KeyStore()
    mac = MacAuthenticator(owner="r0@S0", keystore=keystore)
    peers = [f"r{i}@S0" for i in range(1, audience + 1)]

    def run(legacy: bool) -> float:
        ctx = codec.legacy_json_encoding() if legacy else contextlib.nullcontext()
        with ctx:
            message = _message_set()[0]

            def op() -> None:
                # payload_bytes() re-serialises per tag in legacy mode and is
                # a memo hit otherwise -- the only difference between modes.
                for peer in peers:
                    mac.tag(peer, message.payload_bytes())

            return _ops_per_sec(op, seconds=seconds)

    baseline = run(legacy=True)
    optimized = run(legacy=False)
    return {
        "unit": f"broadcast authentications/sec (audience={audience})",
        "baseline_ops_per_sec": round(baseline),
        "optimized_ops_per_sec": round(optimized),
        "speedup": round(optimized / baseline, 2) if baseline else 0.0,
    }


def _micro_vote_encode(seconds: float) -> dict:
    """First encode of fresh vote messages: packed fixed layouts vs JSON.

    Every consensus round mints fresh Prepare/Commit/Checkpoint objects whose
    first encode cannot be a memo hit, so this is the cost the fixed-layout
    fast path removes.  The generic codec walker over the same field dicts is
    recorded alongside, isolating the packed-vs-generic delta from the
    codec-vs-JSON one.
    """
    digest = b"\x00" * 32

    def run(legacy: bool) -> float:
        ctx = codec.legacy_json_encoding() if legacy else contextlib.nullcontext()
        with ctx:
            counter = iter(range(1_000_000_000))

            def op() -> None:
                i = next(counter)
                Prepare(sender="r1@S0", view=0, sequence=i, batch_digest=digest).payload_bytes()
                Commit(sender="r1@S0", view=0, sequence=i, batch_digest=digest).payload_bytes()
                Checkpoint(sender="r1@S0", sequence=i, state_digest=digest).payload_bytes()

            return _ops_per_sec(op, seconds=seconds, batch=3)

    def run_generic() -> float:
        counter = iter(range(1_000_000_000))

        def op() -> None:
            i = next(counter)
            for vote_type in ("Prepare", "Commit"):
                codec.encode_canonical(
                    {"type": vote_type, "sender": "r1@S0", "view": 0,
                     "sequence": i, "digest": digest}
                )
            codec.encode_canonical(
                {"type": "Checkpoint", "sender": "r1@S0", "sequence": i, "digest": digest}
            )

        return _ops_per_sec(op, seconds=seconds, batch=3)

    baseline = run(legacy=True)
    optimized = run(legacy=False)
    generic = run_generic()
    return {
        "unit": "fresh vote encodes/sec",
        "baseline_ops_per_sec": round(baseline),
        "optimized_ops_per_sec": round(optimized),
        "generic_walker_ops_per_sec": round(generic),
        "speedup": round(optimized / baseline, 2) if baseline else 0.0,
        "packed_vs_generic_speedup": round(optimized / generic, 2) if generic else 0.0,
    }


def _micro_kernel_events(seconds: float) -> dict:
    """Calendar throughput: slotted arg-tuple events vs per-delivery closures.

    The network's delivery path schedules one event per message copy; the
    baseline column reproduces the old call pattern (a fresh closure per
    delivery), the optimized column the new one (a shared bound method plus
    an argument tuple carried in the slotted event).
    """
    from repro.sim.kernel import Simulator

    batch = 64
    sink: list = []

    def run(closures: bool) -> float:
        sim = Simulator(seed=1)

        def op() -> None:
            if closures:
                for i in range(batch):
                    def _deliver(i=i) -> None:
                        sink.append(i)

                    sim.schedule(0.0, _deliver)
            else:
                append = sink.append
                for i in range(batch):
                    sim.schedule(0.0, append, i)
            while sim.step():
                pass
            sink.clear()

        return _ops_per_sec(op, seconds=seconds, batch=batch)

    baseline = run(closures=True)
    optimized = run(closures=False)
    return {
        "unit": "scheduled+fired events/sec",
        "baseline_ops_per_sec": round(baseline),
        "optimized_ops_per_sec": round(optimized),
        "speedup": round(optimized / baseline, 2) if baseline else 0.0,
    }


# ----------------------------------------------------------------------
# macro benchmark: figure-8-style cross-shard run
# ----------------------------------------------------------------------


def _macro_run(*, legacy: bool, total: int, shards: int, replicas: int,
               batch_size: int, cross_shard: float, seed: int) -> dict:
    ctx = codec.legacy_json_encoding() if legacy else contextlib.nullcontext()
    with ctx:
        workload = WorkloadConfig(
            num_records=1_000,
            cross_shard_fraction=cross_shard,
            batch_size=batch_size,
            num_clients=4,
            seed=seed,
        )
        config = SystemConfig.uniform(shards, replicas, workload=workload)
        deployment = Deployment.build(
            config, backend="sim", num_clients=4, batch_size=batch_size, seed=seed
        )
        try:
            generator = YcsbWorkloadGenerator(
                deployment.table, deployment.directory.ring, workload, seed=seed
            )
            driver = WorkloadDriver(deployment, generator, total=total, window=4)
            events_before = deployment.simulator.processed_events
            result = driver.run(timeout=600.0)
            events = deployment.simulator.processed_events - events_before
        finally:
            deployment.close()
    wall = max(result.wall_clock_s, 1e-9)
    return {
        "mode": "legacy-json" if legacy else "codec+memo",
        "completed": result.completed,
        "submitted": result.submitted,
        "ledgers_consistent": result.ledgers_consistent,
        "protocol_throughput_tps": round(result.throughput_tps, 1),
        "wall_clock_s": round(wall, 4),
        "sim_events": events,
        "events_per_sec": round(events / wall),
    }


def _macro(params: dict) -> dict:
    kwargs = dict(
        total=params["macro_total"],
        shards=params["shards"],
        replicas=params["replicas"],
        batch_size=params["batch_size"],
        cross_shard=params["cross_shard"],
        seed=params["seed"],
    )
    baseline = _macro_run(legacy=True, **kwargs)
    optimized = _macro_run(legacy=False, **kwargs)
    return {
        "baseline": baseline,
        "optimized": optimized,
        "events_per_sec_speedup": round(
            optimized["events_per_sec"] / max(baseline["events_per_sec"], 1), 2
        ),
        "wall_clock_speedup": round(
            baseline["wall_clock_s"] / max(optimized["wall_clock_s"], 1e-9), 2
        ),
    }


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


def run_benchmark(smoke: bool = False, **overrides) -> dict:
    params = {**DEFAULTS, **(SMOKE_OVERRIDES if smoke else {}), **overrides}
    micro = {
        "encode_digest": _micro_encode_digest(params["micro_seconds"]),
        "encode_cold": _micro_encode_cold(params["micro_seconds"]),
        "mac_broadcast": _micro_mac_broadcast(params["micro_seconds"], params["audience"]),
        "vote_encode": _micro_vote_encode(params["micro_seconds"]),
        "kernel_events": _micro_kernel_events(params["micro_seconds"]),
    }
    macro = _macro(params)
    verdicts = {
        # CI gate (hotpath-perf-smoke): memoised digests at least 2x the
        # uncached JSON path.
        "digest_micro_2x": micro["encode_digest"]["speedup"] >= 2.0,
        # Acceptance targets recorded alongside (checked in full mode).
        "digest_micro_3x": micro["encode_digest"]["speedup"] >= 3.0,
        "macro_events_1_5x": macro["events_per_sec_speedup"] >= 1.5,
        # The optimisation must not change protocol behaviour.
        "identical_completions": (
            macro["baseline"]["completed"] == macro["optimized"]["completed"]
            and bool(macro["optimized"]["ledgers_consistent"])
        ),
        # Informational (not gating): the fixed-layout vote encoders and the
        # slotted arg-tuple events should each beat their predecessors.
        "vote_packed_beats_generic": micro["vote_encode"]["packed_vs_generic_speedup"] >= 1.0,
        "kernel_events_faster": micro["kernel_events"]["speedup"] >= 1.0,
    }
    verdicts["ok"] = verdicts["digest_micro_2x"] and verdicts["identical_completions"] and (
        smoke or (verdicts["digest_micro_3x"] and verdicts["macro_events_1_5x"])
    )
    return {
        "benchmark": "hotpath",
        "mode": "smoke" if smoke else "full",
        "params": params,
        "micro": micro,
        "macro": macro,
        "verdicts": verdicts,
    }


# ----------------------------------------------------------------------
# pytest entry point (run explicitly: python -m pytest benchmarks/bench_hotpath.py)
# ----------------------------------------------------------------------


def test_hotpath_speedups():
    report = run_benchmark(smoke=True)
    assert report["verdicts"]["ok"], json.dumps(
        {"micro": report["micro"], "macro": report["macro"], "verdicts": report["verdicts"]},
        indent=2,
    )


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI run (2x digest gate)")
    parser.add_argument("--macro-total", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--replicas", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--cross-shard", type=float, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--output", type=Path, default=Path("BENCH_hotpath.json"))
    args = parser.parse_args(argv)

    overrides = {
        key: value
        for key, value in dict(
            macro_total=args.macro_total,
            shards=args.shards,
            replicas=args.replicas,
            batch_size=args.batch_size,
            cross_shard=args.cross_shard,
            seed=args.seed,
        ).items()
        if value is not None
    }
    report = run_benchmark(smoke=args.smoke, **overrides)
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.output}")
    for name, stats in report["micro"].items():
        print(
            f"{name:16s}: {stats['baseline_ops_per_sec']:>12,} -> "
            f"{stats['optimized_ops_per_sec']:>12,} {stats['unit']}"
            f"  (x{stats['speedup']})"
        )
    macro = report["macro"]
    print(
        f"{'macro events/s':16s}: {macro['baseline']['events_per_sec']:>12,} -> "
        f"{macro['optimized']['events_per_sec']:>12,} sim events/sec"
        f"  (x{macro['events_per_sec_speedup']})"
    )
    print(
        f"{'macro wall clock':16s}: {macro['baseline']['wall_clock_s']:>11}s -> "
        f"{macro['optimized']['wall_clock_s']:>11}s  (x{macro['wall_clock_speedup']})"
    )
    print(f"verdict         : {'OK' if report['verdicts']['ok'] else 'FAIL'}")
    return 0 if report["verdicts"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
