"""Figure 8 (XI)-(XII): impact of the number of clients (in-flight transactions)."""

from repro.experiments import figure8


def test_figure8_impact_of_clients(benchmark, show_table):
    rows = benchmark(figure8.impact_of_clients)
    show_table("Figure 8 (XI)-(XII): impact of clients", rows)

    series = {
        protocol: {r["num_clients"]: r for r in rows if r["protocol"] == protocol}
        for protocol in ("RingBFT", "Sharper", "AHL")
    }
    ring = series["RingBFT"]
    # More clients push the system towards saturation: throughput rises
    # (the paper reports a 15-20% increase) and latency grows with the number
    # of in-flight transactions.
    assert ring[20_000]["throughput_tps"] >= ring[3_000]["throughput_tps"]
    assert ring[20_000]["latency_s"] > ring[3_000]["latency_s"]
    # RingBFT sustains more load than the baselines at every client count.
    for clients in (3_000, 10_000, 20_000):
        assert ring[clients]["throughput_tps"] >= series["Sharper"][clients]["throughput_tps"]
        assert ring[clients]["throughput_tps"] > series["AHL"][clients]["throughput_tps"]
