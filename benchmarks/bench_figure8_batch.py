"""Figure 8 (VII)-(VIII): impact of the consensus batch size."""

from repro.experiments import figure8


def test_figure8_impact_of_batch_size(benchmark, show_table):
    rows = benchmark(figure8.impact_of_batch_size)
    show_table("Figure 8 (VII)-(VIII): impact of batch size", rows)

    ring = {r["batch_size"]: r for r in rows if r["protocol"] == "RingBFT"}
    # Batching amortises consensus: throughput grows steeply from tiny batches
    # (the paper reports ~27x from batch 10 to the optimum) and then levels
    # off once the pipeline saturates.
    assert ring[100]["throughput_tps"] > 4 * ring[10]["throughput_tps"]
    assert ring[1500]["throughput_tps"] > 10 * ring[10]["throughput_tps"]
    gain_small_step = ring[1500]["throughput_tps"] / ring[1000]["throughput_tps"]
    gain_large_step = ring[5000]["throughput_tps"] / ring[1500]["throughput_tps"]
    assert gain_small_step < 1.5
    assert gain_large_step < 1.5  # diminishing returns past the sweet spot
    # Every protocol benefits from batching.
    for protocol in ("Sharper", "AHL"):
        points = {r["batch_size"]: r for r in rows if r["protocol"] == protocol}
        assert points[1000]["throughput_tps"] > points[10]["throughput_tps"]
