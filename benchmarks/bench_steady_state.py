"""Steady-state memory benchmark: checkpoint-driven GC keeps retained state flat.

Sustains an open-loop Poisson workload for >= 20 checkpoint intervals and
samples the deployment's retained-state gauges (consensus-log slots, batch
payloads, cross-shard records, lock-table size, ...) throughout.  The same
run is repeated with garbage collection disabled; the comparison demonstrates

* flat gauges with GC on -- bounded by O(checkpoint_interval + in-flight),
* linear growth with GC off -- O(total committed work),
* no throughput cost for running GC.

Runs as a pytest module (CI smoke) and as a standalone script that writes
``BENCH_steady_state.json``, the first entry in the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_steady_state.py --output BENCH_steady_state.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.config import SystemConfig, TimerConfig, WorkloadConfig  # noqa: E402
from repro.engine import run_sustained_load  # noqa: E402

#: Gauges that must stay flat once GC runs (each one grew without bound before).
FLAT_GAUGES = ("log_slots", "batches", "cross_records", "committed_txn_ids")

#: Minimum sustained checkpoint intervals for a reliable flat-gauge verdict.
#: GC only reaches steady state after ~2 intervals (first stable checkpoint
#: plus sweep lag), so on shorter runs the warm-up ramp dominates the
#: first-half/second-half growth comparison and healthy gauges fail
#: spuriously (the known ``--intervals 6`` flake).
MIN_VERDICT_INTERVALS = 10

DEFAULTS = dict(
    shards=2,
    replicas=4,
    rate=50.0,
    intervals=25,
    checkpoint_interval=4,
    cross_shard=0.2,
    seed=7,
)


def _config(
    *, shards: int, replicas: int, checkpoint_interval: int, cross_shard: float, seed: int
) -> SystemConfig:
    timers = TimerConfig(
        local_timeout=1.0,
        remote_timeout=2.0,
        transmit_timeout=3.0,
        client_timeout=1.5,
        checkpoint_interval=checkpoint_interval,
    )
    workload = WorkloadConfig(
        num_records=400,
        cross_shard_fraction=cross_shard,
        batch_size=1,
        num_clients=2,
        seed=seed,
    )
    return SystemConfig.uniform(shards, replicas, timers=timers, workload=workload)


def _run_variant(*, gc_enabled: bool, backend: str = "sim", **params) -> dict:
    merged = {**DEFAULTS, **params}
    config = _config(
        shards=merged["shards"],
        replicas=merged["replicas"],
        checkpoint_interval=merged["checkpoint_interval"],
        cross_shard=merged["cross_shard"],
        seed=merged["seed"],
    )
    result, driver = run_sustained_load(
        config,
        backend=backend,
        rate_per_second=merged["rate"],
        checkpoint_intervals=merged["intervals"],
        seed=merged["seed"],
        sample_interval=0.2,
        gc_enabled=gc_enabled,
    )
    series = driver.series
    return {
        "gc_enabled": gc_enabled,
        "submitted": result.submitted,
        "completed": result.completed,
        "throughput_tps": round(result.throughput_tps, 1),
        "avg_latency_s": round(result.avg_latency, 4),
        "duration_s": round(result.duration_s, 3),
        "wall_clock_s": round(result.wall_clock_s, 3),
        "ledgers_consistent": result.ledgers_consistent,
        "stable_floor": driver.stable_floor(),
        "target_sequence": driver.target_sequence,
        "gauges": {
            gauge: {
                "peak": series.peak(gauge),
                "final": series.final(gauge),
                "growth_ratio": round(series.growth_ratio(gauge), 3),
            }
            for gauge in sorted({g for s in series.samples for g in s.gauges})
        },
        "series": series.as_rows(),
    }


def run_benchmark(backend: str = "sim", **params) -> dict:
    """Run the GC-on / GC-off pair and attach pass/fail verdicts."""
    merged = {**DEFAULTS, **params}
    if merged["intervals"] < MIN_VERDICT_INTERVALS:
        raise ValueError(
            f"--intervals {merged['intervals']} is below the minimum "
            f"{MIN_VERDICT_INTERVALS} needed for a reliable flat-gauge verdict: "
            "checkpoint GC only reaches steady state after ~2 intervals, so on "
            "short runs the warm-up ramp dominates the growth comparison and "
            "fails spuriously"
        )
    gc_on = _run_variant(gc_enabled=True, backend=backend, **params)
    gc_off = _run_variant(gc_enabled=False, backend=backend, **params)

    total_replicas = merged["shards"] * merged["replicas"]
    # Retained state must be O(checkpoint_interval + in-flight), never
    # O(total committed).  The per-replica allowance covers the GC lag (up to
    # two checkpoint windows between settle and sweep) plus in-flight work.
    per_replica_allowance = 6 * merged["checkpoint_interval"] + 32
    bound = total_replicas * per_replica_allowance

    verdicts = {
        "completed_all": gc_on["completed"] == gc_on["submitted"],
        "ledgers_consistent": bool(gc_on["ledgers_consistent"]),
        "reached_target": gc_on["stable_floor"] >= gc_on["target_sequence"],
        "flat_gauges": {
            gauge: gc_on["gauges"].get(gauge, {}).get("growth_ratio", 0.0) <= 1.5
            for gauge in FLAT_GAUGES
        },
        "bounded_by_interval": all(
            gc_on["gauges"].get(gauge, {}).get("peak", 0) <= bound for gauge in FLAT_GAUGES
        ),
        "gc_off_grows": gc_off["gauges"]["log_slots"]["final"]
        >= 2 * max(gc_on["gauges"]["log_slots"]["final"], 1),
        # Protocol-time throughput is GC-invariant by construction on the sim
        # backend (GC consumes no simulated time), so the real cost check is
        # wall clock: running GC must not make the identical run materially
        # slower on the host.  Generous tolerance absorbs CI timer noise.
        "no_throughput_regression": gc_on["throughput_tps"]
        >= 0.9 * gc_off["throughput_tps"],
        "no_wall_clock_regression": gc_on["wall_clock_s"]
        <= 1.5 * gc_off["wall_clock_s"] + 0.5,
    }
    verdicts["ok"] = (
        verdicts["completed_all"]
        and verdicts["ledgers_consistent"]
        and verdicts["reached_target"]
        and all(verdicts["flat_gauges"].values())
        and verdicts["bounded_by_interval"]
        and verdicts["gc_off_grows"]
        and verdicts["no_throughput_regression"]
        and verdicts["no_wall_clock_regression"]
    )
    return {
        "benchmark": "steady_state",
        "backend": backend,
        "params": merged,
        "retained_state_bound": bound,
        "gc_on": gc_on,
        "gc_off": gc_off,
        "verdicts": verdicts,
    }


# ----------------------------------------------------------------------
# pytest entry point (CI smoke)
# ----------------------------------------------------------------------


def test_steady_state_memory_is_flat():
    report = run_benchmark()
    assert report["verdicts"]["ok"], json.dumps(report["verdicts"], indent=2)


def test_small_interval_count_is_rejected():
    """Regression: short runs get a clear error, not a flaky verdict."""
    import pytest

    with pytest.raises(ValueError, match="minimum"):
        run_benchmark(intervals=6)


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="sim", choices=("sim", "realtime"))
    parser.add_argument("--rate", type=float, default=DEFAULTS["rate"])
    parser.add_argument("--intervals", type=int, default=DEFAULTS["intervals"])
    parser.add_argument(
        "--checkpoint-interval", type=int, default=DEFAULTS["checkpoint_interval"]
    )
    parser.add_argument("--shards", type=int, default=DEFAULTS["shards"])
    parser.add_argument("--replicas", type=int, default=DEFAULTS["replicas"])
    parser.add_argument("--cross-shard", type=float, default=DEFAULTS["cross_shard"])
    parser.add_argument("--seed", type=int, default=DEFAULTS["seed"])
    parser.add_argument("--output", type=Path, default=Path("BENCH_steady_state.json"))
    args = parser.parse_args(argv)

    try:
        report = run_benchmark(
            backend=args.backend,
            rate=args.rate,
            intervals=args.intervals,
            checkpoint_interval=args.checkpoint_interval,
            shards=args.shards,
            replicas=args.replicas,
            cross_shard=args.cross_shard,
            seed=args.seed,
        )
    except ValueError as exc:
        parser.error(str(exc))
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    gc_on, gc_off = report["gc_on"], report["gc_off"]
    print(f"wrote {args.output}")
    print(f"stable checkpoints : {gc_on['stable_floor']}/{gc_on['target_sequence']} sequences")
    print(f"throughput         : GC on {gc_on['throughput_tps']} tps"
          f" / GC off {gc_off['throughput_tps']} tps")
    print(f"wall clock         : GC on {gc_on['wall_clock_s']}s"
          f" / GC off {gc_off['wall_clock_s']}s")
    for gauge in FLAT_GAUGES:
        on, off = gc_on["gauges"].get(gauge, {}), gc_off["gauges"].get(gauge, {})
        print(
            f"{gauge:18s}: GC on peak {on.get('peak', 0):5d}"
            f" (x{on.get('growth_ratio', 0.0):.2f})"
            f" | GC off final {off.get('final', 0):5d}"
            f" (x{off.get('growth_ratio', 0.0):.2f})"
        )
    print(f"verdict            : {'OK' if report['verdicts']['ok'] else 'FAIL'}")
    return 0 if report["verdicts"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
