"""Perf-trajectory ledger: record benchmark headlines per commit, gate on drift.

Every tracked benchmark (``bench_pipeline``, ``bench_hotpath``) writes a JSON
report with a ``verdicts`` block and a handful of headline throughput numbers.
This tool appends those headlines to ``benchmarks/baselines/trajectory.json``
keyed by git SHA, so the repo carries its own performance history, and checks
new reports against the recorded best so a silent regression fails CI instead
of quietly becoming the new normal.

Usage::

    python benchmarks/trajectory.py record \
        --pipeline BENCH_pipeline.json --hotpath BENCH_hotpath.json
    python benchmarks/trajectory.py check \
        --pipeline BENCH_pipeline.json --hotpath BENCH_hotpath.json

``record`` extracts the headline metrics and upserts one entry for the
current HEAD.  ``check`` fails (exit 1) when

* any benchmark verdict in the supplied reports is false, or
* a *gated* throughput metric falls more than ``TOLERANCE`` (10%) below the
  best value ever recorded in the ledger.

Only sim-time metrics are gated (``closed_loop_tps``, ``open_loop_tps``):
they are deterministic, so a 10% drop is a real protocol change, never host
noise.  Wall-clock metrics (hotpath events/sec) are recorded for trend
plotting but deliberately excluded from the gate.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_LEDGER = REPO_ROOT / "benchmarks" / "baselines" / "trajectory.json"

#: Gated metrics may fall at most this far below the recorded best.
TOLERANCE = 0.10

#: Metrics the regression gate enforces (deterministic sim-time throughput).
GATED_METRICS = ("pipeline_closed_loop_tps", "pipeline_open_loop_tps")


# ----------------------------------------------------------------------
# headline extraction
# ----------------------------------------------------------------------


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def pipeline_headline(report: dict) -> dict:
    """Headline metrics from a ``bench_pipeline`` report."""
    closed = [
        run["protocol_throughput_tps"]
        for depth, run in report["sweep"]["runs"].items()
        if int(depth) > 1
    ]
    open_loop = report.get("open_loop", {})
    saturating_rate = None
    open_tps: list[float] = []
    if open_loop.get("runs"):
        saturating_rate = max(open_loop["runs"], key=float)
        open_tps = [
            run["sustained_tps"]
            for depth, run in open_loop["runs"][saturating_rate].items()
            if int(depth) > 1
        ]
    return {
        "pipeline_verdict_ok": bool(report["verdicts"]["ok"]),
        "pipeline_closed_loop_tps": max(closed) if closed else 0.0,
        "pipeline_open_loop_tps": max(open_tps) if open_tps else 0.0,
        "pipeline_open_loop_rate": (
            float(saturating_rate) if saturating_rate else 0.0
        ),
        "pipeline_k4_over_k2": open_loop.get("k4_over_k2_sustained", 0.0),
    }


def hotpath_headline(report: dict) -> dict:
    """Headline metrics from a ``bench_hotpath`` report.

    ``events_per_sec`` is wall-clock and therefore informational only --
    recorded for trend plots, never gated.
    """
    macro = report.get("macro", {}).get("optimized", {})
    digest = report.get("micro", {}).get("encode_digest", {})
    return {
        "hotpath_verdict_ok": bool(report["verdicts"]["ok"]),
        "hotpath_events_per_sec": macro.get("events_per_sec", 0),
        "hotpath_digest_speedup": digest.get("speedup", 0.0),
    }


def extract_entry(
    pipeline_report: dict | None, hotpath_report: dict | None
) -> dict:
    metrics: dict = {}
    modes = set()
    for report in (pipeline_report, hotpath_report):
        if report is not None:
            modes.add(report.get("mode", "full"))
    if pipeline_report is not None:
        metrics.update(pipeline_headline(pipeline_report))
    if hotpath_report is not None:
        metrics.update(hotpath_headline(hotpath_report))
    # Smoke and full runs sweep different depths/rates, so their headline
    # numbers are not comparable; the gate only compares like with like.
    mode = "full" if modes == {"full"} else "smoke"
    return {"sha": _git_sha(), "mode": mode, "metrics": metrics}


# ----------------------------------------------------------------------
# ledger
# ----------------------------------------------------------------------


def load_ledger(path: Path) -> dict:
    if path.exists():
        return json.loads(path.read_text())
    return {"entries": []}


def record(entry: dict, path: Path) -> dict:
    ledger = load_ledger(path)
    ledger["entries"] = [
        e
        for e in ledger["entries"]
        if not (e["sha"] == entry["sha"] and e.get("mode") == entry["mode"])
    ]
    ledger["entries"].append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(ledger, indent=2) + "\n")
    return ledger


def best_recorded(ledger: dict, metric: str, mode: str) -> float:
    values = [
        e["metrics"][metric]
        for e in ledger["entries"]
        if e.get("mode") == mode and metric in e["metrics"]
    ]
    return max(values) if values else 0.0


def check(entry: dict, ledger: dict) -> list[str]:
    """Return a list of failure strings (empty means the gate passes)."""
    failures: list[str] = []
    metrics = entry["metrics"]
    for key, value in metrics.items():
        if key.endswith("_verdict_ok") and not value:
            failures.append(f"{key} is false: the benchmark's own gate failed")
    for metric in GATED_METRICS:
        if metric not in metrics:
            continue
        best = best_recorded(ledger, metric, entry["mode"])
        floor = best * (1.0 - TOLERANCE)
        if best > 0.0 and metrics[metric] < floor:
            failures.append(
                f"{metric} regressed: {metrics[metric]:.1f} < {floor:.1f} "
                f"(best recorded {best:.1f}, tolerance {TOLERANCE:.0%}, "
                f"mode {entry['mode']})"
            )
    return failures


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def _load_report(path: str | None) -> dict | None:
    if path is None:
        return None
    return json.loads(Path(path).read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=("record", "check"))
    parser.add_argument("--pipeline", help="path to BENCH_pipeline.json")
    parser.add_argument("--hotpath", help="path to BENCH_hotpath.json")
    parser.add_argument(
        "--ledger", default=str(DEFAULT_LEDGER), help="trajectory ledger path"
    )
    args = parser.parse_args(argv)

    if args.pipeline is None and args.hotpath is None:
        parser.error("supply at least one of --pipeline / --hotpath")

    entry = extract_entry(
        _load_report(args.pipeline), _load_report(args.hotpath)
    )
    ledger_path = Path(args.ledger)
    ledger = load_ledger(ledger_path)

    if args.command == "check":
        failures = check(entry, ledger)
        for failure in failures:
            print(f"FAIL: {failure}")
        if failures:
            return 1
        print(f"trajectory gate OK for {entry['sha'][:12]}")
        for key, value in sorted(entry["metrics"].items()):
            print(f"  {key}: {value}")
        return 0

    record(entry, ledger_path)
    print(f"recorded {entry['sha'][:12]} -> {ledger_path}")
    for key, value in sorted(entry["metrics"].items()):
        print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
