"""Figure 1: scalability of BFT protocol families (intro headline figure).

Regenerates the throughput of RingBFT (9 shards, 0% and 15% cross-shard) and
of the fully-replicated protocols (Pbft, Sbft, HotStuff, Rcc, PoE, Zyzzyva)
for 4, 16, and 32 replicas per group.
"""

from repro.experiments import figure1


def test_figure1_scalability(benchmark, show_table):
    rows = benchmark(figure1.run)
    show_table("Figure 1: throughput vs number of nodes", rows)

    by_key = {(r["protocol"], r["nodes_per_group"]): r["throughput_tps"] for r in rows}
    for nodes in figure1.NODE_COUNTS:
        # RingBFT (sharded) dominates every fully-replicated protocol ...
        for protocol in figure1.FULLY_REPLICATED:
            assert by_key[("RingBFT", nodes)] > by_key[(protocol, nodes)]
        # ... and adding 15% cross-shard transactions costs throughput.
        assert by_key[("RingBFT", nodes)] > by_key[("RingBFT_X", nodes)]
    # Fully-replicated protocols degrade as the group grows; RingBFT stays high.
    assert by_key[("Pbft", 32)] < by_key[("Pbft", 4)]
    assert by_key[("RingBFT", 32)] > 5 * by_key[("Pbft", 32)]
