"""Protocol-mode micro-benchmarks of the execution engine itself.

These are not paper figures: they measure how expensive the message-level
reproduction is to run (wall-clock per simulated consensus), which is useful
when sizing protocol-mode experiments, they compare the per-transaction
message footprint of the three protocols on identical workloads (the
mechanism behind the Figure 8 shapes), and they quantify the keystore's
signature-verification memo cache on the cross-shard Forward hot path.
"""

import time

from repro.baselines.ahl.replica import AhlReplica
from repro.baselines.sharper.replica import SharperReplica
from repro.common.crypto import KeyStore, SignatureScheme, verify_certificate
from repro.config import SystemConfig, WorkloadConfig
from repro.core.replica import RingBftReplica
from repro.engine import Deployment
from repro.txn.transaction import TransactionBuilder


def _workload():
    return WorkloadConfig(num_records=400, batch_size=1, num_clients=1, seed=7)


def _deployment(replica_class, num_shards=3):
    config = SystemConfig.uniform(num_shards, 4, workload=_workload())
    return Deployment.build(
        config, backend="sim", replica_class=replica_class, num_clients=1, batch_size=1, seed=7
    )


def _cross_txn(deployment, txn_id, shards=(0, 1, 2)):
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        builder.read_modify_write(
            shard, deployment.table.local_record(shard, 1), f"{txn_id}@{shard}"
        )
    return builder.build()


def _single_txn(deployment, txn_id, shard=0):
    return (
        TransactionBuilder(txn_id, "client-0")
        .read_modify_write(shard, deployment.table.local_record(shard, 0), "v")
        .build()
    )


def test_simulated_single_shard_consensus(benchmark):
    """Wall-clock cost of simulating one single-shard PBFT consensus."""

    def run():
        deployment = _deployment(RingBftReplica, num_shards=1)
        deployment.submit(_single_txn(deployment, "micro-single"))
        assert deployment.run_until_clients_done(timeout=30.0)
        return deployment.scheduler.processed_events

    events = benchmark(run)
    assert events > 0


def test_simulated_cross_shard_consensus(benchmark):
    """Wall-clock cost of simulating one three-shard RingBFT transaction."""

    def run():
        deployment = _deployment(RingBftReplica)
        deployment.submit(_cross_txn(deployment, "micro-cross"))
        assert deployment.run_until_clients_done(timeout=60.0)
        return deployment.scheduler.processed_events

    events = benchmark(run)
    assert events > 0


def test_cross_shard_message_footprint_comparison(benchmark, show_table):
    """Messages and bytes each protocol spends on one identical cross-shard transaction."""

    def run():
        rows = []
        for name, replica_class in (
            ("RingBFT", RingBftReplica),
            ("Sharper", SharperReplica),
            ("AHL", AhlReplica),
        ):
            deployment = _deployment(replica_class)
            deployment.submit(_cross_txn(deployment, f"fp-{name}"))
            assert deployment.run_until_clients_done(timeout=120.0)
            deployment.backend.run_for(5.0)
            rows.append(
                {
                    "protocol": name,
                    "messages": deployment.total_messages(),
                    "bytes": sum(r.stats.total_bytes for r in deployment.replicas.values()),
                    "latency_ms": round(deployment.latencies()[0] * 1000, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show_table("Per-transaction cross-shard footprint (3 shards x 4 replicas)", rows)
    footprint = {row["protocol"]: row for row in rows}
    # RingBFT's linear forwarding needs fewer messages than Sharper's global
    # all-to-all phases even at this tiny scale (the gap widens with shard
    # count and replication; bytes are reported for information only -- the
    # fixed Section 8 message sizes assume batches of 100).
    assert footprint["RingBFT"]["messages"] < footprint["Sharper"]["messages"]
    assert footprint["AHL"]["messages"] > 0


def _forward_certificate(keystore, signers=7):
    """A Forward-style commit certificate: nf signatures over one digest."""
    scheme = SignatureScheme(keystore)
    payload = b"commit-certificate|shard-0|seq-42"
    signatures = [scheme.sign(f"replica-{i}", payload) for i in range(signers)]
    return scheme, payload, signatures


def test_forward_certificate_verification_cache(benchmark, show_table):
    """Signature-cache speedup on repeated Forward certificate verification.

    Every replica of the next shard checks the same commit certificate at
    each of its ``f + 1`` matching Forward receptions plus retransmissions;
    the keystore memo turns all but the first check into a cache hit.
    """
    rounds = 200

    def verify_repeatedly(keystore):
        scheme, payload, signatures = _forward_certificate(keystore)
        for _ in range(rounds):
            assert verify_certificate(scheme, payload, signatures, required=5)

    started = time.perf_counter()
    verify_repeatedly(KeyStore(verify_cache_size=0))
    uncached_s = time.perf_counter() - started

    cached_keystore = KeyStore()
    benchmark(lambda: verify_repeatedly(cached_keystore))
    started = time.perf_counter()
    verify_repeatedly(cached_keystore)
    cached_s = time.perf_counter() - started

    stats = cached_keystore.cache_stats()
    show_table(
        f"Forward certificate verification ({rounds} checks of a 7-signature certificate)",
        [
            {"variant": "uncached (verify_cache_size=0)", "seconds": round(uncached_s, 5)},
            {"variant": "LRU memo (default)", "seconds": round(cached_s, 5)},
            {
                "variant": "cache hits",
                "seconds": f"cert={stats['certificate']['hits']} sig={stats['verify']['hits']}",
            },
        ],
    )
    assert cached_s < uncached_s
    assert stats["certificate"]["hits"] >= rounds - 1


def test_cross_shard_consensus_cache_hit_rate(benchmark, show_table):
    """End-to-end: the memo cache absorbs most Forward re-verifications."""

    def run():
        deployment = _deployment(RingBftReplica)
        deployment.submit(_cross_txn(deployment, "cache-hit"))
        assert deployment.run_until_clients_done(timeout=60.0)
        return deployment.keystore.cache_stats()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    show_table(
        "Keystore cache utilisation for one cross-shard transaction",
        [
            {"cache": name, **values}
            for name, values in stats.items()
        ],
    )
    # The Forward/Execute fan-in re-checks the same signatures many times.
    assert stats["verify"]["hits"] > 0
    assert stats["certificate"]["hits"] > 0
