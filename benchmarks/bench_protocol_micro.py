"""Protocol-mode micro-benchmarks of the simulator itself.

These are not paper figures: they measure how expensive the message-level
reproduction is to run (wall-clock per simulated consensus), which is useful
when sizing protocol-mode experiments, and they compare the per-transaction
message footprint of the three protocols on identical workloads (the
mechanism behind the Figure 8 shapes).
"""

from repro.baselines.ahl.replica import AhlReplica
from repro.baselines.sharper.replica import SharperReplica
from repro.cluster import Cluster
from repro.config import SystemConfig, WorkloadConfig
from repro.core.replica import RingBftReplica
from repro.txn.transaction import TransactionBuilder


def _workload():
    return WorkloadConfig(num_records=400, batch_size=1, num_clients=1, seed=7)


def _cluster(replica_class, num_shards=3):
    config = SystemConfig.uniform(num_shards, 4, workload=_workload())
    return Cluster.build(config, replica_class=replica_class, num_clients=1, batch_size=1, seed=7)


def _cross_txn(cluster, txn_id, shards=(0, 1, 2)):
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        builder.read_modify_write(shard, cluster.table.local_record(shard, 1), f"{txn_id}@{shard}")
    return builder.build()


def _single_txn(cluster, txn_id, shard=0):
    return (
        TransactionBuilder(txn_id, "client-0")
        .read_modify_write(shard, cluster.table.local_record(shard, 0), "v")
        .build()
    )


def test_simulated_single_shard_consensus(benchmark):
    """Wall-clock cost of simulating one single-shard PBFT consensus."""

    def run():
        cluster = _cluster(RingBftReplica, num_shards=1)
        cluster.submit(_single_txn(cluster, "micro-single"))
        assert cluster.run_until_clients_done(timeout=30.0)
        return cluster.simulator.processed_events

    events = benchmark(run)
    assert events > 0


def test_simulated_cross_shard_consensus(benchmark):
    """Wall-clock cost of simulating one three-shard RingBFT transaction."""

    def run():
        cluster = _cluster(RingBftReplica)
        cluster.submit(_cross_txn(cluster, "micro-cross"))
        assert cluster.run_until_clients_done(timeout=60.0)
        return cluster.simulator.processed_events

    events = benchmark(run)
    assert events > 0


def test_cross_shard_message_footprint_comparison(benchmark, show_table):
    """Messages and bytes each protocol spends on one identical cross-shard transaction."""

    def run():
        rows = []
        for name, replica_class in (
            ("RingBFT", RingBftReplica),
            ("Sharper", SharperReplica),
            ("AHL", AhlReplica),
        ):
            cluster = _cluster(replica_class)
            cluster.submit(_cross_txn(cluster, f"fp-{name}"))
            assert cluster.run_until_clients_done(timeout=120.0)
            cluster.run(duration=cluster.simulator.now + 5.0)
            rows.append(
                {
                    "protocol": name,
                    "messages": cluster.total_messages(),
                    "bytes": sum(r.stats.total_bytes for r in cluster.replicas.values()),
                    "latency_ms": round(cluster.latencies()[0] * 1000, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    show_table("Per-transaction cross-shard footprint (3 shards x 4 replicas)", rows)
    footprint = {row["protocol"]: row for row in rows}
    # RingBFT's linear forwarding needs fewer messages than Sharper's global
    # all-to-all phases even at this tiny scale (the gap widens with shard
    # count and replication; bytes are reported for information only -- the
    # fixed Section 8 message sizes assume batches of 100).
    assert footprint["RingBFT"]["messages"] < footprint["Sharper"]["messages"]
    assert footprint["AHL"]["messages"] > 0
