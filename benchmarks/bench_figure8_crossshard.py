"""Figure 8 (V)-(VI): impact of the cross-shard transaction rate."""

import pytest

from repro.experiments import figure8


def test_figure8_impact_of_cross_shard_rate(benchmark, show_table):
    rows = benchmark(figure8.impact_of_cross_shard_rate)
    show_table("Figure 8 (V)-(VI): impact of cross-shard workload rate", rows)

    series = {
        protocol: {r["cross_shard_fraction"]: r for r in rows if r["protocol"] == protocol}
        for protocol in ("RingBFT", "Sharper", "AHL")
    }
    # At 0% cross-shard all three protocols coincide (they share the PBFT
    # single-shard path) at the deployment's peak throughput.
    peak = series["RingBFT"][0.0]["throughput_tps"]
    assert series["Sharper"][0.0]["throughput_tps"] == pytest.approx(peak, rel=1e-6)
    assert series["AHL"][0.0]["throughput_tps"] == pytest.approx(peak, rel=1e-6)
    assert peak > 500_000  # the paper reports ~1.2M txn/s at this point

    # Even 5% cross-shard transactions cause a steep drop for every protocol.
    for protocol, points in series.items():
        assert points[0.05]["throughput_tps"] < 0.5 * points[0.0]["throughput_tps"]

    # Throughput decreases monotonically with the cross-shard rate, and at
    # 100% cross-shard RingBFT keeps the paper's advantage (~4x / ~18x).
    for protocol, points in series.items():
        values = [points[x]["throughput_tps"] for x in sorted(points)]
        assert values == sorted(values, reverse=True)
    ring_full = series["RingBFT"][1.0]["throughput_tps"]
    assert ring_full / series["Sharper"][1.0]["throughput_tps"] > 2.5
    assert ring_full / series["AHL"][1.0]["throughput_tps"] > 8.0
