"""Ablation benches for the design choices DESIGN.md calls out.

These are not figures from the paper; they isolate the contribution of
individual RingBFT design decisions using the analytical model:

* **Linear forwarding vs global all-to-all** -- replace RingBFT's cross-shard
  step with Sharper-style all-to-all phases and measure the throughput loss.
* **MAC vs DS authentication** -- the paper uses MACs inside shards and
  digital signatures across shards; pricing everything as signatures shows
  why that split matters.
* **WAN bandwidth sensitivity** -- protocols that concentrate cross-shard
  traffic (AHL's committee) degrade much faster as per-node WAN bandwidth
  shrinks.
"""

import dataclasses

from repro.analytical import CostParameters, DeploymentSpec, estimate, model_by_name

STANDARD = DeploymentSpec()


def test_ablation_linear_vs_all_to_all_forwarding(benchmark, show_table):
    """RingBFT's linear cross-shard step vs Sharper-style global communication."""

    def run():
        ring = estimate(model_by_name("RingBFT"), STANDARD)
        all_to_all = estimate(model_by_name("Sharper"), STANDARD)
        return [
            {"variant": "linear forwarding (RingBFT)", "throughput_tps": round(ring.throughput_tps, 1)},
            {"variant": "global all-to-all (Sharper-style)", "throughput_tps": round(all_to_all.throughput_tps, 1)},
        ]

    rows = benchmark(run)
    show_table("Ablation: cross-shard communication pattern", rows)
    assert rows[0]["throughput_tps"] > 2.0 * rows[1]["throughput_tps"]


def test_ablation_mac_vs_signature_authentication(benchmark, show_table):
    """Intra-shard MACs vs pricing every message as a digital signature."""

    def run():
        mixed = estimate(model_by_name("RingBFT"), STANDARD)
        all_ds = dataclasses.replace(
            CostParameters(),
            mac_cpu_s=CostParameters().ds_verify_cpu_s,
        )
        signatures_everywhere = estimate(model_by_name("RingBFT"), STANDARD, all_ds)
        return [
            {"variant": "MAC intra-shard + DS cross-shard (paper)", "throughput_tps": round(mixed.throughput_tps, 1)},
            {"variant": "DS for every message", "throughput_tps": round(signatures_everywhere.throughput_tps, 1)},
        ]

    rows = benchmark(run)
    show_table("Ablation: authentication scheme", rows)
    assert rows[0]["throughput_tps"] > rows[1]["throughput_tps"]


def test_ablation_wan_bandwidth_sensitivity(benchmark, show_table):
    """Centralised cross-shard coordination suffers most from scarce WAN bandwidth."""

    def run():
        rows = []
        for label, bandwidth in (("ample (1 Gb/s)", 1.0e9), ("scarce (150 Mb/s)", 0.15e9)):
            params = dataclasses.replace(CostParameters(), wan_bandwidth_bps=bandwidth)
            for protocol in ("RingBFT", "AHL"):
                result = estimate(model_by_name(protocol), STANDARD, params)
                rows.append(
                    {
                        "wan_bandwidth": label,
                        "protocol": protocol,
                        "throughput_tps": round(result.throughput_tps, 1),
                    }
                )
        return rows

    rows = benchmark(run)
    show_table("Ablation: per-node WAN bandwidth", rows)
    by_key = {(r["protocol"], r["wan_bandwidth"]): r["throughput_tps"] for r in rows}
    ring_drop = by_key[("RingBFT", "scarce (150 Mb/s)")] / by_key[("RingBFT", "ample (1 Gb/s)")]
    ahl_drop = by_key[("AHL", "scarce (150 Mb/s)")] / by_key[("AHL", "ample (1 Gb/s)")]
    assert ahl_drop < ring_drop  # the committee is hurt more by scarce WAN bandwidth
