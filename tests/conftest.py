"""Shared fixtures for the test suite.

Protocol-mode fixtures build small deterministic clusters (3-4 shards of 4
replicas) that run in well under a second of wall-clock time; the analytical
model is exercised directly at paper scale.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster
from repro.config import SystemConfig, TimerConfig, WorkloadConfig
from repro.core.replica import RingBftReplica
from repro.txn.transaction import TransactionBuilder


def small_workload(**overrides) -> WorkloadConfig:
    """Workload config sized for fast protocol-mode tests."""
    defaults = dict(
        num_records=400,
        cross_shard_fraction=0.3,
        batch_size=1,
        num_clients=2,
        seed=2022,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def small_system(num_shards: int = 3, replicas: int = 4, **workload_overrides) -> SystemConfig:
    return SystemConfig.uniform(
        num_shards,
        replicas,
        workload=small_workload(**workload_overrides),
    )


def build_cluster(
    num_shards: int = 3,
    replicas: int = 4,
    replica_class=RingBftReplica,
    num_clients: int = 1,
    seed: int = 2022,
    **workload_overrides,
) -> Cluster:
    config = small_system(num_shards, replicas, **workload_overrides)
    return Cluster.build(
        config,
        replica_class=replica_class,
        num_clients=num_clients,
        batch_size=1,
        seed=seed,
    )


@pytest.fixture
def ring_cluster() -> Cluster:
    """A 3-shard, 4-replica RingBFT cluster with one client."""
    return build_cluster()


@pytest.fixture
def txn_builder():
    """Factory for transaction builders with unique ids."""
    counter = {"value": 0}

    def _make(client_id: str = "client-0") -> TransactionBuilder:
        counter["value"] += 1
        return TransactionBuilder(f"test-txn-{counter['value']}", client_id)

    return _make


@pytest.fixture
def fast_timers() -> TimerConfig:
    return TimerConfig(
        local_timeout=1.0, remote_timeout=2.0, transmit_timeout=3.0, client_timeout=2.0
    )
