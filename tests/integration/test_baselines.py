"""Integration tests: the AHL and Sharper baseline protocols."""

from repro.baselines.ahl.replica import AhlReplica
from repro.baselines.sharper.replica import SharperReplica
from repro.common.messages import batch_digest, ClientRequest
from repro.txn.transaction import TransactionBuilder

from tests.conftest import build_cluster


def _cross_txn(cluster, shards, txn_id):
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        key = cluster.table.local_record(shard, 2)
        builder.read_modify_write(shard, key, f"{txn_id}@{shard}")
    return builder.build()


def _single_txn(cluster, shard, txn_id):
    key = cluster.table.local_record(shard, 3)
    return TransactionBuilder(txn_id, "client-0").read_modify_write(shard, key, f"{txn_id}-v").build()


class TestAhl:
    def test_cross_shard_transaction_completes_via_committee(self):
        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        txn = _cross_txn(cluster, (1, 2), "ahl-cst")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=120.0)
        assert cluster.completed_transactions() == 1
        # The committee (shard 0) exchanged 2PC traffic even though it owns no data.
        committee_msgs = cluster.primary_of(0).stats.sent_count
        assert "Prepare2PC" in committee_msgs
        assert "Decide2PC" in committee_msgs

    def test_involved_shards_execute_after_decision(self):
        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        txn = _cross_txn(cluster, (1, 2), "ahl-exec")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=120.0)
        cluster.run(duration=cluster.simulator.now + 5.0)
        for shard in (1, 2):
            key = next(iter(txn.keys_for(shard)))
            for replica in cluster.shard_replicas(shard):
                assert replica.store.read(key) == f"ahl-exec@{shard}"
                assert replica.locks.locked_key_count == 0

    def test_committee_member_shard_can_also_own_data(self):
        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        txn = _cross_txn(cluster, (0, 2), "ahl-committee-data")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=120.0)
        key = next(iter(txn.keys_for(0)))
        for replica in cluster.shard_replicas(0):
            assert replica.store.read(key) == "ahl-committee-data@0"

    def test_single_shard_transactions_bypass_the_committee(self):
        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        cluster.submit(_single_txn(cluster, 2, "ahl-single"))
        assert cluster.run_until_clients_done(timeout=60.0)
        committee_primary = cluster.primary_of(0)
        assert "Prepare2PC" not in committee_primary.stats.sent_count

    def test_ahl_record_tracks_votes_per_shard(self):
        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        txn = _cross_txn(cluster, (1, 2), "ahl-record")
        request = ClientRequest(sender="client-0", transaction=txn)
        digest = batch_digest((request,))
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=120.0)
        record = cluster.primary_of(0).ahl_record(digest)
        assert record is not None
        assert record.decision_sent
        assert set(record.shard_votes) == {1, 2}

    def test_cross_shard_uses_all_to_all_communication(self):
        # Every committee replica sends Prepare2PC to every replica of every
        # involved shard: message counts are quadratic, unlike RingBFT.
        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        cluster.submit(_cross_txn(cluster, (1, 2), "ahl-quadratic"))
        assert cluster.run_until_clients_done(timeout=120.0)
        counts = cluster.message_counts()
        assert counts["Prepare2PC"] == 4 * 8  # 4 committee replicas x 8 involved replicas

    def test_multiple_cross_shard_transactions(self):
        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        for i in range(4):
            cluster.submit(_cross_txn(cluster, (1, 2), f"ahl-multi-{i}"))
        assert cluster.run_until_clients_done(timeout=200.0)
        assert cluster.completed_transactions() == 4
        assert cluster.ledgers_consistent(1) and cluster.ledgers_consistent(2)

    def test_conflicting_transactions_do_not_deadlock_across_shards(self):
        """Two shards receiving prepares in opposite network orders must not
        lock two conflicting batches in opposite orders (2PC deadlock)."""
        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        # Same keys on both shards: every pair of these transactions
        # conflicts, so any inconsistent lock order deadlocks permanently.
        for i in range(4):
            cluster.submit(_cross_txn(cluster, (1, 2), f"ahl-conflict-{i}"))
        assert cluster.run_until_clients_done(timeout=200.0)
        assert cluster.completed_transactions() == 4
        cluster.run(duration=cluster.simulator.now + 5.0)
        for shard in (1, 2):
            for replica in cluster.shard_replicas(shard):
                assert replica.locks.locked_key_count == 0

    def test_involved_primary_proposes_prepares_in_committee_order(self):
        """The dense per-shard prepare index gates local vote consensus: a
        later-indexed batch arriving first waits for its predecessor."""
        from repro.baselines.ahl.messages import Prepare2PC

        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        primary = cluster.primary_of(1)
        proposed = []
        primary._propose = lambda requests: proposed.append(
            requests[0].transaction.txn_id
        )
        committee = list(cluster.directory.replicas_of(0))

        def prepare(txn_id, dest_seq, sender):
            txn = _cross_txn(cluster, (1, 2), txn_id)
            request = ClientRequest(sender="client-0", transaction=txn)
            return Prepare2PC(
                sender=sender,
                requests=(request,),
                batch_digest=batch_digest((request,)),
                global_sequence=dest_seq,
                shard_sequences={1: dest_seq, 2: dest_seq},
            )

        # Batch #2 reaches the committee weak quorum first: nothing proposed.
        for sender in committee[:2]:
            primary._handle_prepare_2pc(prepare("ahl-second", 2, sender))
        assert proposed == []
        # Batch #1 arrives: both drain, in committee order.
        for sender in committee[:2]:
            primary._handle_prepare_2pc(prepare("ahl-first", 1, sender))
        assert proposed == ["ahl-first", "ahl-second"]

    def test_single_byzantine_claim_cannot_pin_a_bogus_prepare_index(self):
        """dest_sequence needs a weak quorum of matching claims: one lying
        committee member neither stalls the batch nor reorders it."""
        from repro.baselines.ahl.messages import Prepare2PC

        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        primary = cluster.primary_of(1)
        proposed = []
        primary._propose = lambda requests: proposed.append(requests[0].transaction.txn_id)
        committee = list(cluster.directory.replicas_of(0))
        txn = _cross_txn(cluster, (1, 2), "ahl-lied-about")
        request = ClientRequest(sender="client-0", transaction=txn)
        digest = batch_digest((request,))

        def prepare(sender, claimed):
            return Prepare2PC(
                sender=sender,
                requests=(request,),
                batch_digest=digest,
                global_sequence=1,
                shard_sequences={1: claimed, 2: claimed},
            )

        # Byzantine claim arrives first with an absurd index, then one honest
        # prepare: quorum of senders, but no quorum on any index -> wait.
        primary._handle_prepare_2pc(prepare(committee[0], 10**9))
        primary._handle_prepare_2pc(prepare(committee[1], 1))
        assert proposed == []
        # A second honest claim confirms index 1 and the batch proposes.
        primary._handle_prepare_2pc(prepare(committee[2], 1))
        assert proposed == ["ahl-lied-about"]
        assert primary.ahl_record(digest).dest_sequence == 1

    def test_state_transfer_degrades_ordering_without_stalling(self):
        """A replica whose cursor went stale through state transfer falls
        back to arrival-order proposal; a committee replica in the same
        position abstains from claiming indices."""
        from repro.baselines.ahl.messages import Prepare2PC

        cluster = build_cluster(num_shards=3, replica_class=AhlReplica)
        primary = cluster.primary_of(1)
        proposed = []
        primary._propose = lambda requests: proposed.append(requests[0].transaction.txn_id)
        primary._cross_order_stale = True  # as _install_state leaves it
        committee = list(cluster.directory.replicas_of(0))
        txn = _cross_txn(cluster, (1, 2), "ahl-after-catchup")
        request = ClientRequest(sender="client-0", transaction=txn)
        message = Prepare2PC(
            sender=committee[0],
            requests=(request,),
            batch_digest=batch_digest((request,)),
            global_sequence=7,
            # An index far beyond the stale cursor: strict ordering would
            # park the batch forever.
            shard_sequences={1: 7, 2: 7},
        )
        for sender in committee[:2]:
            primary._handle_prepare_2pc(
                Prepare2PC(sender=sender, requests=message.requests,
                           batch_digest=message.batch_digest,
                           global_sequence=7, shard_sequences={1: 7, 2: 7})
            )
        assert proposed == ["ahl-after-catchup"]

        # Committee side: a stale replica's prepare claims no indices.
        committee_primary = cluster.primary_of(0)
        committee_primary._cross_order_stale = True
        committee_primary._on_batch_committed(0, 1, batch_digest((request,)), (request,))
        record = committee_primary.ahl_record(batch_digest((request,)))
        assert record.prepare_sent
        assert record.shard_sequences == {}


class TestSharper:
    def test_cross_shard_transaction_completes(self):
        cluster = build_cluster(num_shards=3, replica_class=SharperReplica)
        txn = _cross_txn(cluster, (0, 1, 2), "sharper-cst")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=120.0)
        assert cluster.completed_transactions() == 1

    def test_all_involved_shards_execute(self):
        cluster = build_cluster(num_shards=3, replica_class=SharperReplica)
        txn = _cross_txn(cluster, (0, 1, 2), "sharper-exec")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=120.0)
        cluster.run(duration=cluster.simulator.now + 5.0)
        for shard in (0, 1, 2):
            key = next(iter(txn.keys_for(shard)))
            for replica in cluster.shard_replicas(shard):
                assert replica.store.read(key) == f"sharper-exec@{shard}"

    def test_global_quadratic_communication(self):
        # Sharper's cross-shard prepare is all-to-all among every replica of
        # every involved shard: 12 replicas each broadcasting to 12 -> 132
        # network sends (self-delivery is local).
        cluster = build_cluster(num_shards=3, replica_class=SharperReplica)
        cluster.submit(_cross_txn(cluster, (0, 1, 2), "sharper-quadratic"))
        assert cluster.run_until_clients_done(timeout=120.0)
        counts = cluster.message_counts()
        assert counts["CrossPrepare"] == 12 * 11
        assert counts["CrossCommit"] == 12 * 11

    def test_sharper_sends_more_cross_messages_than_ringbft(self):
        sharper = build_cluster(num_shards=3, replica_class=SharperReplica)
        sharper.submit(_cross_txn(sharper, (0, 1, 2), "compare-sharper"))
        assert sharper.run_until_clients_done(timeout=120.0)

        ring = build_cluster(num_shards=3)
        ring.submit(_cross_txn(ring, (0, 1, 2), "compare-ring"))
        assert ring.run_until_clients_done(timeout=120.0)
        ring.run(duration=ring.simulator.now + 5.0)

        sharper_cross = sum(
            count
            for name, count in sharper.message_counts().items()
            if name in ("CrossPropose", "CrossPrepare", "CrossCommit")
        )
        ring_cross = sum(
            count
            for name, count in ring.message_counts().items()
            if name in ("Forward", "Execute")
        )
        assert sharper_cross > ring_cross

    def test_single_shard_transactions_run_plain_pbft(self):
        cluster = build_cluster(num_shards=3, replica_class=SharperReplica)
        cluster.submit(_single_txn(cluster, 1, "sharper-single"))
        assert cluster.run_until_clients_done(timeout=60.0)
        counts = cluster.message_counts()
        assert "CrossPropose" not in counts

    def test_initiator_shard_record_state(self):
        cluster = build_cluster(num_shards=3, replica_class=SharperReplica)
        txn = _cross_txn(cluster, (1, 2), "sharper-record")
        request = ClientRequest(sender="client-0", transaction=txn)
        digest = batch_digest((request,))
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=120.0)
        record = cluster.primary_of(1).sharper_record(digest)
        assert record is not None
        assert record.committed and record.executed

    def test_multiple_cross_shard_transactions(self):
        cluster = build_cluster(num_shards=3, replica_class=SharperReplica)
        for i in range(4):
            cluster.submit(_cross_txn(cluster, (0, 1), f"sharper-multi-{i}"))
        assert cluster.run_until_clients_done(timeout=200.0)
        assert cluster.completed_transactions() == 4
