"""Integration tests: Byzantine message-level misbehaviour is contained.

These tests inject forged or equivocating protocol messages directly into
replicas and check that the well-formedness rules of Section 3 (authenticated
communication, commit certificates) stop them from affecting safety.
"""

from repro.common.crypto import SignatureScheme
from repro.common.messages import (
    ClientRequest,
    Commit,
    CommitCertificate,
    Forward,
    PrePrepare,
    batch_digest,
)
from repro.consensus.pbft.log import SlotState
from repro.txn.transaction import TransactionBuilder

from tests.conftest import build_cluster


def _request(txn_id, shards, cluster):
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        builder.read_modify_write(shard, cluster.table.local_record(shard, 0), f"{txn_id}@{shard}")
    return ClientRequest(sender="client-0", transaction=builder.build())


def _deliver_tagged(sender_replica, message, receiver):
    """Deliver a hand-crafted broadcast with a genuine MAC tag.

    Intra-shard broadcasts must carry a valid pairwise tag from the claimed
    sender; a Byzantine sender *can* always mint tags with its own keys, so
    these attacks are injected fully authenticated -- the defences under test
    are the protocol-level well-formedness rules, not the MAC gate.
    """
    sender_replica._authenticate_for_audience(message, [receiver.replica_id])
    receiver.deliver(message)


class TestEquivocatingPrimary:
    def test_second_proposal_for_same_sequence_is_rejected(self):
        cluster = build_cluster(num_shards=1)
        replica = cluster.replica(0, 1)
        primary_replica = cluster.primary_of(0)
        primary = primary_replica.replica_id

        first = _request("equivocate-a", (0,), cluster)
        second = _request("equivocate-b", (0,), cluster)
        proposal_a = PrePrepare(
            sender=primary, view=0, sequence=1, batch_digest=batch_digest((first,)), requests=(first,)
        )
        proposal_b = PrePrepare(
            sender=primary, view=0, sequence=1, batch_digest=batch_digest((second,)), requests=(second,)
        )
        _deliver_tagged(primary_replica, proposal_a, replica)
        _deliver_tagged(primary_replica, proposal_b, replica)
        # The replica binds to the first proposal only: exactly one Prepare
        # broadcast (one send per shard peer), not two.
        assert replica.log.accepted_digest(0, 1) == proposal_a.batch_digest
        assert replica.stats.sent_count.get("Prepare", 0) == len(replica.shard_peers) - 1

    def test_proposal_from_non_primary_is_ignored(self):
        cluster = build_cluster(num_shards=1)
        replica = cluster.replica(0, 1)
        impostor_replica = cluster.replica(0, 2)
        request = _request("impostor", (0,), cluster)
        proposal = PrePrepare(
            sender=impostor_replica.replica_id,
            view=0,
            sequence=1,
            batch_digest=batch_digest((request,)),
            requests=(request,),
        )
        _deliver_tagged(impostor_replica, proposal, replica)
        assert not replica.log.has_accepted(0, 1)

    def test_proposal_with_mismatched_digest_is_ignored(self):
        cluster = build_cluster(num_shards=1)
        replica = cluster.replica(0, 1)
        primary_replica = cluster.primary_of(0)
        request = _request("bad-digest", (0,), cluster)
        proposal = PrePrepare(
            sender=primary_replica.replica_id,
            view=0,
            sequence=1,
            batch_digest=b"\x00" * 32,
            requests=(request,),
        )
        _deliver_tagged(primary_replica, proposal, replica)
        assert not replica.log.has_accepted(0, 1)


class TestForgedForwardCertificates:
    def _forward(self, cluster, signatures, requests):
        digest = batch_digest(requests)
        certificate = CommitCertificate(
            shard=0, view=0, sequence=1, batch_digest=digest, signatures=signatures
        )
        return Forward(
            sender=cluster.replica(0, 0).replica_id,
            requests=requests,
            certificate=certificate,
            batch_digest=digest,
            origin_shard=0,
        )

    def test_forward_without_valid_certificate_is_ignored(self):
        cluster = build_cluster(num_shards=2)
        receiver = cluster.replica(1, 0)
        requests = (_request("forged-cst", (0, 1), cluster),)
        forward = self._forward(cluster, signatures=(), requests=requests)
        # Tagged by its genuine sender: the defence under test is the missing
        # commit certificate, not the MAC gate.
        _deliver_tagged(cluster.replica(0, 0), forward, receiver)
        assert receiver.cross_record(forward.batch_digest) is None

    def test_forward_with_forged_signatures_is_ignored(self):
        cluster = build_cluster(num_shards=2)
        receiver = cluster.replica(1, 0)
        requests = (_request("forged-sigs", (0, 1), cluster),)
        digest = batch_digest(requests)
        # Signatures over the *wrong* payload: they will not verify against
        # the certificate's commit payload.
        scheme = SignatureScheme(cluster.keystore)
        bad_signatures = tuple(
            scheme.sign(f"r{i}@S0", b"not-the-commit-payload") for i in range(3)
        )
        forward = self._forward(cluster, signatures=bad_signatures, requests=requests)
        _deliver_tagged(cluster.replica(0, 0), forward, receiver)
        assert receiver.cross_record(digest) is None

    def test_untagged_forward_is_rejected_before_certificate_checks(self):
        cluster = build_cluster(num_shards=2)
        receiver = cluster.replica(1, 0)
        requests = (_request("untagged-fwd", (0, 1), cluster),)
        digest = batch_digest(requests)
        commit = Commit(sender=cluster.replica(0, 0).replica_id, view=0, sequence=1, batch_digest=digest)
        scheme = SignatureScheme(cluster.keystore)
        signatures = tuple(
            scheme.sign(f"r{i}@S0", commit.signed_payload()) for i in range(3)
        )
        forward = self._forward(cluster, signatures=signatures, requests=requests)
        receiver.deliver(forward)  # genuine certificate, but no MAC vector
        assert receiver.auth_rejections == 1
        assert receiver.cross_record(digest) is None

    def test_forward_with_genuine_certificate_is_accepted(self):
        cluster = build_cluster(num_shards=2)
        receiver = cluster.replica(1, 0)
        requests = (_request("genuine-cst", (0, 1), cluster),)
        digest = batch_digest(requests)
        commit = Commit(sender=cluster.replica(0, 0).replica_id, view=0, sequence=1, batch_digest=digest)
        scheme = SignatureScheme(cluster.keystore)
        signatures = tuple(
            scheme.sign(f"r{i}@S0", commit.signed_payload()) for i in range(3)
        )
        forward = self._forward(cluster, signatures=signatures, requests=requests)
        _deliver_tagged(cluster.replica(0, 0), forward, receiver)
        record = receiver.cross_record(digest)
        assert record is not None
        assert record.forward_senders[0] == {str(cluster.replica(0, 0).replica_id)}

    def test_forged_commit_signature_does_not_count_toward_certificates(self):
        cluster = build_cluster(num_shards=2)
        replica = cluster.replica(0, 1)
        scheme = SignatureScheme(cluster.keystore)
        # A Byzantine replica tries to forge a commit signature for a peer it
        # does not control; the keystore refuses to hand over that key, so at
        # the protocol level such a message can never be well-formed.
        import pytest

        from repro.errors import CryptoError

        with pytest.raises(CryptoError):
            scheme.sign(
                str(cluster.replica(0, 2).replica_id),
                b"payload",
                cluster.keystore.signing_key(str(replica.replica_id)),
            )


class TestSafetyUnderEquivocationAttempt:
    def test_honest_quorum_still_commits_the_first_proposal(self):
        cluster = build_cluster(num_shards=1)
        primary = cluster.primary_of(0)
        request = _request("honest-commit", (0,), cluster)
        # The primary proposes normally ...
        cluster.client.submit(request.transaction)
        assert cluster.run_until_clients_done(timeout=30.0)
        # ... and a late equivocating proposal for the same sequence changes nothing.
        other = _request("late-equivocation", (0,), cluster)
        equivocation = PrePrepare(
            sender=primary.replica_id,
            view=0,
            sequence=1,
            batch_digest=batch_digest((other,)),
            requests=(other,),
        )
        for replica in cluster.shard_replicas(0):
            _deliver_tagged(primary, equivocation, replica)
        cluster.run(duration=cluster.simulator.now + 5.0)
        for replica in cluster.shard_replicas(0):
            assert replica.ledger.contains_txn("honest-commit")
            assert not replica.ledger.contains_txn("late-equivocation")
            assert replica.log.state(0, 1) in (SlotState.COMMITTED, SlotState.EXECUTED)
