"""Integration tests: one WAN model across the three execution backends.

The acceptance bar for the unified link model:

* the same seeded geo workload completes on the simulator, the asyncio
  real-time stack, and the TCP socket backend through one shared
  :class:`~repro.netem.NetemPolicy` object;
* the socket backend's *measured* per-link one-way delays match the
  configured (asymmetric) matrix within tolerance;
* the simulator's delivery schedule is byte-for-byte deterministic across
  runs of the same seed.
"""

import pytest

from repro.common.messages import Checkpoint
from repro.engine import Deployment, SocketBackend
from repro.errors import NetworkError
from repro.experiments import wan
from repro.net.launcher import build_system_config, build_workload
from repro.netem import DelayMatrix, NetemPolicy
from repro.sim.node import Node


class TestSharedPolicyAcrossBackends:
    def test_same_geo_workload_completes_on_all_three_backends(self):
        """One NetemPolicy object, one seeded workload, three substrates."""
        rows = wan.run(
            backends=("sim", "realtime", "socket"),
            transactions=6,
            shards=2,
            replicas_per_shard=4,
            geo="wan3",
            seed=2022,
        )
        assert [row["backend"] for row in rows] == ["sim", "realtime", "socket"]
        for row in rows:
            assert row["completed"] == "6/6", row
            assert row["consistent"], row
            # WAN structure is visible on every backend: a cross-shard mix in
            # wan3 regions cannot finish with LAN-grade latency.
            assert row["avg_latency_ms"] > 10.0, row

    def test_geo_socket_run_is_measurably_slower_than_loopback(self):
        kwargs = dict(transactions=6, shards=2, replicas_per_shard=4, seed=2022)
        geo_row = wan.run_protocol("socket", geo="wan3", **kwargs)[0]
        plain, _ = wan.run_one("socket", geo=None, **kwargs)
        assert geo_row["completed"] == "6/6"
        assert plain.all_completed
        assert geo_row["avg_latency_ms"] > plain.avg_latency * 1000.0 + 10.0


class _Probe(Node):
    """Records (sequence -> arrival protocol time) for delay measurement."""

    def __init__(self, address, region, network):
        super().__init__(address, region, network)
        self.arrivals = {}

    def on_message(self, message):
        self.arrivals[message.sequence] = self.now


class TestSocketHonoursDelayMatrix:
    def test_measured_one_way_delays_match_an_asymmetric_matrix(self):
        """a->b is configured 4x slower than b->a; the wire must show it."""
        ab_delay, ba_delay = 0.080, 0.020
        matrix = (
            DelayMatrix()
            .set("east", "west", ab_delay)
            .set("west", "east", ba_delay)
            .set("east", "east", 0.0005)
            .set("west", "west", 0.0005)
        )
        backend = SocketBackend(netem=NetemPolicy(matrix=matrix), seed=5)
        try:
            transport = backend.transport
            a = _Probe("a", "east", transport)
            b = _Probe("b", "west", transport)
            count = 8
            sent_ab, sent_ba = {}, {}
            for i in range(count):
                sent_ab[i] = backend.scheduler.now
                transport.send("a", "b", Checkpoint(sender="a", sequence=i, state_digest=b"x"))
            for i in range(count, 2 * count):
                sent_ba[i] = backend.scheduler.now
                transport.send("b", "a", Checkpoint(sender="b", sequence=i, state_digest=b"x"))
            done = backend.run_until(
                lambda: len(a.arrivals) == count and len(b.arrivals) == count, timeout=20.0
            )
            assert done, (len(a.arrivals), len(b.arrivals))

            measured_ab = [b.arrivals[i] - sent_ab[i] for i in sent_ab]
            measured_ba = [a.arrivals[i] - sent_ba[i] for i in sent_ba]
            jitter = NetemPolicy().latency.jitter_fraction
            # Lower bound is hard (the frame is *held* send-side for the
            # emulated delay); the upper bound adds slack for loopback TCP,
            # loop scheduling, and the driver's polling granularity.
            for sample in measured_ab:
                assert ab_delay <= sample <= ab_delay * (1 + jitter) + 0.25, measured_ab
            for sample in measured_ba:
                assert ba_delay <= sample <= ba_delay * (1 + jitter) + 0.25, measured_ba
            # The asymmetry itself must be visible, not just the bounds.
            avg_ab = sum(measured_ab) / len(measured_ab)
            avg_ba = sum(measured_ba) / len(measured_ba)
            assert avg_ab > avg_ba + (ab_delay - ba_delay) / 2
            assert transport.stats.netem_delayed == 2 * count
        finally:
            backend.close()

    def test_unroutable_delayed_send_raises_at_send_time(self):
        """An unknown destination must fail in the caller, not inside the
        timer callback the emulated delay defers the enqueue to."""
        backend = SocketBackend(netem=NetemPolicy(), seed=3)
        try:
            _Probe("a", "oregon", backend.transport)
            with pytest.raises(NetworkError):
                backend.transport.send(
                    "a", "ghost", Checkpoint(sender="a", sequence=0, state_digest=b"x")
                )
        finally:
            backend.close()

    def test_delayed_frames_are_dropped_once_the_transport_is_closing(self):
        """A netem-held frame whose timer fires during teardown must not
        enqueue onto (or recreate) a peer link."""
        backend = SocketBackend(netem=NetemPolicy(), seed=3)
        try:
            transport = backend.transport
            a = _Probe("a", "oregon", transport)
            _Probe("b", "london", transport)
            transport._closing = True
            transport.send("a", "b", Checkpoint(sender=str(a.address), sequence=0,
                                                state_digest=b"x"))
            backend.run_for(0.2)
            assert transport.stats.dropped_frames == 1
            assert transport.stats.frames_sent == 0
        finally:
            backend.close()

    def test_delayed_local_deliveries_are_suppressed_once_closing(self):
        """The zero-copy local path honours the same teardown rule as the
        wire path: a held delivery must not reach a node mid-dismantle."""
        backend = SocketBackend(netem=NetemPolicy(), wire_loopback=False, seed=3)
        try:
            transport = backend.transport
            _Probe("a", "oregon", transport)
            b = _Probe("b", "london", transport)
            transport._closing = True
            transport.send("a", "b", Checkpoint(sender="a", sequence=0, state_digest=b"x"))
            backend.run_for(0.2)
            assert b.arrivals == {}
            assert transport.stats.delivered == 0
        finally:
            backend.close()


class TestSimScheduleDeterminism:
    def _run_once(self, seed=2022):
        config = build_system_config(
            shards=2, replicas_per_shard=4, seed=seed, num_clients=2, geo="wan3"
        )
        deployment = Deployment.build(
            config,
            backend="sim",
            num_clients=2,
            batch_size=1,
            seed=seed,
            netem=NetemPolicy.for_profile("wan3"),
        )
        try:
            workload = build_workload(config, list(deployment.clients), 10, seed)
            result = deployment.run_workload(workload, timeout=120.0)
            chains = {
                shard: [block.block_hash() for replica in deployment.shard_replicas(shard)
                        for block in replica.ledger.blocks()]
                for shard in config.shard_ids
            }
            events = deployment.simulator.processed_events
        finally:
            deployment.close()
        return result, chains, events

    def test_same_seed_identical_schedule_latencies_and_ledgers(self):
        first = self._run_once()
        second = self._run_once()
        assert first[0].all_completed
        # Byte-for-byte: exact float equality on every latency sample, the
        # exact event count, and identical block-hash chains on every replica.
        assert first[0].latencies == second[0].latencies
        assert first[0].message_counts == second[0].message_counts
        assert first[2] == second[2]
        assert first[1] == second[1]

    def test_different_seed_changes_the_schedule(self):
        baseline = self._run_once(seed=2022)
        other = self._run_once(seed=2023)
        assert baseline[0].latencies != other[0].latencies


class TestSimRealtimeDecisionParity:
    def test_same_seed_identical_link_decisions_across_backend_emulators(self):
        """The emulators inside a sim and a realtime backend built from the
        same seed+policy answer identically for identical traffic."""
        from repro.engine import backend_by_name

        policy = NetemPolicy.for_profile("wan3")
        sim = backend_by_name("sim", seed=13, netem=policy)
        rt = backend_by_name("realtime", seed=13, netem=policy)
        try:
            for emulator in (sim.transport.emulator, rt.transport.emulator):
                emulator.assign_regions({"a": "oregon", "b": "montreal"})
            sim_decisions = [sim.transport.emulator.decide("a", "b", 512) for _ in range(40)]
            rt_decisions = [rt.transport.emulator.decide("a", "b", 512) for _ in range(40)]
            assert sim_decisions == rt_decisions
        finally:
            rt.close()
