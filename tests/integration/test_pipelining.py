"""Integration tests: the pipelined proposal window is safe under faults.

A primary with ``PipelineConfig.depth = k`` runs consensus on up to k
sequence numbers concurrently, which makes *gaps* below ``next_sequence``
a normal condition rather than a bug.  These tests pin down the three
safety obligations that creates:

* a view change with a gap in the in-flight window (prepared k and k+2,
  slot k+1 unprepared) re-proposes the prepared slots and abandons the gap,
* the GC watermark never truncates an open proposal slot,
* any interleaving of the k in-flight slots executes in sequence order on
  every replica (identical chains, no duplicates, no reordering).
"""

import random

import pytest

from repro.cluster import Cluster
from repro.common.messages import (
    ClientRequest,
    PrePrepare,
    PreparedProof,
    ViewChange,
    batch_digest,
)
from repro.config import PipelineConfig, SystemConfig, TimerConfig
from repro.core.replica import RingBftReplica
from repro.txn.transaction import TransactionBuilder

from tests.conftest import small_workload


def _pipelined_cluster(
    depth=4,
    num_shards=1,
    checkpoint_interval=4,
    num_clients=1,
    **workload_overrides,
):
    timers = TimerConfig(
        local_timeout=1.0,
        remote_timeout=2.0,
        transmit_timeout=3.0,
        client_timeout=1.5,
        checkpoint_interval=checkpoint_interval,
    )
    config = SystemConfig.uniform(
        num_shards,
        4,
        timers=timers,
        workload=small_workload(),
        pipeline=PipelineConfig(depth=depth),
    )
    return Cluster.build(
        config, replica_class=RingBftReplica, num_clients=num_clients, batch_size=1
    )


def _single_txn(cluster, shard, index, txn_id):
    key = cluster.table.local_record(shard, index)
    return (
        TransactionBuilder(txn_id, "client-0").read_modify_write(shard, key, f"{txn_id}-v").build()
    )


def _cross_txn(cluster, txn_id, shards=(0, 1)):
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        builder.read_modify_write(shard, cluster.table.local_record(shard, 1), f"{txn_id}@{shard}")
    return builder.build()


class TestPipelinedWindow:
    def test_window_opens_multiple_slots(self):
        cluster = _pipelined_cluster(depth=4)
        for i in range(10):
            cluster.submit(_single_txn(cluster, 0, i, f"win-{i}"))
        assert cluster.run_until_clients_done(timeout=120.0)
        primary = cluster.primary_of(0)
        assert primary.peak_open_slots > 1
        assert primary.peak_open_slots <= 4
        assert cluster.ledgers_consistent(0)

    def test_depth_one_reproduces_default_config_chains(self):
        """``depth=1`` takes the exact legacy code path: same submissions,
        same seeds, identical block chains as a config without a pipeline."""

        def run_one(pipelined):
            timers = TimerConfig(
                local_timeout=1.0,
                remote_timeout=2.0,
                transmit_timeout=3.0,
                client_timeout=1.5,
            )
            kwargs = {"timers": timers, "workload": small_workload()}
            if pipelined:
                kwargs["pipeline"] = PipelineConfig(depth=1)
            config = SystemConfig.uniform(1, 4, **kwargs)
            cluster = Cluster.build(
                config, replica_class=RingBftReplica, num_clients=1, batch_size=1
            )
            for i in range(8):
                cluster.submit(_single_txn(cluster, 0, i, f"classic-{i}"))
            assert cluster.run_until_clients_done(timeout=120.0)
            return [b.block_hash().hex() for b in cluster.primary_of(0).ledger.blocks()]

        assert run_one(pipelined=True) == run_one(pipelined=False)


class TestViewChangeWithWindowGap:
    def test_gap_in_flight_window_is_recovered_by_view_change(self):
        """Slots k and k+2 reach the backups, k+1 never does.

        The backups commit k and k+2 but cannot execute past the gap; the
        view change must re-propose the prepared slots, fill k+1 with a
        no-op, and the dropped request must still commit (at a later
        sequence) after the client retransmits.
        """
        cluster = _pipelined_cluster(depth=4)
        # Warm up: one committed transaction under the old view.
        cluster.submit(_single_txn(cluster, 0, 0, "warm-0"))
        assert cluster.run_until_clients_done(timeout=60.0)

        primary = cluster.primary_of(0)
        gap_sequence = primary.next_sequence + 1
        original_broadcast = primary._broadcast_shard

        def dropping_broadcast(message, include_self=True):
            if isinstance(message, PrePrepare) and message.sequence == gap_sequence:
                return  # the window's middle slot never leaves the primary
            original_broadcast(message, include_self)

        primary._broadcast_shard = dropping_broadcast

        txn_ids = [f"gap-{i}" for i in range(3)]
        for i, txn_id in enumerate(txn_ids):
            cluster.submit(_single_txn(cluster, 0, i + 1, txn_id))
        assert cluster.run_until_clients_done(timeout=180.0)
        cluster.run(duration=cluster.simulator.now + 5.0)

        replicas = cluster.shard_replicas(0)
        # The shard moved to a new view to get past the gap...
        assert any(r.view >= 1 for r in replicas)
        # ...every submitted transaction still committed exactly once...
        committed = {tid for tid in txn_ids}
        for replica in replicas:
            order = replica.ledger.commit_order(committed)
            assert sorted(order) == sorted(txn_ids)
        # ...and the chains agree on the single commit order.
        assert cluster.ledgers_consistent(0)
        orders = {tuple(r.ledger.commit_order(committed)) for r in replicas}
        assert len(orders) == 1

    def test_new_view_reproposes_prepared_slots_and_abandons_gap(self):
        """White-box: ``_build_reproposals`` over votes with a window gap.

        Votes carry prepared certificates for sequences 1 and 3 but nothing
        for sequence 2 -- exactly what a view change observes when the middle
        slot of an in-flight window never prepared.
        """
        cluster = _pipelined_cluster(depth=4)
        new_primary = cluster.primary_of(0, view=1)

        def request(txn_id, index):
            txn = _single_txn(cluster, 0, index, txn_id)
            return ClientRequest(sender="client-0", transaction=txn)

        prepared = tuple(
            PreparedProof(
                sequence=sequence,
                view=0,
                batch_digest=batch_digest(batch),
                prepares=new_primary.quorum.commit_quorum,
                requests=batch,
            )
            for sequence, batch in (
                (1, (request("prepared-1", 1),)),
                (3, (request("prepared-3", 3),)),
            )
        )
        votes = {
            replica.replica_id: ViewChange(
                sender=replica.replica_id,
                new_view=1,
                last_stable_sequence=0,
                prepared=prepared,
            )
            for replica in cluster.shard_replicas(0)[:3]
        }

        reproposals, abandoned = new_primary._build_reproposals(1, votes)
        assert [p.sequence for p in reproposals] == [1, 3]
        assert abandoned == (2,)
        # Re-proposals carry the original batches, so backups that never saw
        # the old view's PrePrepare can still verify and execute them.
        assert all(p.requests for p in reproposals)
        assert all(p.view == 1 for p in reproposals)

        # Installing the new view drives both slots to commit and fills the
        # gap: every replica executes 1 and 3 and skips 2 as a no-op.
        new_primary._install_new_view_as_primary(1, votes)
        cluster.run(duration=cluster.simulator.now + 30.0)
        for replica in cluster.shard_replicas(0):
            assert replica.view == 1
            assert replica.last_executed >= 3
            assert replica.ledger.contains_txn("prepared-1")
            assert replica.ledger.contains_txn("prepared-3")
        assert cluster.ledgers_consistent(0)


class TestGcNeverTruncatesOpenSlot:
    def test_gc_floor_is_clamped_below_open_slots(self):
        cluster = _pipelined_cluster(depth=4)
        replica = cluster.primary_of(0)
        replica.last_executed = 50
        replica._ledger_appended = 50
        assert replica._gc_floor(40) == 40
        replica._open_slots = {5, 9}
        assert replica._gc_floor(40) == 4

    def test_watermark_never_reaches_an_open_slot_under_load(self):
        cluster = _pipelined_cluster(depth=4, checkpoint_interval=2)
        violations = []
        for replica in cluster.shard_replicas(0):
            original = replica._truncate_below

            def tracked(watermark, replica=replica, original=original):
                if replica._open_slots and watermark >= min(replica._open_slots):
                    violations.append((replica.replica_id, watermark, min(replica._open_slots)))
                original(watermark)

            replica._truncate_below = tracked

        for i in range(24):
            cluster.submit(_single_txn(cluster, 0, i % 8, f"busy-{i}"))
        assert cluster.run_until_clients_done(timeout=240.0)
        cluster.run(duration=cluster.simulator.now + 5.0)

        primary = cluster.primary_of(0)
        assert primary.gc_runs >= 1  # GC did run while the window was active
        assert violations == []
        assert cluster.ledgers_consistent(0)


class TestInterleavedExecutionOrder:
    """Property: any interleaving of the k in-flight slots executes in
    sequence order on all replicas -- same chain, no duplicates, no gaps."""

    @pytest.mark.parametrize("depth", (2, 4))
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_interleaved_windows_execute_in_sequence_order(self, depth, seed):
        cluster = _pipelined_cluster(depth=depth, num_shards=2)
        rng = random.Random(seed)

        txns = []
        for i in range(12):
            if rng.random() < 0.3:
                txns.append(_cross_txn(cluster, f"p{depth}s{seed}-x{i}"))
            else:
                shard = rng.randrange(2)
                txns.append(_single_txn(cluster, shard, i % 8, f"p{depth}s{seed}-l{i}"))
        rng.shuffle(txns)
        txn_ids = {txn.txn_id for txn in txns}

        for txn in txns:
            cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=240.0)

        for shard in (0, 1):
            replicas = cluster.shard_replicas(shard)
            assert cluster.ledgers_consistent(shard)
            # One global commit order per shard, identical on every replica.
            orders = {tuple(r.ledger.commit_order(txn_ids)) for r in replicas}
            assert len(orders) == 1
            order = orders.pop()
            # Exactly-once: no transaction appears twice in a chain.
            assert len(order) == len(set(order))
            for replica in replicas:
                # Blocks were appended strictly in sequence order.
                sequences = [b.sequence for b in replica.ledger.blocks()]
                assert sequences == sorted(sequences)
                assert len(sequences) == len(set(sequences))
