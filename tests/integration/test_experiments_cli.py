"""Integration tests: experiment harness, figure generators, and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments import figure1, figure8, figure9, figure10
from repro.experiments.runner import EXPERIMENTS, format_table, run_experiment


class TestFigure1:
    def test_rows_cover_all_protocols_and_node_counts(self):
        rows = figure1.run(node_counts=(4, 16))
        protocols = {row["protocol"] for row in rows}
        assert protocols == {
            "RingBFT",
            "RingBFT_X",
            "Pbft",
            "Sbft",
            "HotStuff",
            "Rcc",
            "PoE",
            "Zyzzyva",
        }
        assert {row["nodes_per_group"] for row in rows} == {4, 16}

    def test_ringbft_dominates_and_cross_shard_costs_throughput(self):
        rows = {(r["protocol"], r["nodes_per_group"]): r["throughput_tps"] for r in figure1.run((16,))}
        assert rows[("RingBFT", 16)] > rows[("RingBFT_X", 16)]
        for protocol in ("Pbft", "Zyzzyva", "Sbft", "PoE", "HotStuff", "Rcc"):
            assert rows[("RingBFT", 16)] > rows[(protocol, 16)]

    def test_total_nodes_reported(self):
        rows = figure1.run((4,))
        ring = next(r for r in rows if r["protocol"] == "RingBFT")
        pbft = next(r for r in rows if r["protocol"] == "Pbft")
        assert ring["total_nodes"] == 36  # 9 shards x 4 replicas
        assert pbft["total_nodes"] == 4


class TestFigure8:
    def test_each_sweep_produces_all_three_protocols(self):
        sweeps = [
            figure8.impact_of_shards((3, 15)),
            figure8.impact_of_replicas((10, 28)),
            figure8.impact_of_cross_shard_rate((0.0, 0.3)),
            figure8.impact_of_batch_size((10, 100)),
            figure8.impact_of_involved_shards((1, 15)),
            figure8.impact_of_clients((3_000, 20_000)),
        ]
        for rows in sweeps:
            assert {row["protocol"] for row in rows} == {"RingBFT", "Sharper", "AHL"}
            assert all(row["throughput_tps"] > 0 for row in rows)
            assert all(row["latency_s"] > 0 for row in rows)

    def test_zero_cross_shard_rate_equalises_protocols(self):
        rows = figure8.impact_of_cross_shard_rate((0.0,))
        values = {row["protocol"]: row["throughput_tps"] for row in rows}
        assert values["RingBFT"] == pytest.approx(values["AHL"], rel=1e-6)
        assert values["RingBFT"] == pytest.approx(values["Sharper"], rel=1e-6)

    def test_ringbft_wins_at_fifteen_shards(self):
        rows = figure8.impact_of_shards((15,))
        values = {row["protocol"]: row["throughput_tps"] for row in rows}
        assert values["RingBFT"] > values["Sharper"] > values["AHL"]

    def test_involved_shards_one_behaves_like_single_shard_workload(self):
        rows = figure8.impact_of_involved_shards((1,))
        values = {row["protocol"]: row["throughput_tps"] for row in rows}
        assert values["RingBFT"] == pytest.approx(values["AHL"], rel=1e-6)


class TestFigure9:
    def test_primary_failure_dips_and_recovers(self):
        from repro.experiments.figure9 import Figure9Config

        rows = figure9.run(
            Figure9Config(horizon=40.0, submit_rate_per_s=4.0, failure_time=10.0)
        )
        summary = rows[-1]
        assert summary["replicas_that_changed_view"] >= 9  # 3 shards x >=3 alive replicas
        assert summary["completed_transactions"] > 0
        series = {row["time_s"]: row["throughput_tps"] for row in rows[:-1]}
        before = series[5.0]
        during = series[10.0]
        after_values = [tput for time, tput in series.items() if 20.0 <= time <= 35.0]
        assert during < before
        assert max(after_values) > during

    def test_all_submitted_transactions_eventually_complete(self):
        from repro.experiments.figure9 import Figure9Config

        config = Figure9Config(horizon=30.0, submit_rate_per_s=3.0)
        rows = figure9.run(config)
        summary = rows[-1]
        assert summary["completed_transactions"] == int(config.horizon * config.submit_rate_per_s)


class TestFigure10:
    def test_throughput_decreases_with_remote_reads(self):
        rows = figure10.run((0, 32, 64))
        values = [row["throughput_tps"] for row in rows]
        assert values == sorted(values, reverse=True)

    def test_protocol_validation_resolves_dependencies(self):
        summary = figure10.run_protocol_validation(num_shards=3, remote_reads=4)
        assert summary["completed"]
        assert summary["is_complex"]
        assert summary["resolved_dependencies"] == summary["expected_dependencies"]


class TestRunnerAndCli:
    def test_registry_contains_every_figure(self):
        assert set(EXPERIMENTS) == {
            "figure1",
            "figure8-shards",
            "figure8-replicas",
            "figure8-crossshard",
            "figure8-batch",
            "figure8-involved",
            "figure8-clients",
            "figure9",
            "figure10",
            "wan-backends",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("figure99")

    def test_format_table_aligns_columns(self):
        table = format_table([{"a": 1, "b": "xy"}, {"a": 234, "b": "z"}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert format_table([]) == "(no rows)"

    def test_cli_list_and_run(self, capsys):
        assert main(["list"]) == 0
        assert "figure10" in capsys.readouterr().out
        assert main(["run", "figure10"]) == 0
        out = capsys.readouterr().out
        assert "RingBFT" in out and "remote_reads" in out

    def test_cli_demo_small_cluster(self, capsys):
        exit_code = main(
            [
                "demo",
                "--shards",
                "2",
                "--replicas",
                "4",
                "--transactions",
                "6",
                "--clients",
                "1",
                "--cross-shard",
                "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "ledgers consistent  : True" in out

    def test_cli_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "not-a-figure"])
