"""Integration tests: the Cluster harness and the workload drivers."""

import pytest

from repro.cluster import Cluster
from repro.config import SystemConfig
from repro.errors import ConfigurationError
from repro.metrics.collector import summarize
from repro.workloads.clients import ClosedLoopDriver, OpenLoopDriver
from repro.workloads.ycsb import YcsbWorkloadGenerator

from tests.conftest import build_cluster, small_workload


class TestClusterConstruction:
    def test_build_creates_all_replicas_and_clients(self):
        cluster = build_cluster(num_shards=3, replicas=4, num_clients=2)
        assert len(cluster.replicas) == 12
        assert len(cluster.clients) == 2
        assert cluster.replica(2, 3).shard_id == 2

    def test_replicas_are_preloaded_with_their_partition(self):
        cluster = build_cluster(num_shards=2)
        for shard in (0, 1):
            expected = set(cluster.table.build_partition(shard))
            for replica in cluster.shard_replicas(shard):
                assert set(replica.store.items()) == expected

    def test_duplicate_client_rejected(self):
        cluster = build_cluster()
        with pytest.raises(ConfigurationError):
            cluster.add_client("client-0")

    def test_primary_accessor_follows_view(self):
        cluster = build_cluster()
        assert cluster.primary_of(0).replica_id.index == 0
        assert cluster.primary_of(0, view=2).replica_id.index == 2

    def test_message_and_metric_accessors_start_empty(self):
        cluster = build_cluster()
        assert cluster.total_messages() == 0
        assert cluster.completed_transactions() == 0
        assert cluster.latencies() == []


class TestDrivers:
    def _cluster_with_generator(self, cross=0.4, num_clients=2):
        cluster = build_cluster(num_shards=3, num_clients=num_clients, cross_shard_fraction=cross)
        generator = YcsbWorkloadGenerator(
            cluster.table,
            cluster.directory.ring,
            small_workload(cross_shard_fraction=cross),
            seed=11,
        )
        return cluster, generator

    def test_closed_loop_driver_completes_requested_transactions(self):
        cluster, generator = self._cluster_with_generator()
        driver = ClosedLoopDriver(cluster, generator, total=12, window=2)
        completed = driver.run(timeout=300.0)
        assert completed == 12
        assert driver.submitted == 12
        summary = summarize(
            [record for client in cluster.clients.values() for record in client.completed]
        )
        assert summary.completed == 12
        assert summary.throughput > 0

    def test_open_loop_driver_injects_at_configured_rate(self):
        cluster, generator = self._cluster_with_generator(cross=0.0, num_clients=2)
        driver = OpenLoopDriver(cluster, generator, rate_per_second=10.0, duration=2.0)
        completed = driver.run(extra_drain=20.0)
        assert driver.submitted == 20
        assert completed == 20

    def test_ledgers_stay_consistent_under_driver_load(self):
        cluster, generator = self._cluster_with_generator(cross=0.5)
        ClosedLoopDriver(cluster, generator, total=10, window=2).run(timeout=300.0)
        for shard in cluster.config.shard_ids:
            assert cluster.ledgers_consistent(shard)


class TestUniformConfigIntegration:
    def test_paper_scale_configuration_is_constructible(self):
        # Building the object graph for the paper's 420-replica deployment
        # must be cheap (no simulation is run here).
        config = SystemConfig.uniform(15, 28)
        cluster = Cluster.build(config, num_clients=1, preload_table=False)
        assert len(cluster.replicas) == 420
        assert cluster.directory.quorum(0).commit_quorum == 19
