"""Integration tests: the socket backend and the multi-process launcher.

The same replica/client code that runs on the simulator must run over real
TCP: in one process (wire-loopback mode, every message crossing the full
encode -> frame -> TCP -> decode -> MAC-verify path through the transport's
own listening socket) and across processes (one per replica, spawned by the
launcher).  Parity tests pin the socket backend to the simulator: the same
workload commits the same transactions.
"""

import socket as _socket

import pytest

from repro.config import SystemConfig, WorkloadConfig
from repro.engine import Deployment, SocketBackend, backend_by_name
from repro.net.launcher import build_system_config, build_workload, deploy_local
from repro.txn.transaction import TransactionBuilder


def _config(num_shards=2, cross=0.5):
    return SystemConfig.uniform(
        num_shards,
        4,
        workload=WorkloadConfig(
            num_records=200,
            cross_shard_fraction=cross,
            batch_size=1,
            num_clients=2,
            seed=11,
        ),
    )


def _mixed_workload(num_shards=2):
    transactions = []
    for i in range(4):
        shard = i % num_shards
        transactions.append(
            TransactionBuilder(f"mix-{i}", f"client-{i % 2}")
            .read_modify_write(shard, f"user{3 + i}", f"v{i}")
            .build()
        )
    builder = TransactionBuilder("mix-cross", "client-0")
    for shard in range(num_shards):
        builder.read_modify_write(shard, f"user{9 + shard}", f"x@{shard}")
    transactions.append(builder.build())
    return transactions


class TestSocketBackendRegistry:
    def test_backend_by_name_builds_socket_backend(self):
        backend = backend_by_name("socket", seed=1, time_scale=0.02, latency=None)
        try:
            assert isinstance(backend, SocketBackend)
            # time_scale is dropped for sockets: protocol time is wall time.
            assert backend.time_scale == 1.0
            host, port = backend.listen_endpoint
            assert port > 0
        finally:
            backend.close()

    def test_deployment_build_accepts_socket_by_name(self):
        deployment = Deployment.build(_config(), backend="socket", num_clients=1)
        try:
            assert deployment.backend.name == "socket"
        finally:
            deployment.close()


class TestSingleProcessSocketDeployment:
    """wire_loopback: every message crosses a real TCP socket in one process."""

    def test_mixed_workload_over_tcp_loopback(self):
        deployment = Deployment.build(
            _config(), backend="socket", num_clients=2, batch_size=1, seed=11
        )
        try:
            result = deployment.run_workload(_mixed_workload(), timeout=60.0)
            assert result.backend == "socket"
            assert result.all_completed
            assert result.ledgers_consistent
            assert result.message_counts.get("Forward", 0) > 0
            stats = deployment.backend.transport.stats
            # Everything travelled the wire: frames in == frames out, no
            # malformed traffic, the multicast fast path was exercised, and
            # not a single MAC failed on the decoded per-receiver copies.
            assert stats.frames_sent > 0
            assert stats.frames_received == stats.frames_sent
            assert stats.multicasts > 0
            assert stats.malformed_frames == 0
            assert sum(r.auth_rejections for r in deployment.replicas.values()) == 0
            assert sum(r.auth_verifications for r in deployment.replicas.values()) > 0
        finally:
            deployment.close()

    def test_garbage_on_the_wire_does_not_crash_the_deployment(self):
        """Mid-stream garbage drops that connection; consensus is unharmed."""
        deployment = Deployment.build(
            _config(), backend="socket", num_clients=2, batch_size=1, seed=11
        )
        try:
            host, port = deployment.backend.listen_endpoint
            attacker = _socket.create_connection((host, port))
            attacker.sendall(b"\x00garbage-that-is-not-a-frame" * 8)
            result = deployment.run_workload(_mixed_workload(), timeout=60.0)
            attacker.close()
            assert result.all_completed
            assert result.ledgers_consistent
            assert deployment.backend.transport.stats.malformed_frames >= 1
        finally:
            deployment.close()

    def test_socket_and_sim_commit_the_same_transactions(self):
        """Deployment parity: same workload, same committed txn sets/writes."""
        outcomes = {}
        for backend in ("sim", "socket"):
            deployment = Deployment.build(
                _config(), backend=backend, num_clients=2, batch_size=1, seed=11
            )
            try:
                result = deployment.run_workload(_mixed_workload(), timeout=60.0)
                assert result.all_completed
                outcomes[backend] = {
                    "commits": {
                        shard: frozenset(
                            txn
                            for block in deployment.primary_of(shard).ledger.blocks()[1:]
                            for txn in block.txn_ids
                        )
                        for shard in (0, 1)
                    },
                    "writes": {
                        (shard, key): deployment.primary_of(shard).store.read(key)
                        for shard in (0, 1)
                        for key in (f"user{9 + shard}",)
                    },
                }
            finally:
                deployment.close()
        assert outcomes["sim"] == outcomes["socket"]


@pytest.mark.slow
class TestMultiProcessDeployment:
    """One OS process per replica, coordinated over loopback TCP."""

    def test_deploy_local_completes_a_cross_shard_workload(self):
        outcome = deploy_local(
            shards=2, replicas_per_shard=4, transactions=12, seed=11, timeout=60.0
        )
        result = outcome.result
        assert result.all_completed
        assert result.ledgers_consistent
        assert outcome.aggregate["auth_rejections"] == 0
        assert outcome.aggregate["auth_verifications"] > 0
        assert outcome.aggregate["bytes_on_wire"] > 0
        assert outcome.aggregate["processes"] == 9  # 8 replicas + coordinator
        assert outcome.ok
        # Every process reported, and cross-shard work actually happened.
        assert len(outcome.per_replica) == 8
        assert result.message_counts.get("Forward", 0) > 0
        report = outcome.report()
        assert report["ok"] is True

    def test_deploy_local_matches_the_simulator(self):
        """The multi-process fleet commits exactly the sim's transaction sets."""
        flags = dict(
            shards=2, replicas_per_shard=4, transactions=12, seed=11
        )
        outcome = deploy_local(**flags, timeout=60.0)
        assert outcome.result.all_completed

        config = build_system_config(
            shards=flags["shards"],
            replicas_per_shard=flags["replicas_per_shard"],
            seed=flags["seed"],
        )
        deployment = Deployment.build(config, backend="sim", num_clients=2, seed=flags["seed"])
        try:
            workload = build_workload(
                config, list(deployment.clients), flags["transactions"], flags["seed"]
            )
            sim_result = deployment.run_workload(workload, timeout=120.0)
            assert sim_result.all_completed
            sim_commits = {
                shard: frozenset(
                    txn
                    for block in deployment.primary_of(shard).ledger.blocks()[1:]
                    for txn in block.txn_ids
                )
                for shard in config.shard_ids
            }
        finally:
            deployment.close()
        socket_commits = {
            shard: frozenset(txns) for shard, txns in outcome.shard_commits.items()
        }
        assert socket_commits == sim_commits
        assert any(sim_commits.values()), "workload must commit on at least one shard"
