"""Integration tests: checkpoint-driven garbage collection is safe and effective.

The GC watermark must truncate aggressively enough to bound steady-state
memory, yet never discard evidence that a view change, a dark-replica
catch-up, or an in-flight cross-shard rotation still needs.
"""

from repro.cluster import Cluster
from repro.config import SystemConfig, TimerConfig
from repro.core.replica import RingBftReplica
from repro.faults.injector import FaultInjector
from repro.txn.transaction import TransactionBuilder

from tests.conftest import small_workload


def _cluster(checkpoint_interval=2, num_shards=1, max_forward_retransmissions=50):
    timers = TimerConfig(
        local_timeout=1.0,
        remote_timeout=2.0,
        transmit_timeout=3.0,
        client_timeout=1.5,
        checkpoint_interval=checkpoint_interval,
        max_forward_retransmissions=max_forward_retransmissions,
    )
    config = SystemConfig.uniform(num_shards, 4, timers=timers, workload=small_workload())
    return Cluster.build(config, replica_class=RingBftReplica, num_clients=1, batch_size=1)


def _single_txn(cluster, shard, index, txn_id):
    key = cluster.table.local_record(shard, index)
    return (
        TransactionBuilder(txn_id, "client-0").read_modify_write(shard, key, f"{txn_id}-v").build()
    )


def _cross_txn(cluster, txn_id, shards=(0, 1)):
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        builder.read_modify_write(shard, cluster.table.local_record(shard, 1), f"{txn_id}@{shard}")
    return builder.build()


class TestLogTruncation:
    def test_stable_checkpoints_truncate_consensus_state(self):
        cluster = _cluster(checkpoint_interval=2)
        for i in range(10):
            cluster.submit(_single_txn(cluster, 0, i, f"gc-{i}"))
        assert cluster.run_until_clients_done(timeout=120.0)
        cluster.run(duration=cluster.simulator.now + 5.0)
        for replica in cluster.shard_replicas(0):
            assert replica.gc_runs >= 1
            assert replica.checkpoints.last_stable_sequence >= 8
            # Retained state is bounded by the checkpoint window, not by the
            # ten committed sequences.
            assert replica.log.slot_count <= 2 * 2 + 2
            assert len(replica.batches) <= 2 * 2 + 2
            assert replica.checkpoints.stable_record_count <= replica.checkpoints.keep_stable

    def test_gc_can_be_disabled(self):
        cluster = _cluster(checkpoint_interval=2)
        for replica in cluster.shard_replicas(0):
            replica.gc_enabled = False
        for i in range(10):
            cluster.submit(_single_txn(cluster, 0, i, f"nogc-{i}"))
        assert cluster.run_until_clients_done(timeout=120.0)
        for replica in cluster.shard_replicas(0):
            assert replica.gc_runs == 0
            assert replica.log.slot_count >= 10

    def test_cross_shard_records_are_retired_after_completion(self):
        cluster = _cluster(checkpoint_interval=2, num_shards=2)
        for i in range(4):
            cluster.submit(_cross_txn(cluster, f"cross-{i}"))
        assert cluster.run_until_clients_done(timeout=180.0)
        # Push every shard past another checkpoint so the sweep runs.
        for i in range(6):
            cluster.submit(_single_txn(cluster, 0, i + 10, f"pad0-{i}"))
            cluster.submit(_single_txn(cluster, 1, i + 10, f"pad1-{i}"))
        assert cluster.run_until_clients_done(timeout=180.0)
        cluster.run(duration=cluster.simulator.now + 10.0)
        for shard in (0, 1):
            for replica in cluster.shard_replicas(shard):
                assert replica.cross_records_retired >= 1
                assert len(replica._cross_records) <= 2
                assert replica.pending_cross_shard() == ()


class TestViewChangeAfterTruncation:
    def test_view_change_succeeds_after_logs_were_truncated(self):
        cluster = _cluster(checkpoint_interval=2)
        for i in range(8):
            cluster.submit(_single_txn(cluster, 0, i, f"pre-vc-{i}"))
        assert cluster.run_until_clients_done(timeout=120.0)
        assert all(r.gc_runs >= 1 for r in cluster.shard_replicas(0))

        # The primary goes silent: replicas must view-change using only the
        # evidence that survived truncation.
        cluster.primary_of(0).byzantine_silent = True
        for i in range(3):
            cluster.submit(_single_txn(cluster, 0, i + 20, f"post-vc-{i}"))
        assert cluster.run_until_clients_done(timeout=180.0)
        replicas = [r for r in cluster.shard_replicas(0) if not r.byzantine_silent]
        assert any(r.view >= 1 for r in replicas)
        assert cluster.ledgers_consistent(0)

    def test_dark_replica_catches_up_after_peers_truncated(self):
        cluster = _cluster(checkpoint_interval=2)
        victim = cluster.replica(0, 3)
        cluster.primary_of(0).dark_targets = {victim.replica_id}
        for i in range(8):
            cluster.submit(_single_txn(cluster, 0, i, f"dark-gc-{i}"))
        assert cluster.run_until_clients_done(timeout=120.0)
        cluster.run(duration=cluster.simulator.now + 10.0)
        healthy = [r for r in cluster.shard_replicas(0) if r is not victim]
        # Healthy replicas truncated their logs...
        assert all(r.gc_runs >= 1 for r in healthy)
        # ...and the dark replica still caught up (via state transfer).
        assert victim.state_transfers_completed >= 1
        assert victim.last_executed >= 4
        # A replica that lags must never truncate evidence it has not applied:
        # its own GC watermark trails its execution point.
        assert victim.gc_watermark <= victim.last_executed


class TestInFlightRotationSafety:
    def test_pending_cross_shard_survives_checkpoint_truncation(self):
        cluster = _cluster(checkpoint_interval=2, num_shards=2)
        injector = FaultInjector(cluster)
        # The whole next shard is down: the rotation stalls after shard 0
        # commits, locks, and forwards.
        for index in range(4):
            injector.crash_replica(1, index)
        cluster.submit(_cross_txn(cluster, "stuck-rotation"))
        cluster.run(duration=cluster.simulator.now + 8.0)

        initiator_replicas = cluster.shard_replicas(0)
        records = [
            record
            for replica in initiator_replicas
            for record in replica._cross_records.values()
            if "stuck-rotation" in record.txn_ids
        ]
        assert records and all(record.locked and not record.executed for record in records)
        stuck_sequence = records[0].sequence

        # Keep shard 0 busy so checkpoints stabilise *above* the stuck record.
        # The busy keys start at index 2: the stuck cross-shard record holds
        # index 1, and a busy transaction colliding with it would pend in the
        # sequence-ordered lock queue and stall every later sequence --
        # whether that happens would depend on client-to-primary arrival
        # order, not on what this test is about.
        for i in range(8):
            cluster.submit(_single_txn(cluster, 0, i + 2, f"busy-{i}"))
        cluster.run(duration=cluster.simulator.now + 30.0)
        for replica in initiator_replicas:
            assert replica.checkpoints.last_stable_sequence > stuck_sequence
            # The in-flight rotation pinned the GC watermark below its slot:
            # the record, its consensus evidence, and its pending status all
            # survive truncation.
            assert any(
                "stuck-rotation" in record.txn_ids
                for record in replica._cross_records.values()
            )
            assert "stuck-rotation" in replica.pending_cross_shard()
            assert replica.log.pre_prepare_for(0, stuck_sequence) is not None
            assert replica.gc_watermark < stuck_sequence

        # The next shard recovers: retransmission completes the rotation with
        # the retained evidence.
        for index in range(4):
            injector.recover_replica(1, index)
        assert cluster.run_until_clients_done(timeout=300.0)
        assert all(
            not replica.pending_cross_shard() for replica in cluster.shard_replicas(0)
        )
        assert cluster.ledgers_consistent(0) and cluster.ledgers_consistent(1)

    def test_forward_retransmissions_are_capped(self):
        cluster = _cluster(
            checkpoint_interval=2, num_shards=2, max_forward_retransmissions=3
        )
        injector = FaultInjector(cluster)
        for index in range(4):
            injector.crash_replica(1, index)
        cluster.submit(_cross_txn(cluster, "dead-next-shard"))
        # Far beyond cap * transmit_timeout: an uncapped timer would still be
        # re-sending at the end of this window.
        cluster.run(duration=cluster.simulator.now + 120.0)
        gave_up = [r for r in cluster.shard_replicas(0) if r.forward_give_ups]
        assert gave_up
        for replica in gave_up:
            record = next(
                record
                for record in replica._cross_records.values()
                if "dead-next-shard" in record.txn_ids
            )
            assert record.retransmissions == 3
            assert record.retransmissions_exhausted
            assert replica.stats.dropped_requests.get(
                "forward-retransmissions-exhausted"
            ) == 1
            # The record stays visible to operators rather than vanishing.
            assert "dead-next-shard" in replica.pending_cross_shard()

        # Giving up also releases the GC floor: the shard keeps truncating
        # instead of silently growing for the rest of the run.
        stuck_sequences = {
            record.sequence
            for replica in gave_up
            for record in replica._cross_records.values()
            if "dead-next-shard" in record.txn_ids
        }
        # Keys disjoint from the dead rotation's: it rightly holds its locks
        # (the transaction committed locally), so conflicting keys would block.
        for i in range(8):
            cluster.submit(_single_txn(cluster, 0, i + 10, f"resume-{i}"))
        # The dead cross-shard transaction can never complete, so drive by
        # duration rather than waiting for all clients to drain.
        cluster.run(duration=cluster.simulator.now + 60.0)
        for replica in gave_up:
            assert replica.executor.already_executed("resume-7")
            assert replica.gc_watermark > max(stuck_sequences)
            assert "dead-next-shard" in replica.pending_cross_shard()

    def test_state_transfer_retires_records_the_snapshot_covers(self):
        """A rotation missed locally but adopted via snapshot must not pin GC forever."""
        cluster = _cluster(checkpoint_interval=2, num_shards=2)
        victim = cluster.replica(0, 3)
        txn = _cross_txn(cluster, "missed-rotation")
        from repro.common.messages import ClientRequest, StateTransferReply

        record = victim._record_for(
            b"\x07" * 32,
            frozenset({0, 1}),
            (ClientRequest(sender="client-0", transaction=txn),),
        )
        record.sequence = 1
        record.locked = True
        assert victim._gc_floor(stable_sequence=10) == 0  # pinned below the record

        snapshot = {"user0": "adopted"}
        digest = victim._state_snapshot_digest(snapshot, 6)
        victim._state_transfer_in_flight = True
        for index in (0, 1):
            victim._handle_state_reply(
                StateTransferReply(
                    sender=cluster.replica(0, index).replica_id,
                    last_executed=6,
                    state_digest=digest,
                    store_snapshot=snapshot,
                    executed_txn_ids=("missed-rotation",),
                )
            )
        assert victim.state_transfers_completed == 1
        assert victim.cross_record(b"\x07" * 32) is None
        assert b"\x07" * 32 in victim._retired_digests
        # The floor is no longer pinned by the dead record.
        assert victim._gc_floor(stable_sequence=6) == min(6, victim._ledger_appended)

    def test_retired_digest_does_not_resurrect_a_record(self):
        cluster = _cluster(checkpoint_interval=2, num_shards=2)
        replica = cluster.replica(0, 1)
        from repro.common.messages import Execute

        digest = b"\x42" * 32
        replica._retired_digests[digest] = 4
        replica._handle_execute(
            Execute(
                sender=cluster.replica(1, 1).replica_id,
                batch_digest=digest,
                txn_ids=("ghost",),
                write_sets={},
                origin_shard=1,
            )
        )
        assert replica.cross_record(digest) is None
