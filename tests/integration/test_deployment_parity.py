"""Integration tests: the unified Deployment harness and sim/realtime parity.

The same protocol code must behave the same on both execution backends: every
transaction of a small cross-shard workload completes, ledgers stay
consistent, and both runs report the unified ``RunResult`` shape.
"""

import pytest

from repro.config import SystemConfig, WorkloadConfig
from repro.engine import (
    Deployment,
    RealTimeBackend,
    RunResult,
    SimBackend,
    WorkloadDriver,
    backend_by_name,
)
from repro.errors import ConfigurationError
from repro.txn.transaction import TransactionBuilder
from repro.workloads.ycsb import YcsbWorkloadGenerator

BACKEND_NAMES = ("sim", "realtime")


def _config(num_shards=2, cross=0.5):
    return SystemConfig.uniform(
        num_shards,
        4,
        workload=WorkloadConfig(
            num_records=200,
            cross_shard_fraction=cross,
            batch_size=1,
            num_clients=2,
            seed=11,
        ),
    )


def _mixed_workload(num_shards=2):
    """Four single-shard transactions plus one touching every shard."""
    transactions = []
    for i in range(4):
        shard = i % num_shards
        transactions.append(
            TransactionBuilder(f"mix-{i}", f"client-{i % 2}")
            .read_modify_write(shard, f"user{3 + i}", f"v{i}")
            .build()
        )
    builder = TransactionBuilder("mix-cross", "client-0")
    for shard in range(num_shards):
        builder.read_modify_write(shard, f"user{9 + shard}", f"x@{shard}")
    transactions.append(builder.build())
    return transactions


class TestBackendRegistry:
    def test_backend_by_name_builds_both_backends(self):
        sim = backend_by_name("sim", seed=1)
        assert isinstance(sim, SimBackend)
        rt = backend_by_name("realtime", seed=1, time_scale=0.01)
        assert isinstance(rt, RealTimeBackend)
        rt.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            backend_by_name("quantum")

    def test_sim_backend_ignores_realtime_only_knobs(self):
        backend = backend_by_name("sim", seed=1, time_scale=0.01, latency_scale=0.5)
        assert isinstance(backend, SimBackend)

    def test_realtime_backend_rejects_drain(self):
        backend = RealTimeBackend(time_scale=0.01)
        with pytest.raises(ConfigurationError):
            backend.drain()
        backend.close()


class TestDeploymentParity:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_mixed_workload_completes_with_consistent_ledgers(self, backend):
        config = _config()
        deployment = Deployment.build(
            config, backend=backend, num_clients=2, batch_size=1, time_scale=0.02
        )
        try:
            result = deployment.run_workload(_mixed_workload(), timeout=120.0)
            assert isinstance(result, RunResult)
            assert result.backend == backend
            assert result.all_completed
            assert result.submitted == 5
            assert result.ledgers_consistent
            assert result.total_messages > 0
            assert result.message_counts.get("Forward", 0) > 0
            assert result.avg_latency > 0
            assert result.throughput_tps > 0
            for shard in config.shard_ids:
                assert deployment.executed_in_same_order(
                    shard, {f"mix-{i}" for i in range(4)} | {"mix-cross"}
                )
        finally:
            deployment.close()

    def test_both_backends_apply_the_same_writes(self):
        """The cross-shard write set lands identically under either clock."""
        states = {}
        for backend in BACKEND_NAMES:
            deployment = Deployment.build(
                _config(), backend=backend, num_clients=2, batch_size=1, time_scale=0.02
            )
            try:
                result = deployment.run_workload(_mixed_workload(), timeout=120.0)
                assert result.all_completed
                states[backend] = {
                    (shard, key): deployment.primary_of(shard).store.read(key)
                    for shard in (0, 1)
                    for key in (f"user{9 + shard}",)
                }
            finally:
                deployment.close()
        assert states["sim"] == states["realtime"]

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_workload_driver_is_backend_agnostic(self, backend):
        config = _config(cross=0.4)
        deployment = Deployment.build(
            config, backend=backend, num_clients=2, batch_size=1, time_scale=0.02
        )
        try:
            generator = YcsbWorkloadGenerator(
                deployment.table, deployment.directory.ring, config.workload, seed=11
            )
            driver = WorkloadDriver(deployment, generator, total=8, window=2)
            result = driver.run(timeout=300.0)
            assert result.completed == 8
            assert driver.submitted == 8
            assert result.ledgers_consistent
        finally:
            deployment.close()

    @staticmethod
    def _sustained_load_once(backend, seed, time_scale):
        from repro.config import TimerConfig
        from repro.engine import run_sustained_load

        timers = TimerConfig(
            local_timeout=1.0,
            remote_timeout=2.0,
            transmit_timeout=3.0,
            client_timeout=1.5,
            checkpoint_interval=2,
        )
        config = SystemConfig.uniform(
            2,
            4,
            timers=timers,
            workload=WorkloadConfig(
                num_records=200,
                cross_shard_fraction=0.2,
                batch_size=1,
                num_clients=2,
                seed=seed,
            ),
        )
        result, driver = run_sustained_load(
            config,
            backend=backend,
            rate_per_second=100.0,
            checkpoint_intervals=4,
            seed=seed,
            sample_interval=0.2,
            max_duration=120.0,
            time_scale=time_scale,
        )
        assert driver.stable_floor() >= driver.target_sequence
        assert result.ledgers_consistent
        assert driver.series.samples, "retained-state gauges were sampled"
        assert driver.series.peak("log_slots") > 0

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.load_sensitive
    def test_sustained_load_driver_is_backend_agnostic(self, backend):
        """Sustained Poisson load reaches its checkpoint target on both backends.

        The sim variant is fully deterministic and gets exactly one attempt.
        The realtime variant drives real asyncio timers at time_scale=0.01, so
        a loaded host can fire protocol timeouts late enough to trigger
        spurious view changes mid-run; it gets a marked retry (fresh
        deployment, shifted seed) and is quarantined with an explicit skip if
        the host never sustains the timing -- a deterministic protocol
        regression still fails the sim variant on the first attempt.
        """
        if backend == "sim":
            self._sustained_load_once(backend, seed=11, time_scale=0.01)
            return
        attempts = 3
        for attempt in range(attempts):
            try:
                # A slower clock on later attempts gives the loaded host more
                # wall-clock room per protocol second.
                self._sustained_load_once(
                    backend, seed=11 + attempt, time_scale=0.01 * (attempt + 1)
                )
                return
            except AssertionError:
                if attempt == attempts - 1:
                    pytest.skip(
                        "load-sensitive: the realtime sustained-load run did not "
                        f"settle in {attempts} attempts on this host (wall-clock "
                        "timer jitter); the sim variant covers the protocol logic"
                    )

    def test_repeated_runs_report_windowed_metrics(self):
        """Driving one deployment twice yields per-run numbers, not totals."""
        deployment = Deployment.build(_config(), backend="sim", num_clients=2, batch_size=1)
        first = deployment.run_workload(_mixed_workload(), timeout=120.0)
        second = deployment.run_workload(
            [
                TransactionBuilder("again", "client-0")
                .read_modify_write(0, "user50", "second-run")
                .build()
            ],
            timeout=120.0,
        )
        assert first.completed == 5 and second.completed == 1
        assert second.submitted == 1
        # The second window's message traffic is a fraction of the first's.
        assert 0 < second.total_messages < first.total_messages
        assert second.total_messages == sum(second.message_counts.values())
        assert len(second.latencies) == 1
        # Cache counters are windowed the same way: the single-transaction
        # second run reports its own (smaller) encode counts, not the
        # cumulative deployment totals.
        assert 0 < second.cache_stats["payload"]["misses"] < first.cache_stats["payload"]["misses"]
        for cache in ("verify", "certificate"):
            window = second.cache_stats[cache]
            assert window.get("hits", 0) + window.get("misses", 0) <= (
                first.cache_stats[cache].get("hits", 0)
                + first.cache_stats[cache].get("misses", 0)
            )

    def test_run_result_row_shape_is_identical(self):
        rows = {}
        for backend in BACKEND_NAMES:
            deployment = Deployment.build(
                _config(), backend=backend, num_clients=2, batch_size=1, time_scale=0.02
            )
            try:
                rows[backend] = deployment.run_workload(
                    _mixed_workload(), timeout=120.0
                ).as_row()
            finally:
                deployment.close()
        assert set(rows["sim"]) == set(rows["realtime"])
        assert rows["sim"]["completed"] == rows["realtime"]["completed"] == 5


class TestCrossBackendDeterminism:
    """Same seed => identical commit order and digests on both backends.

    Submission is sequential (one client, window 1) so the commit order is
    pinned by the workload rather than by scheduling jitter; the assertion
    then checks that the *byte-level* protocol outcome -- block sequences,
    transaction order, Merkle roots, and chained block hashes -- is identical
    under the simulator clock and the asyncio clock after the codec swap.
    """

    @staticmethod
    def _chains(total=8, cross=0.4):
        chains = {}
        for backend in BACKEND_NAMES:
            config = SystemConfig.uniform(
                2,
                4,
                workload=WorkloadConfig(
                    num_records=200,
                    cross_shard_fraction=cross,
                    batch_size=1,
                    num_clients=1,
                    seed=11,
                ),
            )
            deployment = Deployment.build(
                config, backend=backend, num_clients=1, batch_size=1, time_scale=0.02, seed=11
            )
            try:
                generator = YcsbWorkloadGenerator(
                    deployment.table, deployment.directory.ring, config.workload, seed=11
                )
                driver = WorkloadDriver(deployment, generator, total=total, window=1)
                result = driver.run(timeout=300.0)
                assert result.completed == total
                assert result.ledgers_consistent
                chains[backend] = {
                    shard: [
                        (block.sequence, block.txn_ids, block.merkle_root, block.block_hash())
                        for block in deployment.primary_of(shard).ledger.blocks()
                    ]
                    for shard in config.shard_ids
                }
            finally:
                deployment.close()
        return chains

    def test_commit_order_and_digests_match_across_backends(self):
        chains = self._chains()
        assert chains["sim"] == chains["realtime"]
        # The workload must actually have committed work on every shard.
        for shard_chain in chains["sim"].values():
            assert len(shard_chain) > 1


class TestDeploymentHarness:
    def test_context_manager_closes_backend(self):
        with Deployment.build(_config(), backend="realtime", time_scale=0.01) as deployment:
            assert deployment.backend.name == "realtime"
        # A second close is harmless.
        deployment.close()

    def test_sim_aliases_point_at_backend(self):
        deployment = Deployment.build(_config(), backend="sim")
        assert deployment.simulator is deployment.backend.scheduler
        assert deployment.network is deployment.backend.transport
        assert deployment.scheduler is deployment.simulator

    def test_cluster_shim_is_a_sim_deployment(self):
        from repro.cluster import Cluster

        cluster = Cluster.build(_config(), num_clients=1)
        assert isinstance(cluster, Deployment)
        assert cluster.backend.name == "sim"
