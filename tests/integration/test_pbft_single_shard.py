"""Integration tests: single-shard consensus (the path shared by all protocols)."""

import pytest

from repro.baselines.ahl.replica import AhlReplica
from repro.baselines.sharper.replica import SharperReplica
from repro.consensus.pbft.replica import PbftReplica
from repro.core.replica import RingBftReplica

from tests.conftest import build_cluster


def _single_shard_txn(cluster, shard, value="v", txn_id=None):
    from repro.txn.transaction import TransactionBuilder

    key = cluster.table.local_record(shard, 0)
    txn_id = txn_id or f"txn-{shard}-{value}"
    return TransactionBuilder(txn_id, "client-0").read_modify_write(shard, key, value).build()


@pytest.mark.parametrize(
    "replica_class", [PbftReplica, RingBftReplica, AhlReplica, SharperReplica]
)
class TestSingleShardConsensusAcrossProtocols:
    """All four replica implementations order single-shard transactions with plain PBFT."""

    def test_single_transaction_completes(self, replica_class):
        cluster = build_cluster(num_shards=1, replica_class=replica_class)
        cluster.submit(_single_shard_txn(cluster, 0))
        assert cluster.run_until_clients_done(timeout=30.0)
        assert cluster.completed_transactions() == 1

    def test_state_machines_apply_the_write(self, replica_class):
        cluster = build_cluster(num_shards=1, replica_class=replica_class)
        txn = _single_shard_txn(cluster, 0, value="committed-value")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=30.0)
        key = next(iter(txn.keys_for(0)))
        for replica in cluster.shard_replicas(0):
            assert replica.store.read(key) == "committed-value"


class TestPbftOrdering:
    def test_sequence_of_transactions_executes_in_one_order(self):
        cluster = build_cluster(num_shards=1, replica_class=PbftReplica)
        txn_ids = set()
        for i in range(8):
            txn = _single_shard_txn(cluster, 0, value=f"v{i}", txn_id=f"seq-{i}")
            txn_ids.add(txn.txn_id)
            cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=60.0)
        assert cluster.completed_transactions() == 8
        assert cluster.executed_in_same_order(0, txn_ids)
        assert cluster.ledgers_consistent(0)

    def test_every_replica_builds_the_same_chain(self):
        cluster = build_cluster(num_shards=1, replica_class=PbftReplica)
        for i in range(5):
            cluster.submit(_single_shard_txn(cluster, 0, value=f"v{i}", txn_id=f"chain-{i}"))
        assert cluster.run_until_clients_done(timeout=60.0)
        heads = {r.ledger.head.block_hash() for r in cluster.shard_replicas(0)}
        assert len(heads) == 1
        assert all(r.ledger.verify_chain() for r in cluster.shard_replicas(0))

    def test_conflicting_writes_converge_to_identical_state(self):
        cluster = build_cluster(num_shards=1, replica_class=PbftReplica)
        key = cluster.table.local_record(0, 0)
        from repro.txn.transaction import TransactionBuilder

        for i in range(4):
            txn = TransactionBuilder(f"conflict-{i}", "client-0").read_modify_write(0, key, f"w{i}").build()
            cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=60.0)
        values = {r.store.read(key) for r in cluster.shard_replicas(0)}
        assert len(values) == 1

    def test_client_receives_weak_quorum_of_responses(self):
        cluster = build_cluster(num_shards=1, replica_class=PbftReplica)
        cluster.submit(_single_shard_txn(cluster, 0))
        assert cluster.run_until_clients_done(timeout=30.0)
        record = cluster.client.completed[0]
        assert record.latency > 0

    def test_retransmitted_request_is_not_executed_twice(self):
        cluster = build_cluster(num_shards=1, replica_class=PbftReplica)
        txn = _single_shard_txn(cluster, 0, value="once")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=30.0)
        # Re-submit the identical transaction: replicas answer from the store.
        cluster.client.submit(txn)
        assert cluster.run_until_clients_done(timeout=30.0)
        key = next(iter(txn.keys_for(0)))
        for replica in cluster.shard_replicas(0):
            assert replica.store.version(key) == 1

    def test_checkpoint_is_taken_at_interval(self):
        cluster = build_cluster(num_shards=1, replica_class=PbftReplica)
        # Shrink the interval on the fly so a handful of batches suffices.
        for replica in cluster.shard_replicas(0):
            replica.checkpoints.interval = 3
        for i in range(6):
            cluster.submit(_single_shard_txn(cluster, 0, value=f"v{i}", txn_id=f"cp-{i}"))
        assert cluster.run_until_clients_done(timeout=60.0)
        cluster.run(duration=cluster.simulator.now + 1.0)
        stable = [r.checkpoints.last_stable_sequence for r in cluster.shard_replicas(0)]
        assert all(value >= 3 for value in stable)


class TestParallelShards:
    def test_independent_shards_make_progress_in_parallel(self):
        cluster = build_cluster(num_shards=3, replica_class=PbftReplica)
        for shard in (0, 1, 2):
            for i in range(3):
                cluster.submit(_single_shard_txn(cluster, shard, value=f"v{i}", txn_id=f"p-{shard}-{i}"))
        assert cluster.run_until_clients_done(timeout=60.0)
        assert cluster.completed_transactions() == 9
        for shard in (0, 1, 2):
            assert cluster.ledgers_consistent(shard)
            assert cluster.primary_of(shard).ledger.height == 3

    def test_no_cross_shard_messages_for_single_shard_workload(self):
        cluster = build_cluster(num_shards=3, replica_class=RingBftReplica)
        for shard in (0, 1, 2):
            cluster.submit(_single_shard_txn(cluster, shard, txn_id=f"local-{shard}"))
        assert cluster.run_until_clients_done(timeout=60.0)
        counts = cluster.message_counts()
        assert "Forward" not in counts
        assert "Execute" not in counts
