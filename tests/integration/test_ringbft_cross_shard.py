"""Integration tests: RingBFT cross-shard consensus (normal case)."""

from repro.txn.transaction import TransactionBuilder

from tests.conftest import build_cluster


def _cross_txn(cluster, shards, txn_id, remote_reads=0, client="client-0"):
    builder = TransactionBuilder(txn_id, client)
    keys = {shard: cluster.table.local_record(shard, hash(txn_id) % 50) for shard in shards}
    for shard in shards:
        builder.read(shard, keys[shard])
        deps = ()
        if remote_reads:
            others = [s for s in shards if s != shard][:remote_reads]
            deps = tuple((other, keys[other]) for other in others)
        builder.write(shard, keys[shard], f"{txn_id}@{shard}", depends_on=deps)
    return builder.build()


class TestSimpleCrossShard:
    def test_two_shard_transaction_completes(self):
        cluster = build_cluster(num_shards=2)
        txn = _cross_txn(cluster, (0, 1), "cst-2")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=60.0)
        assert cluster.completed_transactions() == 1

    def test_every_involved_shard_executes_its_fragment(self):
        cluster = build_cluster(num_shards=3)
        txn = _cross_txn(cluster, (0, 1, 2), "cst-3")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=60.0)
        for shard in (0, 1, 2):
            key = next(iter(txn.keys_for(shard)))
            for replica in cluster.shard_replicas(shard):
                assert replica.store.read(key) == f"cst-3@{shard}"

    def test_cross_shard_block_is_appended_on_every_involved_shard(self):
        cluster = build_cluster(num_shards=3)
        txn = _cross_txn(cluster, (0, 1, 2), "cst-ledger")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=60.0)
        for shard in (0, 1, 2):
            for replica in cluster.shard_replicas(shard):
                assert replica.ledger.contains_txn("cst-ledger")

    def test_subset_of_shards_only_involves_that_subset(self):
        cluster = build_cluster(num_shards=4)
        txn = _cross_txn(cluster, (1, 3), "cst-subset")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=60.0)
        for replica in cluster.shard_replicas(0) + cluster.shard_replicas(2):
            assert not replica.ledger.contains_txn("cst-subset")
            assert replica.executed_txn_count == 0

    def test_uninvolved_shards_exchange_no_forward_messages(self):
        cluster = build_cluster(num_shards=4)
        cluster.submit(_cross_txn(cluster, (0, 1), "cst-pair"))
        assert cluster.run_until_clients_done(timeout=60.0)
        for replica in cluster.shard_replicas(2) + cluster.shard_replicas(3):
            assert "Forward" not in replica.stats.sent_count

    def test_locks_are_released_after_execution(self):
        cluster = build_cluster(num_shards=3)
        cluster.submit(_cross_txn(cluster, (0, 1, 2), "cst-locks"))
        assert cluster.run_until_clients_done(timeout=60.0)
        cluster.run(duration=cluster.simulator.now + 5.0)
        for shard in (0, 1, 2):
            for replica in cluster.shard_replicas(shard):
                assert replica.locks.locked_key_count == 0

    def test_linear_communication_forward_count(self):
        # Each of the three shard-to-shard hops carries exactly n direct
        # Forwards plus n*(n-1) local-sharing copies: 3 * (4 + 12) = 48.
        cluster = build_cluster(num_shards=3)
        cluster.submit(_cross_txn(cluster, (0, 1, 2), "cst-linear"))
        assert cluster.run_until_clients_done(timeout=60.0)
        cluster.run(duration=cluster.simulator.now + 5.0)
        counts = cluster.message_counts()
        assert counts["Forward"] == 48
        assert counts["Execute"] == 48

    def test_mixed_single_and_cross_shard_workload(self):
        cluster = build_cluster(num_shards=3)
        cluster.submit(_cross_txn(cluster, (0, 1, 2), "mix-cross"))
        single = TransactionBuilder("mix-single", "client-0").read_modify_write(
            1, cluster.table.local_record(1, 5), "single-v"
        ).build()
        cluster.submit(single)
        assert cluster.run_until_clients_done(timeout=60.0)
        assert cluster.completed_transactions() == 2
        for shard in (0, 1, 2):
            assert cluster.ledgers_consistent(shard)


class TestConflictingCrossShard:
    def test_conflicting_transactions_commit_in_the_same_order_everywhere(self):
        cluster = build_cluster(num_shards=3)
        key0 = cluster.table.local_record(0, 0)
        key1 = cluster.table.local_record(1, 0)
        txn_ids = set()
        for i in range(4):
            builder = TransactionBuilder(f"conflict-{i}", "client-0")
            builder.read_modify_write(0, key0, f"a{i}")
            builder.read_modify_write(1, key1, f"b{i}")
            cluster.submit(builder.build())
            txn_ids.add(f"conflict-{i}")
        assert cluster.run_until_clients_done(timeout=120.0)
        assert cluster.completed_transactions() == 4
        # Consistence (cross-shard): conflicting transactions execute in the
        # same order on every replica of every involved shard.
        orders = set()
        for shard in (0, 1):
            for replica in cluster.shard_replicas(shard):
                orders.add(tuple(replica.ledger.commit_order(txn_ids)))
        assert len(orders) == 1
        final_values = {r.store.read(key0) for r in cluster.shard_replicas(0)}
        assert len(final_values) == 1

    def test_interleaved_conflicting_and_disjoint_transactions(self):
        cluster = build_cluster(num_shards=3)
        hot_key = cluster.table.local_record(0, 0)
        cold_key = cluster.table.local_record(0, 25)
        other = cluster.table.local_record(2, 3)
        for i in range(3):
            hot = (
                TransactionBuilder(f"hot-{i}", "client-0")
                .read_modify_write(0, hot_key, f"hot{i}")
                .read_modify_write(2, other, f"hot{i}")
                .build()
            )
            cold = (
                TransactionBuilder(f"cold-{i}", "client-0")
                .read_modify_write(0, cold_key, f"cold{i}")
                .build()
            )
            cluster.submit(hot)
            cluster.submit(cold)
        assert cluster.run_until_clients_done(timeout=120.0)
        assert cluster.completed_transactions() == 6
        assert cluster.ledgers_consistent(0)

    def test_no_deadlock_with_opposing_shard_pairs(self):
        # T1 touches shards (0, 1); T2 touches shards (1, 2); T3 touches (0, 2).
        # All three overlap pairwise; ring-order locking must not deadlock.
        cluster = build_cluster(num_shards=3)
        keys = {s: cluster.table.local_record(s, 0) for s in (0, 1, 2)}
        pairs = [("d1", (0, 1)), ("d2", (1, 2)), ("d3", (0, 2))]
        for txn_id, shards in pairs:
            builder = TransactionBuilder(txn_id, "client-0")
            for shard in shards:
                builder.read_modify_write(shard, keys[shard], f"{txn_id}@{shard}")
            cluster.submit(builder.build())
        assert cluster.run_until_clients_done(timeout=120.0)
        assert cluster.completed_transactions() == 3


class TestComplexCrossShard:
    def test_dependencies_resolved_from_remote_write_sets(self):
        cluster = build_cluster(num_shards=3)
        txn = _cross_txn(cluster, (0, 1, 2), "complex-1", remote_reads=1)
        assert txn.is_complex
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=60.0)
        # Shard 1's write depends on shard 0's key; the committed value must
        # embed the dependency resolved from the Execute write sets.
        key1 = next(iter(txn.keys_for(1)))
        for replica in cluster.shard_replicas(1):
            value = replica.store.read(key1)
            assert value.startswith("complex-1@1")
            assert "0:" in value

    def test_complex_transaction_completes_with_many_dependencies(self):
        cluster = build_cluster(num_shards=4)
        txn = _cross_txn(cluster, (0, 1, 2, 3), "complex-heavy", remote_reads=3)
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=120.0)
        assert cluster.completed_transactions() == 1

    def test_simple_and_complex_transactions_coexist(self):
        cluster = build_cluster(num_shards=3)
        cluster.submit(_cross_txn(cluster, (0, 1, 2), "coexist-simple"))
        cluster.submit(_cross_txn(cluster, (0, 1, 2), "coexist-complex", remote_reads=2))
        assert cluster.run_until_clients_done(timeout=120.0)
        assert cluster.completed_transactions() == 2


class TestRingOrderVariants:
    def test_custom_ring_permutation_still_completes(self):
        from repro.cluster import Cluster
        from repro.config import ShardConfig, SystemConfig

        from tests.conftest import small_workload

        config = SystemConfig(
            shards=tuple(ShardConfig(i, 4) for i in range(3)),
            workload=small_workload(),
            ring_order=(2, 0, 1),
        )
        cluster = Cluster.build(config, num_clients=1, batch_size=1)
        txn = _cross_txn(cluster, (0, 1, 2), "perm-cst")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=60.0)
        assert cluster.completed_transactions() == 1

    def test_heterogeneous_shard_sizes(self):
        from repro.cluster import Cluster
        from repro.config import ShardConfig, SystemConfig

        from tests.conftest import small_workload

        config = SystemConfig(
            shards=(ShardConfig(0, 4), ShardConfig(1, 7)),
            workload=small_workload(),
        )
        cluster = Cluster.build(config, num_clients=1, batch_size=1)
        txn = _cross_txn(cluster, (0, 1), "hetero-cst")
        cluster.submit(txn)
        assert cluster.run_until_clients_done(timeout=60.0)
        assert cluster.completed_transactions() == 1
        for shard in (0, 1):
            key = next(iter(txn.keys_for(shard)))
            values = {r.store.read(key) for r in cluster.shard_replicas(shard)}
            assert values == {f"hetero-cst@{shard}"}
