"""Integration tests: RingBFT under crash, Byzantine, and network attacks (Section 5)."""


from repro.cluster import Cluster
from repro.config import SystemConfig, TimerConfig
from repro.core.replica import RingBftReplica
from repro.faults.injector import FaultInjector
from repro.txn.transaction import TransactionBuilder

from tests.conftest import small_workload


def _fault_cluster(num_shards=3, replicas=4, seed=2022):
    """Cluster with short timers so recovery paths run quickly in tests."""
    timers = TimerConfig(
        local_timeout=1.0, remote_timeout=2.0, transmit_timeout=3.0, client_timeout=1.5
    )
    config = SystemConfig.uniform(
        num_shards, replicas, timers=timers, workload=small_workload()
    )
    return Cluster.build(config, replica_class=RingBftReplica, num_clients=1, batch_size=1, seed=seed)


def _single_txn(cluster, shard, txn_id):
    key = cluster.table.local_record(shard, 0)
    return TransactionBuilder(txn_id, "client-0").read_modify_write(shard, key, f"{txn_id}-v").build()


def _cross_txn(cluster, shards, txn_id):
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        key = cluster.table.local_record(shard, 1)
        builder.read_modify_write(shard, key, f"{txn_id}@{shard}")
    return builder.build()


class TestPrimaryCrash:
    def test_crashed_primary_is_replaced_and_request_completes(self):
        cluster = _fault_cluster()
        FaultInjector(cluster).crash_primary(0)
        cluster.submit(_single_txn(cluster, 0, "after-crash"))
        assert cluster.run_until_clients_done(timeout=120.0)
        alive = [r for r in cluster.shard_replicas(0) if not r.crashed]
        assert all(r.view >= 1 for r in alive)
        assert cluster.completed_transactions() == 1

    def test_other_shards_unaffected_by_a_crash(self):
        cluster = _fault_cluster()
        FaultInjector(cluster).crash_primary(0)
        cluster.submit(_single_txn(cluster, 1, "healthy-shard"))
        assert cluster.run_until_clients_done(timeout=60.0)
        assert all(r.view == 0 for r in cluster.shard_replicas(1))

    def test_crash_during_cross_shard_transaction(self):
        cluster = _fault_cluster()
        FaultInjector(cluster).crash_primary(1, at=0.02)
        cluster.submit(_cross_txn(cluster, (0, 1, 2), "cst-crash"))
        assert cluster.run_until_clients_done(timeout=200.0)
        assert cluster.completed_transactions() == 1
        for shard in (0, 1, 2):
            assert cluster.ledgers_consistent(shard)

    def test_crash_of_initiator_primary(self):
        cluster = _fault_cluster()
        FaultInjector(cluster).crash_primary(0, at=0.02)
        cluster.submit(_cross_txn(cluster, (0, 1, 2), "cst-initiator-crash"))
        assert cluster.run_until_clients_done(timeout=200.0)
        assert cluster.completed_transactions() == 1

    def test_non_primary_crash_does_not_disturb_consensus(self):
        cluster = _fault_cluster()
        FaultInjector(cluster).crash_replica(0, 3)
        cluster.submit(_single_txn(cluster, 0, "minority-crash"))
        assert cluster.run_until_clients_done(timeout=60.0)
        assert all(r.view == 0 for r in cluster.shard_replicas(0) if not r.crashed)


class TestByzantinePrimary:
    def test_silent_primary_triggers_view_change(self):
        cluster = _fault_cluster()
        FaultInjector(cluster).silence_primary(0)
        cluster.submit(_single_txn(cluster, 0, "silent-primary"))
        assert cluster.run_until_clients_done(timeout=200.0)
        alive_views = {r.view for r in cluster.shard_replicas(0) if not r.crashed}
        assert max(alive_views) >= 1
        assert cluster.completed_transactions() == 1

    def test_dark_attack_still_commits_with_quorum(self):
        cluster = _fault_cluster()
        FaultInjector(cluster).dark_attack(0)
        cluster.submit(_single_txn(cluster, 0, "dark"))
        assert cluster.run_until_clients_done(timeout=120.0)
        assert cluster.completed_transactions() == 1
        executed = [r.executed_txn_count for r in cluster.shard_replicas(0)]
        # At least the quorum executed; the dark replica may lag behind.
        assert sum(1 for count in executed if count >= 1) >= 3


class TestCrossShardAttacks:
    def test_partial_communication_triggers_remote_view_change(self):
        # All but one replica of the initiator shard drop their Forward
        # messages: the next shard cannot collect f+1 matching Forwards, its
        # remote timer fires, and shard 0 is forced into a view change
        # (Figure 6), after which the transaction still completes.
        cluster = _fault_cluster()
        FaultInjector(cluster).drop_forwards(0, replicas=3)
        cluster.submit(_cross_txn(cluster, (0, 1), "cst-partial"))
        cluster.run_until_clients_done(timeout=300.0)
        remote_views_sent = sum(
            replica.stats.sent_count.get("RemoteView", 0)
            for replica in cluster.shard_replicas(1)
        )
        assert remote_views_sent >= 1
        assert max(r.view for r in cluster.shard_replicas(0) if not r.crashed) >= 1

    def test_forward_retransmission_after_transient_link_failure(self):
        cluster = _fault_cluster()
        injector = FaultInjector(cluster)
        # Block shard0 -> shard1 for a while; the transmit timer re-sends the
        # Forward messages after the link heals.
        injector.block_cross_shard_link(0, 1)
        injector.heal_cross_shard_link(0, 1, at=4.0)
        cluster.submit(_cross_txn(cluster, (0, 1), "cst-retransmit"))
        assert cluster.run_until_clients_done(timeout=300.0)
        assert cluster.completed_transactions() == 1
        retransmissions = sum(
            record.retransmissions
            for replica in cluster.shard_replicas(0)
            for record in replica._cross_records.values()
        )
        assert retransmissions >= 1

    def test_progress_under_light_message_loss(self):
        cluster = _fault_cluster(seed=5)
        FaultInjector(cluster).set_message_loss(0.02)
        for i in range(3):
            cluster.submit(_cross_txn(cluster, (0, 1, 2), f"lossy-{i}"))
        assert cluster.run_until_clients_done(timeout=300.0)
        assert cluster.completed_transactions() == 3


class TestClientRecovery:
    def test_client_rebroadcast_reaches_a_working_replica(self):
        cluster = _fault_cluster()
        # Crash the primary before the request is even sent: the client's
        # first transmission is lost and its timer-driven broadcast recovers.
        FaultInjector(cluster).crash_primary(0)
        cluster.submit(_single_txn(cluster, 0, "client-retry"))
        assert cluster.run_until_clients_done(timeout=200.0)
        assert cluster.client.completed[0].txn_id == "client-retry"

    def test_duplicate_completion_is_not_recorded_twice(self):
        cluster = _fault_cluster()
        cluster.submit(_single_txn(cluster, 0, "dup"))
        assert cluster.run_until_clients_done(timeout=60.0)
        cluster.run(duration=cluster.simulator.now + 5.0)
        assert cluster.client.completed_count == 1
