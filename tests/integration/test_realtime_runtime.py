"""Integration tests: the asyncio real-time runtime (same protocol code, real clock)."""

import asyncio

import pytest

from repro.config import SystemConfig, WorkloadConfig
from repro.core.replica import RingBftReplica
from repro.errors import SimulationError
from repro.rt.runtime import RealTimeCluster
from repro.rt.transport import RealTimeScheduler
from repro.txn.transaction import TransactionBuilder


def _config(num_shards=2):
    return SystemConfig.uniform(
        num_shards,
        4,
        workload=WorkloadConfig(num_records=200, batch_size=1, num_clients=1),
    )


def _cluster(num_shards=2, **kwargs):
    return RealTimeCluster(
        _config(num_shards),
        replica_class=RingBftReplica,
        time_scale=0.02,
        latency_scale=0.02,
        **kwargs,
    )


class TestRealTimeScheduler:
    def test_schedule_and_now(self):
        async def scenario():
            scheduler = RealTimeScheduler(asyncio.get_event_loop(), time_scale=0.01)
            fired = []
            scheduler.schedule(0.5, lambda: fired.append(scheduler.now))
            await asyncio.sleep(0.05)
            return fired

        fired = asyncio.run(scenario())
        assert len(fired) == 1
        assert fired[0] >= 0.5  # protocol time, despite the compressed real delay

    def test_cancelled_timer_does_not_fire(self):
        async def scenario():
            scheduler = RealTimeScheduler(asyncio.get_event_loop(), time_scale=0.01)
            fired = []
            handle = scheduler.schedule(0.5, lambda: fired.append("x"))
            handle.cancel()
            await asyncio.sleep(0.03)
            return fired, handle.cancelled

        fired, cancelled = asyncio.run(scenario())
        assert fired == []
        assert cancelled

    def test_negative_delay_and_bad_scale_rejected(self):
        async def scenario():
            scheduler = RealTimeScheduler(asyncio.get_event_loop())
            with pytest.raises(SimulationError):
                scheduler.schedule(-1.0, lambda: None)

        asyncio.run(scenario())
        with pytest.raises(SimulationError):
            asyncio.run(self._bad_scale())

    @staticmethod
    async def _bad_scale():
        RealTimeScheduler(asyncio.get_event_loop(), time_scale=0.0)


class TestRealTimeCluster:
    def test_single_shard_transaction_completes_in_real_time(self):
        cluster = _cluster(num_shards=1)
        txn = (
            TransactionBuilder("rt-single", "client-0")
            .read_modify_write(0, "user3", "real-time-value")
            .build()
        )
        result = cluster.run_workload([txn], timeout=10.0)
        assert result.all_completed
        assert result.wall_clock_seconds < 10.0
        assert all(
            replica.store.read("user3") == "real-time-value"
            for replica in cluster.shard_replicas(0)
        )

    def test_cross_shard_transaction_travels_the_ring(self):
        cluster = _cluster(num_shards=2)
        txn = (
            TransactionBuilder("rt-cross", "client-0")
            .read_modify_write(0, "user3", "rt@0")
            .read_modify_write(1, "user150", "rt@1")
            .build()
        )
        result = cluster.run_workload([txn], timeout=20.0)
        assert result.all_completed
        counts = cluster.message_counts()
        assert counts.get("Forward", 0) > 0
        assert counts.get("Execute", 0) > 0
        for shard, key, value in ((0, "user3", "rt@0"), (1, "user150", "rt@1")):
            assert all(r.store.read(key) == value for r in cluster.shard_replicas(shard))

    def test_small_mixed_workload_and_metrics(self):
        cluster = _cluster(num_shards=2, num_clients=2)
        transactions = []
        for i in range(4):
            transactions.append(
                TransactionBuilder(f"rt-mix-{i}", f"client-{i % 2}")
                .read_modify_write(i % 2, f"user{3 + i}", f"v{i}")
                .build()
            )
        result = cluster.run_workload(transactions, timeout=20.0)
        assert result.all_completed
        assert result.throughput_tps > 0
        assert result.avg_latency > 0
        for shard in (0, 1):
            assert cluster.ledgers_consistent(shard)
