"""Integration tests: checkpoint-driven state transfer (dark replicas, recovery)."""

from repro.cluster import Cluster
from repro.config import SystemConfig, TimerConfig
from repro.core.replica import RingBftReplica
from repro.faults.injector import FaultInjector
from repro.txn.transaction import TransactionBuilder

from tests.conftest import small_workload


def _cluster(checkpoint_interval=2, num_shards=1):
    timers = TimerConfig(
        local_timeout=1.0,
        remote_timeout=2.0,
        transmit_timeout=3.0,
        client_timeout=1.5,
        checkpoint_interval=checkpoint_interval,
    )
    config = SystemConfig.uniform(
        num_shards, 4, timers=timers, workload=small_workload()
    )
    return Cluster.build(config, replica_class=RingBftReplica, num_clients=1, batch_size=1)


def _txn(cluster, shard, index, txn_id):
    key = cluster.table.local_record(shard, index)
    return TransactionBuilder(txn_id, "client-0").read_modify_write(shard, key, f"{txn_id}-v").build()


class TestDarkReplicaCatchUp:
    def test_dark_replica_adopts_peer_state(self):
        cluster = _cluster(checkpoint_interval=2)
        # The primary keeps replica r3 in the dark: it never sees PrePrepares,
        # so it cannot commit anything on its own.
        victim = cluster.replica(0, 3)
        cluster.primary_of(0).dark_targets = {victim.replica_id}

        for i in range(8):
            cluster.submit(_txn(cluster, 0, i, f"dark-{i}"))
        assert cluster.run_until_clients_done(timeout=120.0)
        cluster.run(duration=cluster.simulator.now + 10.0)

        # The dark replica caught up through state transfer, not consensus.
        assert victim.state_transfers_completed >= 1
        assert victim.last_executed >= 4
        reference = cluster.replica(0, 1)
        # Every value the victim adopted agrees with the healthy replicas
        # (the adopted snapshot is a consistent prefix of their execution).
        adopted = 0
        for i in range(8):
            key = cluster.table.local_record(0, i)
            value = victim.store.read(key)
            if value != "init":
                assert value == reference.store.read(key)
                adopted += 1
        assert adopted >= 4
        # Its ledger adopted the peers' blocks and still verifies.
        assert victim.ledger.verify_chain()
        assert victim.ledger.height >= 4

    def test_healthy_replicas_do_not_request_state_transfers(self):
        cluster = _cluster(checkpoint_interval=2)
        for i in range(6):
            cluster.submit(_txn(cluster, 0, i, f"healthy-{i}"))
        assert cluster.run_until_clients_done(timeout=60.0)
        cluster.run(duration=cluster.simulator.now + 5.0)
        assert all(r.state_transfers_completed == 0 for r in cluster.shard_replicas(0))
        assert all(
            "StateTransferRequest" not in r.stats.sent_count for r in cluster.shard_replicas(0)
        )

    def test_state_transfer_answers_retransmitted_requests(self):
        cluster = _cluster(checkpoint_interval=2)
        victim = cluster.replica(0, 3)
        cluster.primary_of(0).dark_targets = {victim.replica_id}
        txn = _txn(cluster, 0, 0, "retry-after-catchup")
        cluster.submit(txn)
        for i in range(6):
            cluster.submit(_txn(cluster, 0, i + 1, f"filler-{i}"))
        assert cluster.run_until_clients_done(timeout=120.0)
        cluster.run(duration=cluster.simulator.now + 10.0)
        if victim.state_transfers_completed:
            # The adopted snapshot answers retransmissions without re-execution.
            assert victim.executor.already_executed("retry-after-catchup")

    def test_recovered_replica_catches_up(self):
        cluster = _cluster(checkpoint_interval=2)
        injector = FaultInjector(cluster)
        injector.crash_replica(0, 2)
        for i in range(6):
            cluster.submit(_txn(cluster, 0, i, f"recover-{i}"))
        assert cluster.run_until_clients_done(timeout=60.0)
        injector.recover_replica(0, 2)
        # Drive a few more transactions so checkpoints reveal the lag.
        for i in range(4):
            cluster.submit(_txn(cluster, 0, i, f"post-recover-{i}"))
        assert cluster.run_until_clients_done(timeout=120.0)
        cluster.run(duration=cluster.simulator.now + 10.0)
        recovered = cluster.replica(0, 2)
        reference = cluster.replica(0, 1)
        assert recovered.state_transfers_completed >= 1
        assert recovered.last_executed >= reference.last_executed - 2 * 2


class TestStateTransferSafety:
    def test_single_reply_is_not_enough_to_install(self):
        cluster = _cluster(checkpoint_interval=2)
        victim = cluster.replica(0, 3)
        from repro.common.messages import StateTransferReply

        victim._state_transfer_in_flight = True
        reply = StateTransferReply(
            sender=cluster.replica(0, 1).replica_id,
            last_executed=50,
            state_digest=b"\x01" * 32,
            store_snapshot={"userX": "forged"},
            executed_txn_ids=("forged-txn",),
        )
        victim._handle_state_reply(reply)
        # Only one (possibly Byzantine) voucher: nothing installed.
        assert victim.last_executed == 0
        assert victim.state_transfers_completed == 0

    def test_matching_weak_quorum_installs_snapshot(self):
        cluster = _cluster(checkpoint_interval=2)
        victim = cluster.replica(0, 3)
        from repro.common.messages import StateTransferReply

        victim._state_transfer_in_flight = True
        snapshot = {"user0": "adopted-value"}
        digest = victim._state_snapshot_digest(snapshot, 7)
        for index in (0, 1):
            reply = StateTransferReply(
                sender=cluster.replica(0, index).replica_id,
                last_executed=7,
                state_digest=digest,
                store_snapshot=snapshot,
                executed_txn_ids=("adopted-txn",),
            )
            victim._handle_state_reply(reply)
        assert victim.state_transfers_completed == 1
        assert victim.last_executed == 7
        assert victim.store.read("user0") == "adopted-value"
        assert victim.executor.already_executed("adopted-txn")
