"""Property sweep: the rate-shaped pump is safe across seeds x depths x rates.

The shaped regime only engages under open-loop pressure (measured in-flight
demand above ``sustain_threshold``), so these tests drive the deployment with
a seeded Poisson arrival process -- the same machinery as the open-loop
benchmark -- and assert the safety properties the controller must never
trade away for throughput:

* no proposed batch ever exceeds ``max_batch_size``, shaped or fallback,
* the GC watermark never truncates an open (possibly deferred) slot,
* a view change that lands mid-shaped-window still converges to a single
  global commit order with exactly-once execution.
"""

import random

import pytest

from repro.common.messages import PrePrepare
from repro.config import PipelineConfig, SystemConfig, TimerConfig, WorkloadConfig
from repro.engine.deployment import Deployment
from repro.workloads.ycsb import YcsbWorkloadGenerator

SHARDS = 3
REPLICAS = 4
MAX_BATCH = 8


def _build(depth, seed, *, sustain_threshold=0.3, timers=None, num_records=10_000):
    workload = WorkloadConfig(
        num_records=num_records,
        cross_shard_fraction=0.3,
        batch_size=50,
        num_clients=SHARDS * 2,
        seed=seed,
    )
    if timers is None:
        # Generous fault timers: saturation must not read as a faulty
        # primary unless a test wants exactly that.
        timers = TimerConfig(
            local_timeout=30.0,
            remote_timeout=60.0,
            transmit_timeout=90.0,
            client_timeout=120.0,
        )
    pipeline = PipelineConfig(
        depth=depth,
        max_batch_size=MAX_BATCH,
        sustain_threshold=sustain_threshold,
    )
    config = SystemConfig.uniform(
        SHARDS, REPLICAS, workload=workload, timers=timers, pipeline=pipeline
    )
    deployment = Deployment.build(
        config, backend="sim", num_clients=0, batch_size=50, seed=seed
    )
    for i, shard in enumerate(config.shards):
        for j in range(2):
            deployment.add_client(f"client-{i}-{j}", region=shard.region)
    return config, deployment


def _inject_poisson(deployment, config, rate, seed, duration_s):
    """Seeded Poisson arrivals round-robined over the clients."""
    generator = YcsbWorkloadGenerator(
        deployment.table, deployment.directory.ring, config.workload, seed=seed
    )
    rng = random.Random(seed)
    clients = list(deployment.clients)
    state = {"count": 0}
    start = deployment.now

    def arrive():
        if deployment.now - start >= duration_s:
            return
        client_id = clients[state["count"] % len(clients)]
        state["count"] += 1
        deployment.submit(generator.generate(1, client_id)[0], client_id)
        deployment.scheduler.schedule(rng.expovariate(rate), arrive)

    deployment.scheduler.schedule(rng.expovariate(rate), arrive)
    return state


class TestBatchCeilingIsNeverExceeded:
    @pytest.mark.parametrize("seed", (1, 2022))
    @pytest.mark.parametrize("depth", (2, 4))
    @pytest.mark.parametrize("rate", (600.0, 1800.0))
    def test_no_proposal_above_max_batch(self, seed, depth, rate):
        config, deployment = _build(depth, seed)
        try:
            oversized = []
            for replica in deployment.replicas.values():
                original = replica._broadcast_shard

                def tracked(message, include_self=True, *, r=replica, orig=original):
                    if isinstance(message, PrePrepare):
                        if len(message.requests) > MAX_BATCH:
                            oversized.append(
                                (str(r.replica_id), message.sequence, len(message.requests))
                            )
                    orig(message, include_self)

                replica._broadcast_shard = tracked

            _inject_poisson(deployment, config, rate, seed, duration_s=2.0)
            deployment.run(duration=deployment.now + 5.0)

            assert oversized == []
            shaped = sum(
                r.shaped_batch_count for r in deployment.replicas.values()
            )
            if rate >= 1800.0:
                # The sweep must actually exercise the shaped regime at the
                # saturating rate, or the ceiling assertion proves nothing.
                assert shaped > 0
            for shard in range(SHARDS):
                assert deployment.ledgers_consistent(shard)
        finally:
            deployment.close()


class TestGcNeverTruncatesShapedWindow:
    @pytest.mark.parametrize("seed", (7, 2022))
    @pytest.mark.parametrize("depth", (2, 4))
    def test_watermark_stays_below_deferred_slots(self, seed, depth):
        timers = TimerConfig(
            local_timeout=30.0,
            remote_timeout=60.0,
            transmit_timeout=90.0,
            client_timeout=120.0,
            checkpoint_interval=4,  # GC churns while the window is busy
        )
        config, deployment = _build(depth, seed, timers=timers)
        try:
            violations = []
            for replica in deployment.replicas.values():
                original = replica._truncate_below

                def tracked(watermark, *, r=replica, orig=original):
                    if r._open_slots and watermark >= min(r._open_slots):
                        violations.append(
                            (str(r.replica_id), watermark, min(r._open_slots))
                        )
                    orig(watermark)

                replica._truncate_below = tracked

            _inject_poisson(deployment, config, 1500.0, seed, duration_s=2.0)
            deployment.run(duration=deployment.now + 6.0)

            gc_runs = sum(r.gc_runs for r in deployment.replicas.values())
            assert gc_runs >= 1
            assert violations == []
            for shard in range(SHARDS):
                assert deployment.ledgers_consistent(shard)
        finally:
            deployment.close()


class TestViewChangeMidShapedWindow:
    def test_overload_view_change_recovers_single_commit_order(self):
        """A short local timeout under saturation fires a real view change
        while the window is half shaped (deferred cross-shard slots open,
        shaped batches in flight).  The new primary must re-stage the
        backlog and every shard must still converge to one commit order with
        exactly-once execution."""
        # Clients submit straight to the primary, so the backup-side request
        # timers that drive a view change only arm once a client
        # *retransmits* (broadcast to the shard).  A short client timeout
        # plus a short local timeout means a request stuck in the overloaded
        # primary's queue escalates to a view change in under a second.
        timers = TimerConfig(
            local_timeout=0.4,
            remote_timeout=20.0,
            transmit_timeout=40.0,
            client_timeout=0.5,
        )
        config, deployment = _build(2, 2022, timers=timers)
        try:
            state = _inject_poisson(
                deployment, config, 2200.0, 2022, duration_s=3.0
            )
            deployment.run(duration=deployment.now + 25.0)

            replicas = list(deployment.replicas.values())
            # Saturation at 2.2k/s against ~1.2k/s of depth-2 capacity must
            # push queue delay past the timers: the scenario is only
            # interesting if a view change actually happened.
            assert any(r.view >= 1 for r in replicas)
            assert state["count"] > 1000
            for shard in range(SHARDS):
                members = deployment.shard_replicas(shard)
                assert deployment.ledgers_consistent(shard)
                committed = {
                    txn_id
                    for replica in members
                    for block in replica.ledger.blocks()
                    for txn_id in block.txn_ids
                }
                orders = {
                    tuple(r.ledger.commit_order(committed)) for r in members
                }
                assert len(orders) == 1
                order = orders.pop()
                assert len(order) == len(set(order))
        finally:
            deployment.close()
