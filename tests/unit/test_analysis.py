"""The static-analysis suite: every rule family catches its seeded violation,
pragmas and baselines round-trip, and the repo itself stays clean.

The fixture corpus writes throwaway ``src/repro/...`` trees into tmp_path so
module-scoping behaves exactly as it does on the real repo layout.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    load_baseline,
    render_json,
    render_text,
    run_analysis,
    write_baseline,
)
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def _write(root: Path, rel: str, content: str) -> None:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)


def _rules_of(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


# ---------------------------------------------------------------------------
# determinism family
# ---------------------------------------------------------------------------


class TestDeterminismRules:
    def _analyze(self, tmp_path, body, module="src/repro/consensus/snippet.py"):
        _write(tmp_path, module, body)
        return run_analysis(
            tmp_path, select=("wall-clock", "global-rng", "os-entropy", "unordered-iteration")
        )

    def test_wall_clock_and_rng_and_entropy_flagged(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "import time, random, os\n"
            "def decide():\n"
            "    return time.time(), random.random(), os.urandom(4)\n",
        )
        assert len(_rules_of(report, "wall-clock")) == 1
        assert len(_rules_of(report, "global-rng")) == 1
        assert len(_rules_of(report, "os-entropy")) == 1

    def test_aliased_imports_are_resolved(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "import time as _t\n"
            "from random import random as rand\n"
            "def decide():\n"
            "    return _t.time(), rand()\n",
        )
        assert len(_rules_of(report, "wall-clock")) == 1
        assert len(_rules_of(report, "global-rng")) == 1

    def test_seeded_rng_instance_is_sanctioned(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "import random\n"
            "def decide(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random(), rng.choice([1, 2])\n",
        )
        assert not report.findings

    def test_set_iteration_flagged_and_sorted_is_sanctioned(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "def decide(shards):\n"
            "    for s in set(shards):\n"
            "        pass\n"
            "    bad = list({1, 2, 3})\n"
            "    good = sorted(set(shards))\n"
            "    also_good = sorted({s for s in shards})\n"
            "    return bad, good, also_good\n",
        )
        assert len(_rules_of(report, "unordered-iteration")) == 2

    def test_out_of_scope_modules_are_ignored(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "import time\n\ndef measure():\n    return time.time()\n",
            module="src/repro/metrics/snippet.py",
        )
        assert not report.findings

    # Fixture pair for the slot-occupancy controller: an EWMA estimator is
    # deterministic only if its state starts from a configured prior and every
    # sample is scheduler time passed in by the caller.  The bad twin commits
    # the two mistakes the rule family exists to catch -- reading a host
    # clock inside the update and seeding the smoothing state from the
    # process-global RNG.

    _GOOD_CONTROLLER = (
        "class Controller:\n"
        "    def __init__(self, alpha, latency_prior_s):\n"
        "        self._alpha = alpha\n"
        "        self._latency_s = latency_prior_s\n"
        "        self._open_since = {}\n\n"
        "    def note_propose(self, now, sequence):\n"
        "        self._open_since[sequence] = now\n\n"
        "    def note_commit(self, now, sequence):\n"
        "        proposed_at = self._open_since.get(sequence)\n"
        "        if proposed_at is None:\n"
        "            return\n"
        "        sample = now - proposed_at\n"
        "        self._latency_s += self._alpha * (sample - self._latency_s)\n"
    )

    _BAD_CONTROLLER = (
        "import random\n"
        "import time\n\n"
        "class Controller:\n"
        "    def __init__(self, alpha):\n"
        "        self._alpha = alpha\n"
        "        self._latency_s = random.random() * 0.01\n"
        "        self._open_since = {}\n\n"
        "    def note_propose(self, sequence):\n"
        "        self._open_since[sequence] = time.process_time()\n\n"
        "    def note_commit(self, sequence):\n"
        "        proposed_at = self._open_since.get(sequence)\n"
        "        if proposed_at is None:\n"
        "            return\n"
        "        sample = time.process_time() - proposed_at\n"
        "        self._latency_s += self._alpha * (sample - self._latency_s)\n"
    )

    def test_seeded_ewma_controller_is_clean(self, tmp_path):
        report = self._analyze(
            tmp_path,
            self._GOOD_CONTROLLER,
            module="src/repro/consensus/pbft/pacing_fixture.py",
        )
        assert not report.findings

    def test_wall_clock_ewma_controller_is_flagged(self, tmp_path):
        report = self._analyze(
            tmp_path,
            self._BAD_CONTROLLER,
            module="src/repro/consensus/pbft/pacing_fixture.py",
        )
        assert len(_rules_of(report, "wall-clock")) == 2  # both process_time reads
        assert len(_rules_of(report, "global-rng")) == 1  # RNG-seeded EWMA state

    def test_real_pacing_module_is_clean(self):
        report = run_analysis(
            REPO_ROOT,
            select=("wall-clock", "global-rng", "os-entropy", "unordered-iteration"),
        )
        pacing = [f for f in report.findings if f.path.endswith("pacing.py")]
        assert pacing == []


# ---------------------------------------------------------------------------
# MAC coverage family
# ---------------------------------------------------------------------------


class TestMacCoverageRule:
    _CORPUS = (
        "class Message:\n"
        "    pass\n\n"
        "class Covered(Message):\n"
        "    pass\n\n"
        "class Uncovered(Message):\n"
        "    pass\n\n"
        "class Indirect(Covered):\n"
        "    pass\n\n"
        "class Replica:\n"
        "    _MAC_REQUIRED_TYPES = (Covered,)\n"
    )

    def test_uncovered_message_subclasses_flagged(self, tmp_path):
        _write(tmp_path, "src/repro/common/snippet.py", self._CORPUS)
        report = run_analysis(tmp_path, select=("mac-coverage",))
        flagged = {f.symbol for f in report.findings}
        assert flagged == {"Uncovered", "Indirect"}

    def test_extension_tuples_count_as_coverage(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/common/snippet.py",
            self._CORPUS
            + "\nclass SubReplica(Replica):\n"
            "    _MAC_REQUIRED_TYPES = Replica._MAC_REQUIRED_TYPES + (Uncovered, Indirect)\n",
        )
        report = run_analysis(tmp_path, select=("mac-coverage",))
        assert not report.findings

    def test_whitelisted_client_types_are_exempt(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/common/snippet.py",
            "class Message:\n    pass\n\nclass ClientRequest(Message):\n    pass\n",
        )
        report = run_analysis(tmp_path, select=("mac-coverage",))
        assert not report.findings


# ---------------------------------------------------------------------------
# codec completeness family
# ---------------------------------------------------------------------------


class TestCodecCompletenessRules:
    def test_unregistered_reachable_dataclass_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/common/snippet.py",
            "from dataclasses import dataclass\n"
            "def register_wire_type(cls):\n    return cls\n\n"
            "class Message:\n    pass\n\n"
            "@dataclass(frozen=True)\n"
            "class Inner:\n    x: int\n\n"
            "@register_wire_type\n"
            "@dataclass(frozen=True)\n"
            "class Envelope(Message):\n"
            "    inner: Inner\n",
        )
        report = run_analysis(tmp_path, select=("codec-registered",))
        assert {f.symbol for f in report.findings} == {"Inner"}

    def test_registered_closure_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/common/snippet.py",
            "from dataclasses import dataclass\n"
            "def register_wire_type(cls):\n    return cls\n\n"
            "class Message:\n    pass\n\n"
            "@register_wire_type\n"
            "@dataclass(frozen=True)\n"
            "class Inner:\n    x: int\n\n"
            "@register_wire_type\n"
            "@dataclass(frozen=True)\n"
            "class Envelope(Message):\n"
            "    inner: 'Inner'\n",  # string annotation resolves too
        )
        report = run_analysis(tmp_path, select=("codec-registered",))
        assert not report.findings

    _LAYOUT_SRC = (
        "from repro.common import codec\n\n"
        "_SNIPPET_LAYOUT = codec.compile_fixed_dict({'type': 'X'}, ('x',))\n\n"
        "class PackedThing:\n"
        "    def payload_bytes(self):\n"
        "        return _SNIPPET_LAYOUT(self.x)\n"
    )

    def test_layout_without_identity_test_flagged(self, tmp_path):
        _write(tmp_path, "src/repro/common/snippet.py", self._LAYOUT_SRC)
        report = run_analysis(tmp_path, select=("layout-identity-test",))
        assert {f.symbol for f in report.findings} == {"_SNIPPET_LAYOUT"}

    def test_identity_assert_naming_the_consumer_counts(self, tmp_path):
        _write(tmp_path, "src/repro/common/snippet.py", self._LAYOUT_SRC)
        _write(
            tmp_path,
            "tests/test_snippet.py",
            "def test_identity(thing: 'PackedThing'):\n"
            "    assert thing.payload_bytes() == codec.encode_canonical({'type': 'X'})\n",
        )
        report = run_analysis(tmp_path, select=("layout-identity-test",))
        assert not report.findings

    def test_naming_the_layout_constant_counts(self, tmp_path):
        _write(tmp_path, "src/repro/common/snippet.py", self._LAYOUT_SRC)
        _write(
            tmp_path,
            "tests/test_snippet.py",
            "from repro.common.snippet import _SNIPPET_LAYOUT\n",
        )
        report = run_analysis(tmp_path, select=("layout-identity-test",))
        assert not report.findings


# ---------------------------------------------------------------------------
# async hygiene family
# ---------------------------------------------------------------------------


class TestAsyncHygieneRules:
    def _analyze(self, tmp_path, body):
        _write(tmp_path, "src/repro/rt/snippet.py", body)
        return run_analysis(tmp_path, select=("blocking-async", "orphan-task"))

    def test_blocking_sleep_in_coroutine_flagged(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "import time\n\nasync def pump():\n    time.sleep(0.1)\n",
        )
        assert len(_rules_of(report, "blocking-async")) == 1

    def test_sleep_in_sync_function_is_fine(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "import time\n\ndef wait_for_child():\n    time.sleep(0.1)\n",
        )
        assert not report.findings

    def test_fire_and_forget_task_flagged_but_owned_task_is_fine(self, tmp_path):
        report = self._analyze(
            tmp_path,
            "import asyncio\n\n"
            "async def pump(loop):\n"
            "    loop.create_task(pump(loop))\n"
            "    task = asyncio.create_task(pump(loop))\n"
            "    task.add_done_callback(print)\n"
            "    await task\n",
        )
        assert len(_rules_of(report, "orphan-task")) == 1


# ---------------------------------------------------------------------------
# lock discipline family
# ---------------------------------------------------------------------------


class TestLockDisciplineRules:
    def test_lock_mutation_outside_audited_modules_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/core/snippet.py",
            "class Fast:\n"
            "    def go(self, locks):\n"
            "        return locks.try_lock(1, 't', frozenset())\n",
        )
        report = run_analysis(tmp_path, select=("lock-site",))
        assert len(report.findings) == 1

    def test_audited_module_is_exempt(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/consensus/pbft/replica.py",
            "class Replica:\n"
            "    def execute(self):\n"
            "        self.locks.try_lock(1, 't', frozenset())\n"
            "        self.locks.release('t')\n",
        )
        report = run_analysis(tmp_path, select=("lock-site",))
        assert not report.findings

    def test_cross_order_state_outside_ahl_flagged(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/core/snippet.py",
            "class Replica:\n"
            "    def propose(self):\n"
            "        self._ready_cross[1] = None\n"
            "        self._next_cross_proposal += 1\n",
        )
        report = run_analysis(tmp_path, select=("cross-order-site",))
        assert len(report.findings) == 2


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------


class TestSuppressionPragmas:
    def test_same_line_pragma_suppresses(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/consensus/snippet.py",
            "import time\n"
            "def decide():\n"
            "    return time.time()  # repro: allow[wall-clock] metrics only\n",
        )
        report = run_analysis(tmp_path)
        assert not report.findings
        assert report.suppressed_count == 1

    def test_line_above_pragma_suppresses(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/consensus/snippet.py",
            "import time\n"
            "def decide():\n"
            "    # repro: allow[wall-clock] metrics only\n"
            "    return time.time()\n",
        )
        report = run_analysis(tmp_path)
        assert not report.findings
        assert report.suppressed_count == 1

    def test_pragma_without_reason_is_a_finding(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/consensus/snippet.py",
            "import time\n"
            "def decide():\n"
            "    return time.time()  # repro: allow[wall-clock]\n",
        )
        report = run_analysis(tmp_path)
        rules = {f.rule for f in report.findings}
        assert "pragma-syntax" in rules
        assert "wall-clock" in rules  # a reasonless pragma does not suppress

    def test_unknown_rule_id_is_a_finding(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/consensus/snippet.py",
            "x = 1  # repro: allow[no-such-rule] because reasons\n",
        )
        report = run_analysis(tmp_path)
        assert {f.rule for f in report.findings} == {"pragma-syntax"}

    def test_unused_pragma_is_a_finding(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/consensus/snippet.py",
            "x = 1  # repro: allow[wall-clock] stale allowance\n",
        )
        report = run_analysis(tmp_path)
        assert {f.rule for f in report.findings} == {"pragma-unused"}

    def test_one_pragma_may_cover_multiple_rules(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/consensus/snippet.py",
            "import time, random\n"
            "def decide():\n"
            "    return time.time() + random.random()"
            "  # repro: allow[wall-clock, global-rng] simulation of host jitter\n",
        )
        report = run_analysis(tmp_path)
        assert not report.findings
        assert report.suppressed_count == 2


# ---------------------------------------------------------------------------
# baseline round trip
# ---------------------------------------------------------------------------


class TestBaseline:
    _BODY = (
        "import time\n"
        "def decide():\n"
        "    return time.time()\n"
    )

    def test_baseline_round_trip_grandfathers_old_findings_only(self, tmp_path):
        _write(tmp_path, "src/repro/consensus/snippet.py", self._BODY)
        first = run_analysis(tmp_path)
        assert len(first.findings) == 1
        baseline_path = tmp_path / "analysis-baseline.json"
        write_baseline(baseline_path, first.findings)

        grandfathered = run_analysis(tmp_path, baseline=load_baseline(baseline_path))
        assert not grandfathered.findings
        assert len(grandfathered.baselined) == 1

        # A *new* finding is not absorbed by the old baseline.
        _write(
            tmp_path,
            "src/repro/consensus/snippet.py",
            self._BODY + "def also():\n    return time.time() + 1\n",
        )
        dirty = run_analysis(tmp_path, baseline=load_baseline(baseline_path))
        assert len(dirty.findings) == 1
        assert len(dirty.baselined) == 1

    def test_fingerprints_survive_unrelated_line_shifts(self, tmp_path):
        _write(tmp_path, "src/repro/consensus/snippet.py", self._BODY)
        baseline_path = tmp_path / "analysis-baseline.json"
        write_baseline(baseline_path, run_analysis(tmp_path).findings)
        # Push the finding three lines down; the fingerprint must not move.
        _write(
            tmp_path,
            "src/repro/consensus/snippet.py",
            '"""Docstring."""\n# comment\n\n' + self._BODY,
        )
        report = run_analysis(tmp_path, baseline=load_baseline(baseline_path))
        assert not report.findings
        assert len(report.baselined) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == frozenset()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "analysis-baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)


# ---------------------------------------------------------------------------
# reporters + CLI
# ---------------------------------------------------------------------------


class TestReportersAndCli:
    def _dirty_repo(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/consensus/snippet.py",
            "import time\ndef decide():\n    return time.time()\n",
        )
        return tmp_path

    def test_json_report_schema(self, tmp_path):
        report = run_analysis(self._dirty_repo(tmp_path))
        payload = json.loads(render_json(report))
        assert payload["clean"] is False
        assert payload["summary"]["findings"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "wall-clock"
        assert finding["path"] == "src/repro/consensus/snippet.py"
        assert finding["line"] == 3
        assert finding["fingerprint"]

    def test_text_report_mentions_location_and_rule(self, tmp_path):
        report = run_analysis(self._dirty_repo(tmp_path))
        text = render_text(report)
        assert "src/repro/consensus/snippet.py:3" in text
        assert "[wall-clock]" in text

    def test_cli_exit_codes_and_write_baseline(self, tmp_path, capsys):
        root = str(self._dirty_repo(tmp_path))
        assert cli_main(["lint", "--root", root]) == 1
        assert cli_main(["lint", "--root", root, "--write-baseline"]) == 0
        assert cli_main(["lint", "--root", root]) == 0  # baselined now
        assert cli_main(["lint", "--root", root, "--no-baseline"]) == 1
        assert cli_main(["lint", "--root", str(tmp_path / "nowhere")]) == 2
        capsys.readouterr()

    def test_cli_json_output_file(self, tmp_path, capsys):
        root = self._dirty_repo(tmp_path)
        out = tmp_path / "report.json"
        assert (
            cli_main(
                ["lint", "--root", str(root), "--format", "json", "--output", str(out)]
            )
            == 1
        )
        payload = json.loads(out.read_text())
        assert payload["summary"]["findings"] == 1
        capsys.readouterr()

    def test_unknown_rule_select_is_a_usage_error(self, tmp_path, capsys):
        root = str(self._dirty_repo(tmp_path))
        assert cli_main(["lint", "--root", root, "--select", "bogus"]) == 2
        capsys.readouterr()


# ---------------------------------------------------------------------------
# the repo itself
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_repo_wide_run_has_no_unbaselined_findings(self):
        """The gate the CI static-analysis job enforces, run as a tier-1 test.

        The determinism and async-hygiene families must stay at zero without
        a baseline entry; the repo currently holds the stronger invariant --
        no baseline file at all.
        """
        report = run_analysis(REPO_ROOT)
        formatted = "\n".join(
            f"{f.location()}: [{f.rule}] {f.message}" for f in report.findings
        )
        assert report.clean, f"un-baselined findings:\n{formatted}"
        assert report.files_analyzed > 50
