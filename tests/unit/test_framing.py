"""Adversarial tests for the frame protocol and the wire envelopes.

A socket transport is fed attacker-controlled bytes; every malformed input --
truncated frames, oversized length headers, version mismatches, mid-stream
garbage -- must surface as :class:`MalformedMessageError` (so the transport
drops the connection) and never as a crash or a silently wrong decode.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import codec
from repro.common.messages import Prepare
from repro.common.types import ReplicaId
from repro.errors import MalformedMessageError
from repro.net.framing import (
    FRAME_HEADER_SIZE,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
)
from repro.net.wire import (
    ControlReply,
    ControlRequest,
    decode_wire_payload,
    encode_envelope,
    encode_envelope_control,
    encode_envelope_multi,
)


def _frame(payload: bytes = b"S\x00\x00\x00\x02hi") -> bytes:
    return encode_frame(payload)


def _message() -> Prepare:
    return Prepare(
        sender=ReplicaId(shard=0, index=1), view=0, sequence=3, batch_digest=b"\x07" * 32
    )


class TestFrameRoundTrip:
    def test_single_frame_round_trips(self):
        body = codec.encode_canonical({"k": "v"})
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(body)) == [body]
        assert decoder.pending_bytes == 0

    def test_multiple_frames_in_one_feed(self):
        bodies = [codec.encode_canonical(i) for i in range(5)]
        stream = b"".join(encode_frame(b) for b in bodies)
        assert FrameDecoder().feed(stream) == bodies

    def test_split_at_every_byte_boundary(self):
        """A frame chopped anywhere -- even inside the header -- reassembles."""
        body = codec.encode_canonical(("x", {"a": 1}, b"\x00\x01"))
        frame = encode_frame(body)
        for cut in range(1, len(frame)):
            decoder = FrameDecoder()
            first = decoder.feed(frame[:cut])
            second = decoder.feed(frame[cut:])
            assert first + second == [body], f"split at byte {cut} lost the frame"

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_arbitrary_chunking_preserves_frames(self, data):
        bodies = [
            codec.encode_canonical(value)
            for value in data.draw(
                st.lists(st.binary(min_size=0, max_size=40), min_size=1, max_size=6)
            )
        ]
        stream = b"".join(encode_frame(b) for b in bodies)
        # Chop the stream at a random ascending set of positions.
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=len(stream)), max_size=10
                )
            )
        )
        decoder = FrameDecoder()
        out = []
        previous = 0
        for cut in cuts + [len(stream)]:
            out.extend(decoder.feed(stream[previous:cut]))
            previous = cut
        assert out == bodies
        assert decoder.pending_bytes == 0

    def test_truncated_stream_yields_nothing_until_completed(self):
        frame = _frame()
        decoder = FrameDecoder()
        assert decoder.feed(frame[: FRAME_HEADER_SIZE - 2]) == []
        assert decoder.feed(frame[FRAME_HEADER_SIZE - 2 : -1]) == []
        assert decoder.pending_bytes == len(frame) - 1


class TestFrameRejection:
    def test_empty_body_cannot_be_framed(self):
        with pytest.raises(MalformedMessageError):
            encode_frame(b"")

    def test_encode_respects_max_frame(self):
        with pytest.raises(MalformedMessageError):
            encode_frame(b"x" * 11, max_frame=10)

    def test_bad_magic_rejected(self):
        with pytest.raises(MalformedMessageError, match="magic"):
            FrameDecoder().feed(b"HTTP/1.1 200 OK\r\n\r\n")

    def test_version_mismatch_rejected(self):
        frame = struct.pack(">2sBI", PROTOCOL_MAGIC, PROTOCOL_VERSION + 1, 2) + b"hi"
        with pytest.raises(MalformedMessageError, match="version"):
            FrameDecoder().feed(frame)

    def test_zero_length_frame_rejected(self):
        frame = struct.pack(">2sBI", PROTOCOL_MAGIC, PROTOCOL_VERSION, 0)
        with pytest.raises(MalformedMessageError, match="zero-length"):
            FrameDecoder().feed(frame)

    def test_oversized_length_header_rejected_before_buffering(self):
        """A hostile 4 GiB length prefix fails on the header alone."""
        frame = struct.pack(">2sBI", PROTOCOL_MAGIC, PROTOCOL_VERSION, 0xFFFFFFFF)
        decoder = FrameDecoder()
        with pytest.raises(MalformedMessageError, match="limit"):
            decoder.feed(frame)

    def test_max_frame_is_configurable(self):
        body = b"x" * 100
        frame = encode_frame(body)
        with pytest.raises(MalformedMessageError, match="limit"):
            FrameDecoder(max_frame=50).feed(frame)

    def test_garbage_after_valid_frame_poisons_the_stream(self):
        body = codec.encode_canonical("ok")
        decoder = FrameDecoder()
        with pytest.raises(MalformedMessageError):
            decoder.feed(encode_frame(body) + b"\xde\xad\xbe\xef\xde\xad\xbe")
        # Nothing more can come out of a poisoned decoder.
        with pytest.raises(MalformedMessageError, match="reconnect"):
            decoder.feed(b"")

    def test_garbage_before_poison_still_yields_valid_prefix(self):
        body = codec.encode_canonical("ok")
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame(body))
        assert frames == [body]
        with pytest.raises(MalformedMessageError):
            decoder.feed(b"garbage!" * 4)


class TestDeliverEnvelope:
    def test_envelope_round_trips_message_and_tags(self):
        message = _message()
        message.attach_auth("peer:r0@S0", b"\x01" * 32)
        message.attach_auth("peer:r2@S0", b"\x02" * 32)
        dst = ReplicaId(shard=0, index=2)
        decoded_dst, decoded = decode_wire_payload(encode_envelope(dst, message))
        assert decoded_dst == dst
        assert decoded == message
        assert decoded is not message  # a genuine per-receiver copy
        assert decoded.auth_tag("peer:r0@S0") == b"\x01" * 32
        assert decoded.auth_tag("peer:r2@S0") == b"\x02" * 32

    def test_client_string_addresses_round_trip(self):
        dst, decoded = decode_wire_payload(encode_envelope("client-7", _message()))
        assert dst == "client-7"
        assert decoded == _message()

    def test_message_encoding_is_memoised_but_tags_stay_live(self):
        """Re-encoding a reused message skips the codec walk, yet tags
        attached *after* a first send still reach later envelopes."""
        message = _message()
        first = encode_envelope("client-0", message)
        assert message.__dict__.get("_wire_memo") is not None
        message.attach_auth("peer:r3@S0", b"\x09" * 32)
        second = encode_envelope("client-0", message)
        assert first != second  # the new tag is part of the later envelope
        _, decoded = decode_wire_payload(second)
        assert decoded.auth_tag("peer:r3@S0") == b"\x09" * 32

    def test_multicast_bodies_match_unicast_encodings(self):
        """The encode-once fast path must be byte-identical per destination."""
        message = _message()
        message.attach_auth("peer:r2@S0", b"\x03" * 32)
        dsts = [ReplicaId(shard=0, index=i) for i in range(4)] + ["client-0"]
        bodies = encode_envelope_multi(dsts, message)
        assert bodies == [encode_envelope(dst, message) for dst in dsts]

    def test_non_envelope_payload_rejected(self):
        with pytest.raises(MalformedMessageError, match="neither"):
            decode_wire_payload(codec.encode_canonical(42))

    def test_wrong_arity_tuple_rejected(self):
        with pytest.raises(MalformedMessageError):
            decode_wire_payload(codec.encode_canonical(("dst", {})))

    def test_non_message_payload_rejected(self):
        with pytest.raises(MalformedMessageError, match="non-message"):
            decode_wire_payload(codec.encode_canonical(("dst", {}, "not a message")))

    def test_invalid_destination_types_rejected(self):
        """A crafted (even unhashable) destination is garbage, not a TypeError."""
        for dst in ({"a": 1}, 7, ["x"], None):
            body = codec.encode_canonical((dst, {}, _message()))
            with pytest.raises(MalformedMessageError, match="destination"):
                decode_wire_payload(body)

    def test_malformed_tag_vector_rejected(self):
        body = codec.encode_canonical(("dst", {"peer:x": "not-bytes"}, _message()))
        with pytest.raises(MalformedMessageError, match="tag vector"):
            decode_wire_payload(body)

    def test_truncated_envelope_raises_malformed(self):
        body = encode_envelope("client-0", _message())
        for cut in range(1, len(body), 7):
            with pytest.raises(MalformedMessageError):
                decode_wire_payload(body[:cut])


class TestTransportFrameLimit:
    def test_send_respects_the_transport_max_frame(self):
        """A transport's frame limit binds its *own* sends too, so a
        misconfigured fleet fails loudly instead of poisoning receivers."""
        import asyncio

        from repro.net.transport import SocketTransport
        from repro.rt.transport import RealTimeScheduler

        loop = asyncio.new_event_loop()
        try:
            scheduler = RealTimeScheduler(loop, seed=1)
            transport = SocketTransport(
                scheduler, loop, address_map={"peer": ("127.0.0.1", 1)}, max_frame=64
            )
            with pytest.raises(MalformedMessageError, match="limit"):
                transport.send("me", "peer", _message())
        finally:
            loop.close()


class TestTransportFaultInjection:
    def test_conditions_suppress_sends_like_the_sim_network(self):
        """Injected faults are honoured (not silently ignored) on sockets."""
        import asyncio

        from repro.net.transport import SocketTransport
        from repro.rt.transport import RealTimeScheduler

        loop = asyncio.new_event_loop()
        try:
            scheduler = RealTimeScheduler(loop, seed=1)
            transport = SocketTransport(
                scheduler, loop, address_map={"peer": ("127.0.0.1", 1)}
            )
            transport.conditions.block_link("me", "peer")
            transport.send("me", "peer", _message())
            transport.multicast("me", ["peer"], _message())
            assert transport.stats.faults_injected == 2
            assert transport.stats.bytes_sent == 0
            transport.conditions.unblock_link("me", "peer")
            transport.conditions.drop_probability = 1.0
            transport.send("me", "peer", _message())
            assert transport.stats.faults_injected == 3
        finally:
            loop.close()


class TestTransportDeliveryErrors:
    def test_handler_exception_is_counted_not_fatal(self, capsys):
        """A node handler that raises must not kill the reader silently."""
        import asyncio

        from repro.net.transport import SocketTransport
        from repro.rt.transport import RealTimeScheduler

        class _ExplodingNode:
            address = "boom"
            region = "local"
            crashed = False

            def deliver(self, message):
                raise RuntimeError("handler bug")

        loop = asyncio.new_event_loop()
        try:
            scheduler = RealTimeScheduler(loop, seed=1)
            transport = SocketTransport(scheduler, loop)
            transport.register(_ExplodingNode())
            payload = decode_wire_payload(encode_envelope("boom", _message()))
            loop.run_until_complete(transport._dispatch(payload, None))
            assert transport.stats.delivery_errors == 1
            assert transport.stats.delivered == 1
            assert "handler bug" in capsys.readouterr().err
        finally:
            loop.close()


class TestControlMessages:
    def test_control_request_round_trips(self):
        request = ControlRequest(op="stats", data={"window": 3})
        assert decode_wire_payload(encode_envelope_control(request)) == request

    def test_control_reply_round_trips(self):
        reply = ControlReply(op="stats", ok=False, data={"error": "boom"})
        assert decode_wire_payload(encode_envelope_control(reply)) == reply
