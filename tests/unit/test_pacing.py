"""Unit tests for the slot-occupancy controller and the window gauges.

The controller is a pure function of its event feed (no clock, no RNG), so
every behaviour here is pinned with hand-fed event sequences: estimator
convergence, the shaped/eager regime boundary, the batch-ceiling clamps, and
the view-change reset.  The depth=1 ``peak_open_slots`` gauge is pinned
separately because its reading of 2 looks like an off-by-one and is not --
see ``TestLegacyWindowGauge``.
"""

import pytest

from repro.config import PipelineConfig, SystemConfig, WorkloadConfig
from repro.consensus.pbft.pacing import SlotOccupancyController
from repro.engine.deployment import Deployment
from repro.engine.driver import WorkloadDriver
from repro.workloads.ycsb import YcsbWorkloadGenerator


def _controller(**overrides) -> SlotOccupancyController:
    params = dict(
        depth=4,
        min_batch=1,
        max_batch=16,
        ewma_alpha=0.2,
        latency_prior_s=0.005,
        sustain_threshold=1.0,
    )
    params.update(overrides)
    return SlotOccupancyController(**params)


class TestArrivalRateEstimator:
    def test_no_samples_reads_zero(self):
        assert _controller().arrival_rate_tps == 0.0

    def test_uniform_arrivals_converge_to_rate(self):
        ctl = _controller()
        for i in range(200):
            ctl.note_arrival(i * 0.01)  # 100/s
        assert ctl.arrival_rate_tps == pytest.approx(100.0, rel=0.01)

    def test_burst_then_gap_averages_not_explodes(self):
        # A burst of N same-instant arrivals followed by one real gap must
        # read as the sustained rate, not as N divided by the tiny gap.
        ctl = _controller()
        now = 0.0
        for _ in range(50):  # 50 rounds of: 4 arrivals at once, then 40 ms
            for _ in range(4):
                ctl.note_arrival(now)
            now += 0.04  # sustained: 100/s
        # Phase-dependent (the feed ends just after the zero-gap burst, which
        # biases the smoothed gap low), so pin the order of magnitude: close
        # to 100/s and nowhere near burst-size-over-one-gap (= 400/s+).
        assert 70.0 <= ctl.arrival_rate_tps <= 200.0

    def test_all_zero_gaps_read_zero_not_infinity(self):
        ctl = _controller()
        for _ in range(10):
            ctl.note_arrival(5.0)
        assert ctl.arrival_rate_tps == 0.0


class TestLatencyAndHoldEstimators:
    def test_commit_latency_sampled_at_commit_not_release(self):
        # A deferred cross-shard slot: commit after 1 ms, release after 60 ms.
        # L must read the consensus round, H the occupancy.
        ctl = _controller()
        for seq in range(1, 20):
            t = seq * 0.1
            ctl.note_propose(t, seq)
            ctl.note_commit(t + 0.001, seq)
            ctl.note_close(t + 0.060, seq)
        assert ctl.commit_latency_s == pytest.approx(0.001, rel=0.01)
        assert ctl.slot_hold_s == pytest.approx(0.060, rel=0.05)

    def test_abandoned_slot_never_samples(self):
        ctl = _controller()
        ctl.note_propose(0.0, 1)
        ctl.note_close(5.0, 1, committed=False)  # a 5 s fault timeout
        assert ctl.commit_latency_s == pytest.approx(0.005)  # still the prior
        assert ctl.slot_hold_s == pytest.approx(0.005)

    def test_reset_forgets_open_slots_but_keeps_estimates(self):
        ctl = _controller()
        for seq in range(1, 12):
            ctl.note_propose(seq * 0.01, seq)
            ctl.note_commit(seq * 0.01 + 0.002, seq)
            ctl.note_close(seq * 0.01 + 0.002, seq)
        latency_before = ctl.commit_latency_s
        ctl.note_propose(0.5, 99)
        ctl.note_reset(0.6)  # view change voids the window
        # The orphaned slot is gone: closing it later must not sample a
        # bogus latency.
        ctl.note_close(9.9, 99)
        assert ctl.commit_latency_s == latency_before


class TestRegimeBoundary:
    def _warm(self, ctl, rate_tps, latency_s):
        gap = 1.0 / rate_tps
        now = 0.0
        for seq in range(1, 12):
            ctl.note_arrival(now)
            ctl.note_propose(now, seq)
            ctl.note_commit(now + latency_s, seq)
            ctl.note_close(now + latency_s, seq)
            now += gap
        return ctl

    def test_low_demand_stays_eager(self):
        # 100/s against 1 ms rounds: demand 0.1 slots, nowhere near 1.
        ctl = self._warm(_controller(), 100.0, 0.001)
        assert ctl.warmed_up()
        assert not ctl.window_sustainable()

    def test_high_demand_engages_shaped(self):
        # 2000/s against 1 ms rounds: demand 2 slots.
        ctl = self._warm(_controller(), 2000.0, 0.001)
        assert ctl.window_sustainable()

    def test_cold_controller_never_shaped(self):
        ctl = _controller()
        assert not ctl.window_sustainable()

    def test_warmup_requires_both_estimators(self):
        ctl = _controller()
        for i in range(20):
            ctl.note_arrival(i * 0.0001)  # plenty of rate samples
        assert not ctl.warmed_up()  # no latency samples yet


class TestBatchCeiling:
    def test_ceiling_spreads_slot_demand_over_depth(self):
        ctl = _controller(depth=4)
        # lam=2000/s, H=16 ms -> slot demand 32 -> 8 per slot at depth 4.
        for seq in range(1, 12):
            t = seq * 0.0005
            ctl.note_arrival(t)
            ctl.note_propose(t, seq)
            ctl.note_commit(t + 0.001, seq)
            ctl.note_close(t + 0.016, seq)
        assert ctl.batch_ceiling() == pytest.approx(8, abs=1)

    def test_ceiling_never_exceeds_max_batch(self):
        ctl = _controller(depth=1, max_batch=16)
        for seq in range(1, 12):
            t = seq * 0.0001  # 10k/s against long holds: huge demand
            ctl.note_arrival(t)
            ctl.note_propose(t, seq)
            ctl.note_commit(t + 0.001, seq)
            ctl.note_close(t + 0.1, seq)
        assert ctl.batch_ceiling() == 16

    def test_ceiling_floor_is_two_no_crumbs(self):
        ctl = _controller()  # cold: demand 0
        assert ctl.batch_ceiling() == 2

    def test_ceiling_respects_min_batch(self):
        ctl = _controller(min_batch=5)
        assert ctl.batch_ceiling() == 5


class TestOccupancyGauge:
    def test_single_slot_half_busy(self):
        ctl = _controller()
        ctl.note_propose(0.0, 1)
        ctl.note_close(1.0, 1)
        ctl.note_propose(1.0, 2)
        ctl.note_close(2.0, 2)
        # Two slots busy back-to-back over [0, 4]: time-average 0.5.
        assert ctl.occupancy(4.0) == pytest.approx(0.5)

    def test_snapshot_keys_are_stable(self):
        snap = _controller().snapshot(0.0)
        assert set(snap) == {
            "slot_occupancy",
            "batch_ceiling",
            "ewma_commit_latency_s",
            "ewma_slot_hold_s",
            "ewma_arrival_rate_tps",
            "inflight_demand",
        }


class TestDeterminism:
    def test_identical_event_feeds_identical_state(self):
        def feed(ctl):
            for seq in range(1, 30):
                t = seq * 0.003
                ctl.note_arrival(t)
                ctl.note_propose(t, seq)
                ctl.note_commit(t + 0.001, seq)
                ctl.note_close(t + 0.002, seq)
            return ctl.snapshot(0.1)

        assert feed(_controller()) == feed(_controller())


class TestLegacyWindowGauge:
    """Pin the depth=1 ``peak_open_slots`` reading of 2.

    The legacy propose-on-fill path has *no* window gate: a flush emits one
    batch per involved-shard group back-to-back (a cross-shard group and a
    local group can be proposed at the same instant), so two proposals are
    momentarily in flight and the gauge honestly reads 2.  The depth=1
    guarantee is byte-identical *chains* (one consensus per batch, sequence
    order), not one-slot-at-a-time -- pinning the gauge here keeps anyone
    from "fixing" the reading to 1 and silently serialising the legacy
    flush.
    """

    def test_depth1_macro_peaks_at_two_open_slots(self):
        workload = WorkloadConfig(
            num_records=1_000,
            cross_shard_fraction=0.3,
            batch_size=100,
            num_clients=6,
            seed=2022,
        )
        config = SystemConfig.uniform(
            3, 4, workload=workload, pipeline=PipelineConfig(depth=1)
        )
        deployment = Deployment.build(
            config, backend="sim", num_clients=0, batch_size=100, seed=2022
        )
        try:
            for i, shard in enumerate(config.shards):
                for j in range(2):
                    deployment.add_client(f"client-{i}-{j}", region=shard.region)
            generator = YcsbWorkloadGenerator(
                deployment.table, deployment.directory.ring, workload, seed=2022
            )
            driver = WorkloadDriver(
                deployment, generator, total=120, window=4, poll_interval=0.005
            )
            result = driver.run(timeout=600.0)
        finally:
            deployment.close()
        assert result.completed == 120
        # 2, not 1: the flush proposes the cross-shard group and the local
        # group at the same instant.  2, not more: each group still waits
        # for its own previous batch, so overlap never compounds.
        assert result.pipeline_stats["peak_open_slots"] == 2
