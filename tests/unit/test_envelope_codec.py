"""Packed envelope layouts: byte-identity with the generic codec walker.

The rich envelopes (Transaction/Operation/ClientRequest/Forward) encode
through compiled fixed layouts that splice memoised nested frames verbatim
(``compile_fixed_dict`` raw_keys).  Exactly like the vote layouts, the fast
path must be invisible on the wire: every packed payload must equal
``encode_canonical`` of the same field dict bit for bit, or digests, MACs,
and signatures stop interoperating between fast-path and generic encoders.

These are the byte-identity tests the ``layout-identity-test`` analysis rule
requires for ``_TXN_LAYOUT``/``_OP_LAYOUT``/``_CLIENT_REQUEST_LAYOUT``/
``_FORWARD_LAYOUT``.
"""

from repro.common import codec
from repro.common.crypto import DIGEST_SIZE, Signature
from repro.common.messages import ClientRequest, CommitCertificate, Forward
from repro.common.types import ReplicaId
from repro.txn.transaction import Operation, OpType, Transaction, TransactionBuilder


def _transaction(txn_id: str = "txn-1", *, complex_txn: bool = False) -> Transaction:
    builder = (
        TransactionBuilder(txn_id, "client-0")
        .read(0, "user1")
        .write(1, "user200", "v")
    )
    if complex_txn:
        builder.write(2, "user400", "w", depends_on=((0, "user1"),))
    return builder.build()


def _certificate(digest: bytes) -> CommitCertificate:
    signatures = tuple(
        Signature(signer=f"replica-{i}", value=bytes([i]) * DIGEST_SIZE) for i in range(3)
    )
    return CommitCertificate(
        shard=0, view=0, sequence=3, batch_digest=digest, signatures=signatures
    )


class TestOperationIdentity:
    def test_simple_operation_matches_generic_encoding(self):
        op = Operation(shard=2, key="user7", op_type=OpType.WRITE, value="x")
        assert op.packed_bytes() == codec.encode_canonical(op.to_wire())

    def test_read_operation_matches_generic_encoding(self):
        op = Operation(shard=0, key="user1", op_type=OpType.READ)
        assert op.packed_bytes() == codec.encode_canonical(op.to_wire())

    def test_operation_with_dependencies_matches_generic_encoding(self):
        op = Operation(
            shard=1,
            key="user9",
            op_type=OpType.WRITE,
            value="derived",
            depends_on=((0, "user1"), (2, "user400")),
        )
        assert op.packed_bytes() == codec.encode_canonical(op.to_wire())

    def test_unicode_and_empty_values_match_generic_encoding(self):
        for value in ("", "äöü ☃", "0" * 300):
            op = Operation(shard=0, key="k", op_type=OpType.WRITE, value=value)
            assert op.packed_bytes() == codec.encode_canonical(op.to_wire())


class TestTransactionIdentity:
    def test_simple_transaction_matches_generic_encoding(self):
        txn = _transaction()
        assert txn.payload_bytes() == codec.encode_canonical(txn.to_wire())

    def test_complex_transaction_matches_generic_encoding(self):
        txn = _transaction(complex_txn=True)
        assert txn.payload_bytes() == codec.encode_canonical(txn.to_wire())

    def test_packed_transaction_round_trips_through_the_decoder(self):
        txn = _transaction(complex_txn=True)
        assert codec.decode_canonical(txn.payload_bytes()) == txn.to_wire()

    def test_digest_agrees_whichever_path_encodes_first(self):
        a = _transaction("same")
        b = _transaction("same")
        a.payload_bytes()  # packed layout first
        b.digest()  # generic walk first
        assert a.digest() == b.digest()


class TestClientRequestIdentity:
    def test_client_request_matches_generic_encoding(self):
        request = ClientRequest(sender="client-0", transaction=_transaction())
        assert request.payload_bytes() == codec.encode_canonical(request._payload_fields())

    def test_client_request_with_complex_transaction_matches(self):
        request = ClientRequest(sender="client-äöü", transaction=_transaction(complex_txn=True))
        assert request.payload_bytes() == codec.encode_canonical(request._payload_fields())

    def test_packed_client_request_round_trips(self):
        request = ClientRequest(sender="client-0", transaction=_transaction())
        assert codec.decode_canonical(request.payload_bytes()) == request._payload_fields()


class TestForwardIdentity:
    def _forward(self, read_sets=None) -> Forward:
        txn = _transaction()
        request = ClientRequest(sender="client-0", transaction=txn)
        digest = b"\x07" * DIGEST_SIZE
        return Forward(
            sender=ReplicaId(0, 1),
            requests=(request,),
            certificate=_certificate(digest),
            batch_digest=digest,
            origin_shard=0,
            read_sets=read_sets or {},
        )

    def test_forward_matches_generic_encoding(self):
        forward = self._forward()
        assert forward.payload_bytes() == codec.encode_canonical(forward._payload_fields())

    def test_forward_with_read_sets_matches_generic_encoding(self):
        forward = self._forward(read_sets={0: {"user1": "a"}, 2: {"user400": "w"}})
        assert forward.payload_bytes() == codec.encode_canonical(forward._payload_fields())

    def test_packed_forward_round_trips(self):
        forward = self._forward(read_sets={1: {"user200": "v"}})
        assert codec.decode_canonical(forward.payload_bytes()) == forward._payload_fields()
