"""Unit tests for the per-shard partial blockchain."""

import dataclasses

import pytest

from repro.errors import LedgerError
from repro.storage.ledger import Block, Ledger, genesis_block
from repro.txn.transaction import TransactionBuilder


def _txn(txn_id, shard=0, key="user1"):
    return TransactionBuilder(txn_id, "client-0").read_modify_write(shard, key, f"{txn_id}-v").build()


def _cross_txn(txn_id):
    return (
        TransactionBuilder(txn_id, "client-0")
        .read_modify_write(0, "user1", "a")
        .read_modify_write(1, "user200", "b")
        .build()
    )


class TestGenesis:
    def test_ledger_starts_with_genesis(self):
        ledger = Ledger(shard_id=3)
        assert len(ledger) == 1
        assert ledger.height == 0
        assert ledger.head.primary == "genesis"

    def test_genesis_is_deterministic_per_shard(self):
        assert genesis_block(1).block_hash() == genesis_block(1).block_hash()

    def test_genesis_differs_across_shards(self):
        assert genesis_block(0).block_hash() != genesis_block(1).block_hash()


class TestAppend:
    def test_append_batch_links_to_head(self):
        ledger = Ledger(shard_id=0)
        block = ledger.append_batch(1, "r0@S0", [_txn("t1"), _txn("t2")])
        assert block.height == 1
        assert block.previous_hash == genesis_block(0).block_hash()
        assert ledger.head is block

    def test_append_empty_batch_rejected(self):
        ledger = Ledger(shard_id=0)
        with pytest.raises(LedgerError):
            ledger.append_batch(1, "r0@S0", [])

    def test_cross_shard_block_records_involved_shards(self):
        ledger = Ledger(shard_id=0)
        block = ledger.append_batch(1, "r0@S0", [_cross_txn("t1")])
        assert block.is_cross_shard
        assert block.involved_shards == frozenset({0, 1})

    def test_contains_txn(self):
        ledger = Ledger(shard_id=0)
        ledger.append_batch(1, "r0@S0", [_txn("present")])
        assert ledger.contains_txn("present")
        assert not ledger.contains_txn("absent")

    def test_sequence_of_indexes_every_appended_txn(self):
        ledger = Ledger(shard_id=0)
        ledger.append_batch(1, "p", [_txn("t1"), _txn("t2")])
        ledger.append_batch(4, "p", [_txn("t3")])
        assert ledger.sequence_of("t1") == 1
        assert ledger.sequence_of("t2") == 1
        assert ledger.sequence_of("t3") == 4
        assert ledger.sequence_of("never-committed") == 0

    def test_sequence_of_matches_a_full_scan(self):
        ledger = Ledger(shard_id=0)
        for i in range(1, 8):
            ledger.append_batch(i, "p", [_txn(f"t{i}")])
        for block in ledger.blocks()[1:]:
            for txn_id in block.txn_ids:
                assert ledger.sequence_of(txn_id) == block.sequence

    def test_adopted_blocks_are_indexed(self):
        source = Ledger(shard_id=0)
        source.append_batch(1, "p", [_txn("a")])
        source.append_batch(2, "p", [_txn("b")])
        target = Ledger(shard_id=0)
        target.adopt_blocks(source.blocks()[1:])
        assert target.sequence_of("a") == 1
        assert target.sequence_of("b") == 2
        assert target.contains_txn("b")

    def test_block_at_bounds(self):
        ledger = Ledger(shard_id=0)
        ledger.append_batch(1, "r0@S0", [_txn("t1")])
        assert ledger.block_at(1).txn_ids == ("t1",)
        with pytest.raises(LedgerError):
            ledger.block_at(5)

    def test_cross_shard_blocks_filter(self):
        ledger = Ledger(shard_id=0)
        ledger.append_batch(1, "p", [_txn("a")])
        ledger.append_batch(2, "p", [_cross_txn("b")])
        assert [b.txn_ids for b in ledger.cross_shard_blocks()] == [("b",)]


class TestChainIntegrity:
    def test_verify_chain_on_honest_ledger(self):
        ledger = Ledger(shard_id=0)
        for i in range(5):
            ledger.append_batch(i + 1, "p", [_txn(f"t{i}")])
        assert ledger.verify_chain()

    def test_tampering_with_a_block_is_detected(self):
        ledger = Ledger(shard_id=0)
        for i in range(4):
            ledger.append_batch(i + 1, "p", [_txn(f"t{i}")])
        blocks = ledger._blocks
        original = blocks[2]
        blocks[2] = dataclasses.replace(original, txn_ids=("forged",))
        assert not ledger.verify_chain()

    def test_appending_block_with_wrong_parent_rejected(self):
        ledger = Ledger(shard_id=0)
        ledger.append_batch(1, "p", [_txn("t1")])
        bogus = Block(
            height=2,
            sequence=2,
            shard_id=0,
            primary="p",
            merkle_root=b"\x00" * 32,
            previous_hash=b"\x11" * 32,
            txn_ids=("x",),
            involved_shards=frozenset({0}),
        )
        with pytest.raises(LedgerError):
            ledger._append(bogus)

    def test_commit_order_reflects_block_order(self):
        ledger = Ledger(shard_id=0)
        ledger.append_batch(1, "p", [_txn("first")])
        ledger.append_batch(2, "p", [_txn("second"), _txn("third")])
        assert ledger.commit_order({"third", "first"}) == ["first", "third"]

    def test_block_hash_covers_transactions(self):
        ledger_a = Ledger(shard_id=0)
        ledger_b = Ledger(shard_id=0)
        ledger_a.append_batch(1, "p", [_txn("t1")])
        ledger_b.append_batch(1, "p", [_txn("t2")])
        assert ledger_a.head.block_hash() != ledger_b.head.block_hash()
