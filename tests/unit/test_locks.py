"""Unit tests for the sequence-ordered lock manager (Section 4.3.5)."""

import pytest

from repro.errors import LockError
from repro.storage.locks import LockManager


class TestBasicLocking:
    def test_first_sequence_acquires_immediately(self):
        locks = LockManager(shard_id=0)
        acquired, unblocked = locks.try_lock(1, "t1", frozenset({"a"}))
        assert acquired
        assert unblocked == []
        assert locks.holder_of("a") == "t1"
        assert locks.k_max == 1

    def test_out_of_order_sequence_waits(self):
        locks = LockManager(shard_id=0)
        acquired, _ = locks.try_lock(2, "t2", frozenset({"b"}))
        assert not acquired
        assert locks.pending_sequences == (2,)

    def test_gap_fill_releases_pending(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(2, "t2", frozenset({"b"}))
        acquired, unblocked = locks.try_lock(1, "t1", frozenset({"a"}))
        assert acquired
        assert unblocked == ["t2"]
        assert locks.k_max == 2

    def test_conflicting_pending_transaction_stays_blocked(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(1, "t1", frozenset({"a"}))
        acquired, _ = locks.try_lock(2, "t2", frozenset({"a"}))
        assert not acquired
        assert locks.pending_sequences == (2,)

    def test_release_unblocks_conflicting_transaction(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(1, "t1", frozenset({"a"}))
        locks.try_lock(2, "t2", frozenset({"a"}))
        unblocked = locks.release("t1")
        assert unblocked == ["t2"]
        assert locks.holder_of("a") == "t2"

    def test_release_without_holding_raises(self):
        locks = LockManager(shard_id=0)
        with pytest.raises(LockError):
            locks.release("ghost")

    def test_relock_by_same_transaction_is_idempotent(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(1, "t1", frozenset({"a"}))
        acquired, unblocked = locks.try_lock(5, "t1", frozenset({"a"}))
        assert acquired
        assert unblocked == []

    def test_reusing_processed_sequence_raises(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(1, "t1", frozenset({"a"}))
        with pytest.raises(LockError):
            locks.try_lock(1, "t-other", frozenset({"b"}))

    def test_sequence_must_be_positive(self):
        locks = LockManager(shard_id=0)
        with pytest.raises(LockError):
            locks.try_lock(0, "t", frozenset({"a"}))

    def test_empty_key_set_locks_trivially(self):
        locks = LockManager(shard_id=0)
        acquired, _ = locks.try_lock(1, "t1", frozenset())
        assert acquired
        assert locks.locked_key_count == 0


class TestPaperExample44:
    """The exact scenario of Example 4.4 in the paper.

    T1 accesses item a, T2 item b, T3 item a, T4 item c.  Commits arrive out
    of order (T2, T3, T4 before T1).  After T1 locks, T2 proceeds, T3 blocks
    on a, and T4 stays behind T3 in the pending list.
    """

    def test_example_flow(self):
        locks = LockManager(shard_id=0)
        assert not locks.try_lock(2, "T2", frozenset({"b"}))[0]
        assert not locks.try_lock(3, "T3", frozenset({"a"}))[0]
        assert not locks.try_lock(4, "T4", frozenset({"c"}))[0]
        assert locks.pending_sequences == (2, 3, 4)

        acquired, unblocked = locks.try_lock(1, "T1", frozenset({"a"}))
        assert acquired
        # T2 is released (distinct data item); T3 conflicts with T1 on a and
        # stops the drain, keeping T4 behind it.
        assert unblocked == ["T2"]
        assert locks.k_max == 2
        assert locks.pending_sequences == (3, 4)

        # When T1 releases a, T3 and then T4 proceed.
        unblocked = locks.release("T1")
        assert unblocked == ["T3", "T4"]
        assert locks.k_max == 4


class TestSkippedSequences:
    def test_skip_closes_gap(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(2, "t2", frozenset({"b"}))
        unblocked = locks.skip_sequence(1)
        assert unblocked == ["t2"]
        assert locks.k_max == 2

    def test_skip_future_sequence_applies_when_reached(self):
        locks = LockManager(shard_id=0)
        assert locks.skip_sequence(2) == []
        acquired, unblocked = locks.try_lock(1, "t1", frozenset({"a"}))
        assert acquired
        assert locks.k_max == 2  # sequence 2 was consumed as a no-op
        assert unblocked == []

    def test_skip_already_processed_sequence_is_noop(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(1, "t1", frozenset({"a"}))
        assert locks.skip_sequence(1) == []
        assert locks.k_max == 1

    def test_chain_of_skips(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(4, "t4", frozenset({"d"}))
        locks.skip_sequence(2)
        locks.skip_sequence(3)
        unblocked = locks.skip_sequence(1)
        assert unblocked == ["t4"]
        assert locks.k_max == 4


class TestIntrospection:
    def test_held_keys_and_holds(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(1, "t1", frozenset({"a", "b"}))
        assert locks.holds("t1")
        assert locks.held_keys("t1") == frozenset({"a", "b"})
        assert locks.held_keys("other") == frozenset()

    def test_is_free(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(1, "t1", frozenset({"a"}))
        assert not locks.is_free(frozenset({"a", "z"}))
        assert locks.is_free(frozenset({"z"}))
