"""Unit tests for the request batcher, including the adaptive pipelined path.

The classic path (``add``) closes a batch exactly at ``batch_size``; the
pipelined path (``stage``/``take``/``flush(max_size)``) sizes batches
adaptively through :meth:`Batcher.even_split`, so a trailing flush emits
balanced batches instead of one-request crumbs.
"""

from repro.common.batching import Batcher
from repro.common.messages import ClientRequest
from repro.txn.transaction import TransactionBuilder


def _request(txn_id: str, shards=(0,)) -> ClientRequest:
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        builder.read_modify_write(shard, f"key-{shard}", f"{txn_id}-v")
    return ClientRequest(sender="client-0", transaction=builder.build())


class TestClassicFill:
    def test_batch_closes_at_fill(self):
        batcher = Batcher(batch_size=3)
        assert batcher.add(_request("a")) is None
        assert batcher.add(_request("b")) is None
        batch = batcher.add(_request("c"))
        assert [r.transaction.txn_id for r in batch] == ["a", "b", "c"]

    def test_batches_stay_homogeneous_by_shard_set(self):
        batcher = Batcher(batch_size=2)
        assert batcher.add(_request("local", shards=(0,))) is None
        assert batcher.add(_request("cross", shards=(0, 1))) is None
        batch = batcher.add(_request("local-2", shards=(0,)))
        assert [r.transaction.txn_id for r in batch] == ["local", "local-2"]


class TestStageAndTake:
    def test_take_respects_max_size_and_preserves_order(self):
        batcher = Batcher(batch_size=8)
        for name in ("a", "b", "c", "d", "e"):
            batcher.stage(_request(name))
        assert batcher.pending == 5
        first = batcher.take(3)
        assert [r.transaction.txn_id for r in first] == ["a", "b", "c"]
        assert batcher.pending == 2
        second = batcher.take(3)
        assert [r.transaction.txn_id for r in second] == ["d", "e"]
        assert batcher.take(3) is None

    def test_take_never_mixes_shard_groups(self):
        batcher = Batcher(batch_size=8)
        batcher.stage(_request("local-1", shards=(0,)))
        batcher.stage(_request("cross-1", shards=(0, 1)))
        batcher.stage(_request("local-2", shards=(0,)))
        batch = batcher.take(10)
        assert [r.transaction.txn_id for r in batch] == ["local-1", "local-2"]

    def test_take_zero_returns_none(self):
        batcher = Batcher(batch_size=4)
        batcher.stage(_request("a"))
        assert batcher.take(0) is None
        assert batcher.pending == 1


class TestEvenSplit:
    def test_balanced_chunks_not_remainder_crumbs(self):
        # 9 requests at max 4 become 3+3+3, never 4+4+1.
        assert Batcher.even_split(9, 4) == [3, 3, 3]

    def test_exact_multiples_fill_completely(self):
        assert Batcher.even_split(8, 4) == [4, 4]

    def test_small_counts_ship_whole(self):
        assert Batcher.even_split(1, 4) == [1]
        assert Batcher.even_split(4, 4) == [4]

    def test_uneven_split_puts_extra_in_leading_chunks(self):
        assert Batcher.even_split(5, 4) == [3, 2]
        assert Batcher.even_split(10, 3) == [3, 3, 2, 2]


class TestFlush:
    def test_flush_without_max_returns_whole_groups(self):
        batcher = Batcher(batch_size=8)
        for name in ("a", "b", "c"):
            batcher.stage(_request(name))
        batches = batcher.flush()
        assert [[r.transaction.txn_id for r in b] for b in batches] == [["a", "b", "c"]]
        assert batcher.pending == 0

    def test_flush_with_max_size_uses_adaptive_sizing(self):
        batcher = Batcher(batch_size=16)
        for i in range(9):
            batcher.stage(_request(f"t{i}"))
        batches = batcher.flush(max_size=4)
        assert [len(b) for b in batches] == [3, 3, 3]
        assert batcher.pending == 0
        flat = [r.transaction.txn_id for b in batches for r in b]
        assert flat == [f"t{i}" for i in range(9)]

    def test_flush_covers_every_group(self):
        batcher = Batcher(batch_size=16)
        batcher.stage(_request("local", shards=(0,)))
        batcher.stage(_request("cross", shards=(0, 1)))
        batches = batcher.flush(max_size=4)
        assert sorted(r.transaction.txn_id for b in batches for r in b) == ["cross", "local"]
