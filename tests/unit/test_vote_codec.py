"""Fixed-layout vote encoders: byte-equivalence, injectivity, round trips.

The struct-packed fast paths for Prepare/Commit/Checkpoint must be *invisible*
on the wire: every payload they produce has to equal the generic codec's
encoding of the same field dict bit for bit, or MACs and digests would stop
interoperating between fast-path and generic encoders.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import codec
from repro.common.messages import (
    Checkpoint,
    Commit,
    Prepare,
    _commit_vote_fields,
)
from repro.common.types import ReplicaId

_SENDERS = (ReplicaId(0, 0), ReplicaId(7, 27), "client-0", "äöü ☃", "")
_VIEWS = (0, 1, 99, 10**9)
_SEQUENCES = (0, 1, -5, 10**15)
_DIGESTS = (b"", b"\x00" * 32, bytes(range(64)), b"\xff")


def _grid():
    for sender in _SENDERS:
        for view in _VIEWS:
            for sequence in _SEQUENCES:
                for digest in _DIGESTS:
                    yield sender, view, sequence, digest


class TestByteEquivalence:
    def test_prepare_matches_generic_encoding(self):
        for sender, view, sequence, digest in _grid():
            message = Prepare(sender=sender, view=view, sequence=sequence, batch_digest=digest)
            assert message.payload_bytes() == codec.encode_canonical(message._payload_fields())

    def test_commit_matches_generic_encoding(self):
        for sender, view, sequence, digest in _grid():
            message = Commit(sender=sender, view=view, sequence=sequence, batch_digest=digest)
            assert message.payload_bytes() == codec.encode_canonical(message._payload_fields())

    def test_commit_signed_payload_matches_generic_encoding(self):
        for _, view, sequence, digest in _grid():
            message = Commit(sender=ReplicaId(0, 1), view=view, sequence=sequence,
                             batch_digest=digest)
            assert message.signed_payload() == codec.encode_canonical(
                _commit_vote_fields(view, sequence, digest)
            )

    def test_checkpoint_matches_generic_encoding(self):
        for sender, _, sequence, digest in _grid():
            message = Checkpoint(sender=sender, sequence=sequence, state_digest=digest)
            assert message.payload_bytes() == codec.encode_canonical(message._payload_fields())

    def test_digest_agrees_between_fast_and_generic_first_call(self):
        """Whichever of payload_bytes()/digest() runs first, bytes agree."""
        a = Prepare(sender=ReplicaId(1, 2), view=3, sequence=4, batch_digest=b"\x01" * 32)
        b = Prepare(sender=ReplicaId(1, 2), view=3, sequence=4, batch_digest=b"\x01" * 32)
        a.payload_bytes()  # fast path first
        b.digest()  # generic walk first (memoized_digest -> memoized_payload)
        assert a.digest() == b.digest()
        assert a.payload_bytes() == b.payload_bytes()


class TestRoundTripAndInjectivity:
    def test_packed_payloads_decode_to_the_field_dict(self):
        for sender, view, sequence, digest in _grid():
            message = Prepare(sender=sender, view=view, sequence=sequence, batch_digest=digest)
            assert codec.decode_canonical(message.payload_bytes()) == message._payload_fields()

    def test_distinct_votes_encode_distinctly(self):
        seen = {}
        for sender, view, sequence, digest in _grid():
            message = Commit(sender=sender, view=view, sequence=sequence, batch_digest=digest)
            key = message.payload_bytes()
            identity = (str(sender), view, sequence, digest)
            assert seen.setdefault(key, identity) == identity
        assert len(seen) == len(list(_grid()))

    def test_type_confusion_is_impossible_across_vote_types(self):
        """A Prepare and a Commit over identical fields must not collide."""
        prepare = Prepare(sender=ReplicaId(0, 1), view=1, sequence=2, batch_digest=b"d" * 32)
        commit = Commit(sender=ReplicaId(0, 1), view=1, sequence=2, batch_digest=b"d" * 32)
        assert prepare.payload_bytes() != commit.payload_bytes()

    def test_int_vs_str_fields_cannot_collide(self):
        """The packed int path must stay type-tagged: 1 != "1"."""
        packed = codec.compile_fixed_dict({"type": "T"}, ("x",))
        assert packed(1) != packed("1")
        assert packed(1) == codec.encode_canonical({"type": "T", "x": 1})
        assert packed("1") == codec.encode_canonical({"type": "T", "x": "1"})

    def test_non_fast_types_fall_back_to_the_generic_walker(self):
        packed = codec.compile_fixed_dict({"type": "T"}, ("x",))
        for value in (None, True, 1.5, (1, 2), [1], {"a": 1}, frozenset({1})):
            assert packed(value) == codec.encode_canonical({"type": "T", "x": value})

    def test_bool_is_not_collapsed_into_int(self):
        packed = codec.compile_fixed_dict({}, ("x",))
        assert packed(True) != packed(1)
        assert packed(True) == codec.encode_canonical({"x": True})

    def test_overlapping_static_and_dynamic_keys_rejected(self):
        with pytest.raises(codec.MalformedMessageError):
            codec.compile_fixed_dict({"x": 1}, ("x",))


class TestHypothesisEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(
        sender=st.text(max_size=30),
        view=st.integers(),
        sequence=st.integers(),
        digest=st.binary(max_size=80),
    )
    def test_packed_prepare_equals_generic_for_arbitrary_fields(
        self, sender, view, sequence, digest
    ):
        message = Prepare(sender=sender, view=view, sequence=sequence, batch_digest=digest)
        expected = codec.encode_canonical(message._payload_fields())
        assert message.payload_bytes() == expected
        assert codec.decode_canonical(expected) == message._payload_fields()


class TestLegacyModeBypass:
    def test_legacy_mode_still_uses_json(self):
        message = Prepare(sender=ReplicaId(0, 1), view=1, sequence=2, batch_digest=b"d" * 32)
        with codec.legacy_json_encoding():
            legacy = message.payload_bytes()
            assert legacy == codec.legacy_json_bytes(message._payload_fields())
        assert message.payload_bytes() != legacy
