"""Unit tests for the discrete-event kernel, WAN model, network, and node runtime."""

import pytest

from repro.common.messages import Checkpoint
from repro.config import GCP_REGIONS
from repro.errors import NetworkError, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.regions import LatencyModel, region_rtt_seconds, rtt_matrix


class TestSimulatorKernel:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == pytest.approx(2.0)

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("first"))
        sim.schedule(1.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == pytest.approx(2.0)

    def test_max_events_bound(self):
        sim = Simulator()
        counter = {"n": 0}

        def reschedule():
            counter["n"] += 1
            sim.schedule(0.1, reschedule)

        sim.schedule(0.1, reschedule)
        sim.run(max_events=10)
        assert counter["n"] == 10

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append("nested")))
        sim.run()
        assert fired == ["nested"]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule_at(1.5, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [pytest.approx(1.5)]

    def test_deterministic_rng_per_seed(self):
        a = Simulator(seed=7).rng.random()
        b = Simulator(seed=7).rng.random()
        c = Simulator(seed=8).rng.random()
        assert a == b
        assert a != c


class TestRegions:
    def test_rtt_is_symmetric(self):
        assert region_rtt_seconds("oregon", "tokyo") == region_rtt_seconds("tokyo", "oregon")

    def test_same_region_rtt_is_small(self):
        assert region_rtt_seconds("iowa", "iowa") < 0.005

    def test_transpacific_slower_than_intra_us(self):
        assert region_rtt_seconds("oregon", "tokyo") > region_rtt_seconds("oregon", "iowa")

    def test_all_paper_regions_have_coordinates(self):
        matrix = rtt_matrix(GCP_REGIONS)
        assert len(matrix) == len(GCP_REGIONS) ** 2
        assert all(value >= 0 for value in matrix.values())

    def test_latency_model_message_delay_includes_size(self):
        model = LatencyModel()
        small = model.message_delay("oregon", "london", 100)
        large = model.message_delay("oregon", "london", 10_000_000)
        assert large > small

    def test_one_way_delay_is_half_rtt(self):
        model = LatencyModel()
        assert model.one_way_delay("oregon", "london") == pytest.approx(
            region_rtt_seconds("oregon", "london") / 2
        )


class _Recorder(Node):
    """Test node that records everything it receives."""

    def __init__(self, address, region, network):
        super().__init__(address, region, network)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def _checkpoint(sender="a"):
    return Checkpoint(sender=sender, sequence=1, state_digest=b"\x00" * 32)


class TestNetworkAndNode:
    def _build(self):
        sim = Simulator(seed=1)
        network = Network(sim)
        a = _Recorder("a", "oregon", network)
        b = _Recorder("b", "london", network)
        return sim, network, a, b

    def test_message_delivery_with_latency(self):
        sim, network, a, b = self._build()
        a.send("b", _checkpoint())
        sim.run()
        assert len(b.received) == 1
        assert sim.now >= region_rtt_seconds("oregon", "london") / 2

    def test_duplicate_registration_rejected(self):
        sim, network, a, _ = self._build()
        with pytest.raises(NetworkError):
            Network.register(network, a)

    def test_send_to_unknown_address_rejected(self):
        sim, network, a, _ = self._build()
        with pytest.raises(NetworkError):
            network.send("a", "ghost", _checkpoint())

    def test_blocked_link_drops_messages_one_way(self):
        sim, network, a, b = self._build()
        network.conditions.block_link("a", "b")
        a.send("b", _checkpoint())
        b.send("a", _checkpoint(sender="b"))
        sim.run()
        assert b.received == []
        assert len(a.received) == 1

    def test_isolated_node_neither_sends_nor_receives(self):
        sim, network, a, b = self._build()
        network.conditions.isolate("b")
        a.send("b", _checkpoint())
        sim.run()
        assert b.received == []

    def test_full_message_loss(self):
        sim, network, a, b = self._build()
        network.conditions.drop_probability = 1.0
        for _ in range(5):
            a.send("b", _checkpoint())
        sim.run()
        assert b.received == []
        assert network.stats.dropped == 5

    def test_crashed_node_ignores_traffic_and_timers(self):
        sim, network, a, b = self._build()
        fired = []
        b.set_timer("t", 1.0, lambda: fired.append("timer"))
        b.crash()
        a.send("b", _checkpoint())
        sim.run()
        assert b.received == []
        assert fired == []

    def test_recovered_node_receives_again(self):
        sim, network, a, b = self._build()
        b.crash()
        b.recover()
        a.send("b", _checkpoint())
        sim.run()
        assert len(b.received) == 1

    def test_broadcast_excludes_self_unless_requested(self):
        sim, network, a, b = self._build()
        a.broadcast(["a", "b"], _checkpoint(), include_self=False)
        sim.run()
        assert a.received == []
        assert len(b.received) == 1
        a.broadcast(["b"], _checkpoint(), include_self=True)
        assert len(a.received) == 1  # local delivery is immediate

    def test_named_timers_replace_and_cancel(self):
        sim, network, a, _ = self._build()
        fired = []
        a.set_timer("x", 1.0, lambda: fired.append("first"))
        a.set_timer("x", 2.0, lambda: fired.append("second"))
        assert a.has_timer("x")
        sim.run()
        assert fired == ["second"]
        assert not a.has_timer("x")

    def test_cancel_timer(self):
        sim, network, a, _ = self._build()
        fired = []
        a.set_timer("x", 1.0, lambda: fired.append("x"))
        a.cancel_timer("x")
        sim.run()
        assert fired == []

    def test_message_stats_recorded_on_send(self):
        sim, network, a, b = self._build()
        a.send("b", _checkpoint())
        assert a.stats.total_messages == 1
        assert a.stats.sent_count["Checkpoint"] == 1
