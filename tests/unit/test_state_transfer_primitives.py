"""Unit tests for the storage primitives added for state transfer."""

import pytest

from repro.errors import LedgerError
from repro.storage.executor import ExecutionEngine
from repro.storage.kvstore import KeyValueStore
from repro.storage.ledger import Ledger
from repro.storage.locks import LockManager
from repro.txn.transaction import TransactionBuilder


def _txn(txn_id, key="user1"):
    return TransactionBuilder(txn_id, "c").read_modify_write(0, key, f"{txn_id}-v").build()


class TestStoreReplace:
    def test_replace_swaps_full_contents(self):
        store = KeyValueStore(shard_id=0)
        store.load({"user1": "old", "user2": "old"})
        store.write("user1", "modified")
        store.replace({"user1": "adopted", "user9": "new"})
        assert store.read("user1") == "adopted"
        assert store.read("user9") == "new"
        assert "user2" not in store

    def test_replace_resets_versions(self):
        store = KeyValueStore(shard_id=0)
        store.load({"user1": "old"})
        store.write("user1", "v2")
        store.replace({"user1": "adopted"})
        assert store.version("user1") == 0


class TestExecutorAdoption:
    def test_mark_executed_prevents_reexecution(self):
        store = KeyValueStore(shard_id=0)
        store.load({"user1": "adopted-value"})
        engine = ExecutionEngine(0, store)
        engine.mark_executed(["t-old"])
        assert engine.already_executed("t-old")
        # Re-executing the adopted transaction keeps the adopted state.
        result = engine.execute_fragment(_txn("t-old"))
        assert result.writes == {}
        assert store.read("user1") == "adopted-value"

    def test_executed_txn_ids_lists_both_adopted_and_executed(self):
        store = KeyValueStore(shard_id=0)
        store.load({"user1": "x"})
        engine = ExecutionEngine(0, store)
        engine.execute_fragment(_txn("t-real"))
        engine.mark_executed(["t-adopted"])
        assert set(engine.executed_txn_ids()) == {"t-real", "t-adopted"}

    def test_mark_executed_does_not_override_real_results(self):
        store = KeyValueStore(shard_id=0)
        store.load({"user1": "x"})
        engine = ExecutionEngine(0, store)
        engine.execute_fragment(_txn("t1"))
        engine.mark_executed(["t1"])
        assert engine.result_for("t1").writes  # the real result survives


class TestLedgerAdoption:
    def _chain(self, length):
        ledger = Ledger(shard_id=0)
        for i in range(length):
            ledger.append_batch(i + 1, "p", [_txn(f"t{i}")])
        return ledger

    def test_adopt_missing_suffix(self):
        ahead = self._chain(5)
        behind = self._chain(2)
        adopted = behind.adopt_blocks(ahead.blocks()[1:])
        assert adopted == 3
        assert behind.height == 5
        assert behind.verify_chain()
        assert behind.head.block_hash() == ahead.head.block_hash()

    def test_adopt_is_idempotent_on_shared_prefix(self):
        ahead = self._chain(3)
        same = self._chain(3)
        assert same.adopt_blocks(ahead.blocks()[1:]) == 0

    def test_conflicting_prefix_is_rejected(self):
        ahead = self._chain(3)
        conflicting = Ledger(shard_id=0)
        conflicting.append_batch(1, "p", [_txn("different")])
        with pytest.raises(LedgerError):
            conflicting.adopt_blocks(ahead.blocks()[1:])


class TestLockFastForward:
    def test_fast_forward_advances_k_max_and_drops_stale_pending(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(3, "t3", frozenset({"c"}))  # waits: sequence gap
        unblocked = locks.fast_forward(5)
        assert locks.k_max == 5
        assert unblocked == []
        assert locks.pending_sequences == ()

    def test_fast_forward_unblocks_later_transactions(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(6, "t6", frozenset({"a"}))
        unblocked = locks.fast_forward(5)
        assert unblocked == ["t6"]
        assert locks.k_max == 6

    def test_fast_forward_backwards_is_a_noop(self):
        locks = LockManager(shard_id=0)
        locks.try_lock(1, "t1", frozenset({"a"}))
        assert locks.fast_forward(0) == []
        assert locks.k_max == 1
