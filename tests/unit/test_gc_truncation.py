"""Unit tests for checkpoint-driven garbage collection primitives.

Covers the three layers the GC watermark flows through: the consensus log
(`truncate_below`), the checkpoint store (voted digests, bounded stable
history), and the cross-shard record lifecycle (`settled`).
"""

from repro.common.crypto import sha256
from repro.common.messages import PrePrepare
from repro.common.types import ReplicaId
from repro.consensus.pbft.log import ConsensusLog, MessageLog
from repro.core.records import CrossShardRecord
from repro.storage.checkpoint import CheckpointStore


def _pre_prepare(view: int, sequence: int, digest: bytes) -> PrePrepare:
    return PrePrepare(
        sender=ReplicaId(shard=0, index=0),
        view=view,
        sequence=sequence,
        batch_digest=digest,
        requests=(),
    )


class TestConsensusLogTruncation:
    def test_alias_matches_paper_terminology(self):
        assert MessageLog is ConsensusLog

    def test_truncate_drops_slots_at_or_below_watermark(self):
        log = ConsensusLog()
        for seq in range(1, 7):
            log.slot(0, seq).record_pre_prepare(_pre_prepare(0, seq, sha256(f"b{seq}".encode())))
            log.accept(0, seq, sha256(f"b{seq}".encode()))
        released = log.truncate_below(4)
        assert log.slot_count == 2
        assert log.highest_sequence() == 6
        assert released == {sha256(f"b{seq}".encode()) for seq in range(1, 5)}

    def test_truncate_prunes_accepted_digests(self):
        log = ConsensusLog()
        log.accept(0, 3, b"d3")
        log.accept(0, 5, b"d5")
        log.truncate_below(3)
        assert not log.has_accepted(0, 3)
        assert log.has_accepted(0, 5)

    def test_digest_shared_with_retained_slot_is_not_released(self):
        """A batch re-proposed above the watermark keeps its payload alive."""
        log = ConsensusLog()
        shared = sha256(b"shared")
        log.slot(0, 2).record_pre_prepare(_pre_prepare(0, 2, shared))
        log.slot(1, 6).record_pre_prepare(_pre_prepare(1, 6, shared))
        released = log.truncate_below(4)
        assert released == set()
        assert log.slot_count == 1

    def test_truncation_preserves_prepared_evidence_above_watermark(self):
        log = ConsensusLog()
        digest = sha256(b"high")
        log.slot(0, 9).record_pre_prepare(_pre_prepare(0, 9, digest))
        log.truncate_below(4)
        assert log.pre_prepare_for(0, 9) is not None

    def test_highest_sequence_survives_truncation(self):
        """Regression: an emptied log must not let a new primary reuse sequences.

        After a view change the new primary seeds ``next_sequence`` from
        ``highest_sequence()``; if truncation reset it to zero, fresh batches
        would collide with executed sequence numbers.
        """
        log = ConsensusLog()
        for seq in range(1, 9):
            log.slot(0, seq).record_pre_prepare(_pre_prepare(0, seq, sha256(f"b{seq}".encode())))
        log.truncate_below(8)
        assert log.slot_count == 0
        assert log.highest_sequence() == 8

    def test_truncating_empty_log_is_a_noop(self):
        log = ConsensusLog()
        assert log.truncate_below(100) == set()
        assert log.slot_count == 0


class TestCheckpointDigest:
    def test_voted_digest_is_stamped_into_stable_record(self):
        checkpoints = CheckpointStore(interval=2)
        digest = sha256(b"real-state")
        for replica in ("r0", "r1", "r2"):
            checkpoints.add_vote(2, replica, quorum=3, state_digest=digest)
        record = checkpoints.stable_record(2)
        assert record is not None
        assert record.state_digest == digest
        assert record.state_digest != sha256(b"stable-2")

    def test_plurality_digest_wins_over_forged_minority(self):
        """A lone Byzantine digest cannot displace the digest most replicas voted for."""
        checkpoints = CheckpointStore(interval=2)
        good, forged = sha256(b"good"), sha256(b"forged")
        assert not checkpoints.add_vote(2, "r0", quorum=3, state_digest=good)
        assert not checkpoints.add_vote(2, "byz", quorum=3, state_digest=forged)
        assert checkpoints.add_vote(2, "r1", quorum=3, state_digest=good)
        assert checkpoints.stable_record(2).state_digest == good

    def test_divergent_correct_digests_still_stabilise(self):
        """Out-of-band cross-shard execution can split correct digests 2-2;
        stability must count voters per sequence, not per digest, or GC stalls."""
        checkpoints = CheckpointStore(interval=2)
        a, b = sha256(b"state-a"), sha256(b"state-b")
        assert not checkpoints.add_vote(2, "r0", quorum=3, state_digest=a)
        assert not checkpoints.add_vote(2, "r1", quorum=3, state_digest=a)
        assert checkpoints.add_vote(2, "r2", quorum=3, state_digest=b)
        assert checkpoints.last_stable_sequence == 2
        assert checkpoints.stable_record(2).state_digest == a

    def test_unbacked_digest_falls_back_to_placeholder(self):
        """A 1-1-1 digest split must not stamp the tie-break winner (possibly
        Byzantine-chosen) once a digest quorum of f+1 is demanded."""
        checkpoints = CheckpointStore(interval=2)
        a, b = sha256(b"state-a"), sha256(b"forged")
        assert not checkpoints.add_vote(2, "r0", quorum=3, state_digest=a, digest_quorum=2)
        assert not checkpoints.add_vote(2, "byz", quorum=3, state_digest=b, digest_quorum=2)
        assert checkpoints.add_vote(2, "r1", quorum=3, state_digest=None, digest_quorum=2)
        assert checkpoints.stable_record(2).state_digest == sha256(b"stable-2")

    def test_duplicate_voter_counts_once_across_digests(self):
        checkpoints = CheckpointStore(interval=2)
        a, b = sha256(b"state-a"), sha256(b"state-b")
        assert not checkpoints.add_vote(2, "r0", quorum=2, state_digest=a)
        assert not checkpoints.add_vote(2, "r0", quorum=2, state_digest=b)

    def test_legacy_votes_without_digest_fall_back_to_placeholder(self):
        checkpoints = CheckpointStore(interval=2)
        for replica in ("r0", "r1"):
            checkpoints.add_vote(2, replica, quorum=2)
        assert checkpoints.stable_record(2).state_digest == sha256(b"stable-2")


class TestBoundedStableHistory:
    def test_keeps_only_latest_k_stable_records(self):
        checkpoints = CheckpointStore(interval=2, keep_stable=2)
        for sequence in (2, 4, 6, 8):
            for replica in ("r0", "r1", "r2"):
                checkpoints.add_vote(sequence, replica, quorum=3)
        assert checkpoints.stable_record_count == 2
        assert checkpoints.stable_record(2) is None
        assert checkpoints.stable_record(4) is None
        assert checkpoints.stable_record(6) is not None
        assert checkpoints.stable_record(8) is not None
        assert checkpoints.last_stable_sequence == 8

    def test_vote_log_is_pruned_at_stability(self):
        checkpoints = CheckpointStore(interval=2)
        checkpoints.add_vote(2, "r0", quorum=3)
        for replica in ("r0", "r1", "r2"):
            checkpoints.add_vote(4, replica, quorum=3)
        assert checkpoints.pending_vote_count == 0


class TestCrossShardRecordSettlement:
    def _record(self, **overrides) -> CrossShardRecord:
        record = CrossShardRecord(batch_digest=b"d", involved_shards=frozenset({0, 1}))
        for name, value in overrides.items():
            setattr(record, name, value)
        return record

    def test_unexecuted_record_is_never_settled(self):
        record = self._record(sequence=5, locked=True)
        assert not record.settled(True)
        assert not record.settled(False)

    def test_record_without_sequence_is_never_settled(self):
        record = self._record(executed=True, replied=True, execute_sent=True)
        assert not record.settled(True)

    def test_initiator_needs_the_client_reply(self):
        record = self._record(sequence=5, executed=True, execute_sent=True)
        assert not record.settled(True)
        record.replied = True
        assert record.settled(True)

    def test_non_initiator_settles_once_execute_rotation_continues(self):
        record = self._record(sequence=5, executed=True)
        assert not record.settled(False)
        record.execute_sent = True
        assert record.settled(False)
