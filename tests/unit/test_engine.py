"""Unit tests: engine protocols, kernel lazy deletion, crypto memo caches,
and the unroutable-request accounting."""

import pytest

from repro.common.crypto import KeyStore, Signature, SignatureScheme, verify_certificate
from repro.engine.backends import RealTimeBackend, SimBackend
from repro.engine.protocols import Clock, Scheduler, Transport
from repro.errors import CryptoError
from repro.sim.kernel import Simulator


class TestStructuralProtocols:
    def test_sim_backend_satisfies_protocols(self):
        backend = SimBackend(seed=1)
        assert isinstance(backend.scheduler, Clock)
        assert isinstance(backend.scheduler, Scheduler)
        assert isinstance(backend.transport, Transport)

    def test_realtime_backend_satisfies_protocols(self):
        backend = RealTimeBackend(seed=1, time_scale=0.01)
        try:
            assert isinstance(backend.scheduler, Clock)
            assert isinstance(backend.scheduler, Scheduler)
            assert isinstance(backend.transport, Transport)
        finally:
            backend.close()


class TestKernelLazyDeletion:
    def test_pending_events_tracks_schedule_and_fire(self):
        sim = Simulator(seed=1)
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        sim.step()
        assert sim.pending_events == 4
        assert handles[0].fire_time == 1.0

    def test_cancel_decrements_immediately_without_popping(self):
        sim = Simulator(seed=1)
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        handles[2].cancel()
        assert sim.pending_events == 3
        # Cancelling twice is harmless and does not double-count.
        handles[2].cancel()
        assert sim.pending_events == 3

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator(seed=1)
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        first.cancel()  # already fired: must be a no-op
        assert sim.pending_events == 1
        sim.step()
        assert sim.pending_events == 0

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator(seed=1)
        fired = []
        keep = sim.schedule(1.0, lambda: fired.append("keep"))
        drop = sim.schedule(0.5, lambda: fired.append("drop"))
        drop.cancel()
        sim.run()
        assert fired == ["keep"]
        assert keep.fire_time == 1.0
        assert sim.pending_events == 0

    def test_pending_events_is_constant_time(self):
        # A heap full of cancelled stragglers must not slow the counter; the
        # old implementation scanned the whole queue on every call.
        sim = Simulator(seed=1)
        handles = [sim.schedule(10.0 + i * 1e-3, lambda: None) for i in range(10_000)]
        for handle in handles[:9_999]:
            handle.cancel()
        assert sim.pending_events == 1


class TestVerificationCaches:
    def test_cached_verify_matches_uncached(self):
        cached = KeyStore()
        cold = KeyStore(verify_cache_size=0)
        for keystore in (cached, cold):
            scheme = SignatureScheme(keystore)
            sig = scheme.sign("replica-1", b"payload")
            assert scheme.verify(sig, b"payload")
            assert not scheme.verify(sig, b"other-payload")
            forged = Signature(signer="replica-2", value=sig.value)
            assert not scheme.verify(forged, b"payload")

    def test_repeated_verify_hits_the_cache(self):
        keystore = KeyStore()
        scheme = SignatureScheme(keystore)
        sig = scheme.sign("replica-1", b"payload")
        for _ in range(5):
            assert scheme.verify(sig, b"payload")
        stats = keystore.cache_stats()["verify"]
        assert stats["misses"] == 1
        assert stats["hits"] == 4

    def test_certificate_cache_memoises_whole_certificates(self):
        keystore = KeyStore()
        scheme = SignatureScheme(keystore)
        payload = b"commit|0|7"
        signatures = [scheme.sign(f"replica-{i}", payload) for i in range(4)]
        for _ in range(3):
            assert verify_certificate(scheme, payload, signatures, required=3)
        stats = keystore.cache_stats()["certificate"]
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        # Signature order must not matter for the memo key.
        assert verify_certificate(scheme, payload, list(reversed(signatures)), 3)
        assert keystore.cache_stats()["certificate"]["hits"] == 3

    def test_certificate_below_quorum_rejected_cached_and_not(self):
        for keystore in (KeyStore(), KeyStore(verify_cache_size=0)):
            scheme = SignatureScheme(keystore)
            payload = b"commit|1|9"
            signatures = [scheme.sign(f"replica-{i}", payload) for i in range(2)]
            assert not verify_certificate(scheme, payload, signatures, required=3)
            assert not verify_certificate(scheme, payload, signatures, required=3)

    def test_lru_eviction_bounds_memory(self):
        keystore = KeyStore(verify_cache_size=4)
        scheme = SignatureScheme(keystore)
        for i in range(10):
            sig = scheme.sign("replica-1", b"m%d" % i)
            assert scheme.verify(sig, b"m%d" % i)
        assert len(keystore.verify_cache) <= 4

    def test_zero_size_cache_disables_memoisation(self):
        keystore = KeyStore(verify_cache_size=0)
        assert keystore.verify_cache is None
        assert keystore.certificate_cache is None
        assert keystore.cache_stats() == {"verify": {}, "certificate": {}}

    def test_lru_cache_rejects_nonpositive_size(self):
        from repro.common.crypto import LruCache

        with pytest.raises(CryptoError):
            LruCache(0)


class TestUnroutableRequestAccounting:
    def _deployment(self):
        from repro.config import SystemConfig, WorkloadConfig
        from repro.engine import Deployment

        config = SystemConfig.uniform(
            2, 4, workload=WorkloadConfig(num_records=100, batch_size=1, num_clients=1)
        )
        return Deployment.build(config, backend="sim", num_clients=1, batch_size=1)

    def test_request_naming_unknown_shard_is_counted_not_swallowed(self):
        from repro.common.crypto import SignatureScheme
        from repro.common.messages import ClientRequest
        from repro.txn.transaction import TransactionBuilder

        deployment = self._deployment()
        txn = (
            TransactionBuilder("ghost", "client-0")
            .read_modify_write(0, "user1", "v")
            .read_modify_write(99, "nowhere", "v")  # shard 99 is not in the ring
            .build()
        )
        # The client itself refuses to route such a transaction, so deliver
        # the (properly signed) request straight to a primary, as a buggy or
        # malicious client would.
        scheme = SignatureScheme(deployment.keystore)
        unsigned = ClientRequest(sender="client-0", transaction=txn)
        request = ClientRequest(
            sender="client-0",
            transaction=txn,
            signature=scheme.sign("client-0", unsigned.payload_bytes()),
        )
        primary = deployment.primary_of(0)
        primary.deliver(request)
        deployment.run(duration=5.0)
        drops = deployment.dropped_request_counts()
        assert drops.get("unroutable", 0) >= 1
        assert primary.stats.total_dropped_requests >= 1
        # The malformed transaction never got ordered anywhere.
        assert deployment.completed_transactions() == 0

    def test_well_routed_requests_record_no_drops(self):
        from repro.txn.transaction import TransactionBuilder

        deployment = self._deployment()
        txn = (
            TransactionBuilder("fine", "client-0")
            .read_modify_write(0, "user1", "v")
            .build()
        )
        deployment.submit(txn)
        assert deployment.run_until_clients_done(timeout=30.0)
        assert deployment.dropped_request_counts() == {}

    def test_merged_stats_preserve_drop_reasons(self):
        from repro.common.messages import MessageStats

        a = MessageStats()
        a.record_dropped_request("unroutable")
        b = MessageStats()
        b.record_dropped_request("unroutable")
        b.record_dropped_request("other")
        merged = a.merged_with(b)
        assert merged.dropped_requests == {"unroutable": 2, "other": 1}
        assert merged.total_dropped_requests == 3
