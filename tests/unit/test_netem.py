"""Unit tests for the unified link-emulation subsystem (repro.netem)."""

import pytest

from repro.config import GCP_REGIONS
from repro.errors import ConfigurationError
from repro.netem import (
    GEO_PROFILES,
    DelayMatrix,
    LatencyModel,
    LinkEmulator,
    NetemPolicy,
    NetworkConditions,
    netem_policy_for,
    profile_by_name,
    region_rtt_seconds,
    regions_for,
)


class TestGeoProfiles:
    def test_builtin_profiles_cover_the_paper_scale(self):
        assert profile_by_name("wan15").regions[0] == "oregon"
        assert len(profile_by_name("wan15").regions) == 15
        assert profile_by_name("local").regions == ("local",)

    def test_unknown_profile_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="wan3"):
            profile_by_name("marsnet")

    def test_shards_wrap_around_the_region_list(self):
        """Shard-to-region assignment is SystemConfig.uniform's: regions
        repeat modulo the profile length when there are more shards."""
        from repro.config import SystemConfig

        config = SystemConfig.uniform(4, 4, regions=profile_by_name("wan3").regions)
        assert config.shards[3].region == config.shards[0].region
        assert config.shards[1].region != config.shards[0].region

    def test_rtt_table_is_complete_and_symmetric(self):
        table = profile_by_name("wan3").rtt_table()
        regions = GEO_PROFILES["wan3"].regions
        assert len(table) == len(regions) ** 2
        for a in regions:
            for b in regions:
                assert table[(a, b)] == table[(b, a)]

    def test_geo_flag_resolution_is_shared(self):
        """demo/serve/deploy-local all resolve --geo through these two."""
        assert regions_for(None) == GCP_REGIONS
        assert regions_for("wan3") == GEO_PROFILES["wan3"].regions
        assert netem_policy_for(None) is None
        assert netem_policy_for("wan5").profile == "wan5"

    def test_backends_reject_latency_alongside_netem(self):
        from repro.engine import backend_by_name

        with pytest.raises(ConfigurationError, match="not both"):
            backend_by_name("sim", latency=LatencyModel(), netem=NetemPolicy())


class TestNetemPolicy:
    def test_spec_derives_from_region_rtt(self):
        policy = NetemPolicy()
        spec = policy.spec_for("oregon", "london")
        assert spec.delay_s == pytest.approx(region_rtt_seconds("oregon", "london") / 2)
        assert spec.bandwidth_bps == policy.latency.wan_bandwidth_bps

    def test_same_region_uses_lan_bandwidth(self):
        policy = NetemPolicy()
        spec = policy.spec_for("oregon", "oregon")
        assert spec.bandwidth_bps == policy.latency.lan_bandwidth_bps

    def test_matrix_overrides_are_directional(self):
        matrix = DelayMatrix().set("a", "b", 0.080).set("b", "a", 0.020)
        policy = NetemPolicy(matrix=matrix)
        assert policy.spec_for("a", "b").delay_s == pytest.approx(0.080)
        assert policy.spec_for("b", "a").delay_s == pytest.approx(0.020)

    def test_symmetric_matrix_halves_the_rtt(self):
        matrix = DelayMatrix.symmetric({("a", "b"): 0.100})
        assert matrix.get("a", "b") == pytest.approx(0.050)
        assert matrix.get("b", "a") == pytest.approx(0.050)

    def test_spec_delay_matches_legacy_latency_model_formula(self):
        """The unified model must reproduce the pre-netem delay math exactly."""
        model = LatencyModel()
        policy = NetemPolicy(latency=model)
        for a, b, size in (("oregon", "london", 512), ("iowa", "iowa", 5408)):
            assert policy.spec_for(a, b).base_delay(size) == pytest.approx(
                model.message_delay(a, b, size)
            )

    def test_for_profile_validates_the_name(self):
        assert NetemPolicy.for_profile("wan5").profile == "wan5"
        with pytest.raises(ConfigurationError):
            NetemPolicy.for_profile("nope")


def _emulator(seed=7, policy=NetemPolicy(), conditions=None):
    emulator = LinkEmulator(policy, conditions, seed=seed)
    emulator.assign_regions({"a": "oregon", "b": "london", "c": "iowa"})
    return emulator


class TestLinkEmulatorDeterminism:
    def test_same_seed_same_decisions(self):
        runs = []
        for _ in range(2):
            emulator = _emulator(seed=7)
            runs.append([emulator.decide("a", "b", 512) for _ in range(50)])
        assert runs[0] == runs[1]

    def test_different_seed_different_delays(self):
        a = [_emulator(seed=1).decide("a", "b", 512) for _ in range(5)]
        b = [_emulator(seed=2).decide("a", "b", 512) for _ in range(5)]
        assert a != b

    def test_per_link_streams_are_independent_of_interleaving(self):
        """A link's decisions depend only on traffic *on that link* -- the
        property that makes one seed reproducible across a process fleet."""
        sequential = _emulator(seed=9)
        seq_ab = [sequential.decide("a", "b", 512) for _ in range(10)]
        seq_ac = [sequential.decide("a", "c", 512) for _ in range(10)]

        interleaved = _emulator(seed=9)
        int_ab, int_ac = [], []
        for _ in range(10):
            int_ac.append(interleaved.decide("a", "c", 512))
            int_ab.append(interleaved.decide("a", "b", 512))
        assert seq_ab == int_ab
        assert seq_ac == int_ac

    def test_direction_streams_differ(self):
        emulator = _emulator(seed=3)
        forward = [emulator.decide("a", "b", 512)[1] for _ in range(5)]
        reverse = [emulator.decide("b", "a", 512)[1] for _ in range(5)]
        assert forward != reverse

    def test_delay_is_base_plus_bounded_jitter(self):
        emulator = _emulator()
        spec = emulator.link_spec("a", "b")
        base = spec.base_delay(512)
        for _ in range(100):
            _, delay = emulator.decide("a", "b", 512)
            assert base <= delay <= base * (1 + spec.jitter_fraction)

    def test_emulated_loss_drops_and_counts(self):
        emulator = _emulator(policy=NetemPolicy(loss=1.0))
        deliver, delay = emulator.decide("a", "b", 512)
        assert not deliver and delay == 0.0
        assert emulator.stats.lost == 1

    def test_fault_conditions_win_over_the_policy(self):
        conditions = NetworkConditions()
        conditions.block_link("a", "b")
        emulator = _emulator(conditions=conditions)
        assert emulator.decide("a", "b", 512) == (False, 0.0)
        assert emulator.stats.faulted == 1
        assert emulator.decide("a", "c", 512)[0]

    def test_no_policy_means_faults_only_and_zero_delay(self):
        emulator = LinkEmulator(None, seed=1)
        assert emulator.decide("x", "y", 10_000) == (True, 0.0)
        emulator.conditions.isolate("y")
        assert emulator.decide("x", "y", 10_000) == (False, 0.0)

    def test_region_reassignment_refreshes_link_specs(self):
        emulator = _emulator()
        far = emulator.expected_one_way_delay("a", "b", 0)
        emulator.assign_region("b", "oregon")
        near = emulator.expected_one_way_delay("a", "b", 0)
        assert near < far

    def test_assignment_mid_traffic_does_not_rewind_link_streams(self):
        """Assigning a new address after traffic has flowed must not reset
        existing links' RNG positions (no replayed delay/loss decisions)."""
        live = _emulator(seed=11)
        first = [live.decide("a", "b", 512) for _ in range(5)]
        live.assign_region("latecomer", "iowa")
        second = [live.decide("a", "b", 512) for _ in range(5)]

        undisturbed = _emulator(seed=11)
        expected = [undisturbed.decide("a", "b", 512) for _ in range(10)]
        assert first + second == expected

    def test_unassigned_addresses_default_to_local(self):
        emulator = LinkEmulator(NetemPolicy(), seed=1)
        assert emulator.region_of("ghost") == "local"
        assert emulator.expected_one_way_delay("ghost", "ghost2", 0) == pytest.approx(
            region_rtt_seconds("local", "local") / 2
        )

    def test_describe_reports_policy_and_links(self):
        emulator = _emulator()
        emulator.decide("a", "b", 512)
        summary = emulator.describe()
        assert summary["emulated"] is True
        assert summary["regions"]["a"] == "oregon"
        assert "a->b" in summary["links"]
