"""Unit tests for the YCSB workload generator."""

import random

import pytest

from repro.config import WorkloadConfig
from repro.errors import WorkloadError
from repro.storage.kvstore import ShardedKeyValueStore
from repro.txn.ring import RingTopology
from repro.workloads.ycsb import YcsbWorkloadGenerator, ZipfianGenerator


def _generator(num_shards=4, **overrides):
    config = WorkloadConfig(
        num_records=4_000,
        cross_shard_fraction=overrides.pop("cross_shard_fraction", 0.3),
        **overrides,
    )
    table = ShardedKeyValueStore(tuple(range(num_shards)), config.num_records)
    ring = RingTopology.ascending(range(num_shards))
    return YcsbWorkloadGenerator(table, ring, config, seed=42), table


class TestZipfian:
    def test_uniform_when_theta_zero(self):
        gen = ZipfianGenerator(100, 0.0, random.Random(1))
        draws = {gen.next() for _ in range(2000)}
        assert len(draws) > 80  # close to full coverage

    def test_skewed_distribution_prefers_low_ranks(self):
        gen = ZipfianGenerator(1000, 0.9, random.Random(1))
        draws = [gen.next() for _ in range(5000)]
        head = sum(1 for d in draws if d < 10)
        assert head > len(draws) * 0.2

    def test_values_stay_in_range(self):
        gen = ZipfianGenerator(50, 0.7, random.Random(3))
        assert all(0 <= gen.next() < 50 for _ in range(2000))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0, 0.5, random.Random(1))
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, 1.2, random.Random(1))

    @pytest.mark.parametrize("theta", [0.1, 0.3, 0.5, 0.7, 0.9, 0.99])
    def test_never_returns_out_of_range_index(self, theta):
        """Regression: for u near 1.0 the YCSB formula rounded up to exactly n."""
        for n in (2, 3, 10, 100):
            gen = ZipfianGenerator(n, theta, random.Random(11))
            for _ in range(20_000):
                assert 0 <= gen.next() < n

    def test_u_near_one_is_clamped(self):
        """Drive the formula directly with u -> 1.0, where it used to return n."""

        class _AlmostOne(random.Random):
            def random(self):
                return 1.0 - 1e-12

        for theta in (0.2, 0.5, 0.8, 0.99):
            gen = ZipfianGenerator(10, theta, _AlmostOne())
            assert gen.next() == 9


class TestSingleShardTransactions:
    def test_targets_requested_shard(self):
        generator, _ = _generator()
        txn = generator.single_shard_transaction("client-0", shard=2)
        assert txn.involved_shards == frozenset({2})

    def test_keys_belong_to_the_owning_shard(self):
        generator, table = _generator()
        for _ in range(50):
            txn = generator.single_shard_transaction("client-0")
            shard = next(iter(txn.involved_shards))
            for key in txn.keys_for(shard):
                assert table.owner_of_key(key) == shard

    def test_read_modify_write_shape(self):
        generator, _ = _generator()
        txn = generator.single_shard_transaction("client-0", shard=1)
        assert len(txn.operations) == 2
        assert txn.read_keys_for(1) == txn.write_keys_for(1)

    def test_txn_ids_are_unique(self):
        generator, _ = _generator()
        ids = {generator.single_shard_transaction("client-0").txn_id for _ in range(100)}
        assert len(ids) == 100


class TestCrossShardTransactions:
    def test_default_touches_all_shards(self):
        generator, _ = _generator(num_shards=5, involved_shards=0)
        txn = generator.cross_shard_transaction("client-0")
        assert txn.involved_shards == frozenset(range(5))

    def test_involved_count_respected_and_consecutive(self):
        generator, _ = _generator(num_shards=6, involved_shards=3)
        ring_order = list(range(6))
        for _ in range(30):
            txn = generator.cross_shard_transaction("client-0")
            involved = sorted(txn.involved_shards)
            assert len(involved) == 3
            # consecutive on the ring (allowing wrap-around)
            positions = sorted(ring_order.index(s) for s in involved)
            spans = (positions[-1] - positions[0] == len(positions) - 1) or (
                positions[0] == 0 and positions[-1] == len(ring_order) - 1
            )
            assert spans

    def test_one_key_per_involved_shard(self):
        generator, _ = _generator(num_shards=4)
        txn = generator.cross_shard_transaction("client-0")
        for shard in txn.involved_shards:
            assert len(txn.keys_for(shard)) == 1

    def test_remote_reads_create_complex_transactions(self):
        generator, _ = _generator(num_shards=4, remote_reads=8)
        txn = generator.cross_shard_transaction("client-0")
        assert txn.is_complex
        assert txn.remote_read_count > 0
        # Dependencies reference keys of *other* involved shards.
        for op in txn.operations:
            for dep_shard, _ in op.depends_on:
                assert dep_shard in txn.involved_shards
                assert dep_shard != op.shard

    def test_zero_remote_reads_stay_simple(self):
        generator, _ = _generator(num_shards=4, remote_reads=0)
        assert generator.cross_shard_transaction("client-0").is_simple

    def test_explicit_involved_list_is_used(self):
        generator, _ = _generator(num_shards=6)
        txn = generator.cross_shard_transaction("client-0", involved=[1, 4])
        assert txn.involved_shards == frozenset({1, 4})


class TestGenerateMix:
    def test_cross_shard_fraction_is_respected(self):
        generator, _ = _generator(cross_shard_fraction=0.3)
        txns = generator.generate(600)
        observed = sum(1 for t in txns if t.is_cross_shard) / len(txns)
        assert 0.2 <= observed <= 0.4
        assert generator.last_mix.cross_shard_fraction == pytest.approx(observed)

    def test_zero_fraction_generates_only_single_shard(self):
        generator, _ = _generator(cross_shard_fraction=0.0)
        assert all(not t.is_cross_shard for t in generator.generate(100))

    def test_full_fraction_generates_only_cross_shard(self):
        generator, _ = _generator(cross_shard_fraction=1.0)
        assert all(t.is_cross_shard for t in generator.generate(100))

    def test_single_shard_ring_never_generates_cross_shard(self):
        generator, _ = _generator(num_shards=1, cross_shard_fraction=0.9)
        assert all(not t.is_cross_shard for t in generator.generate(50))

    def test_same_seed_reproduces_workload(self):
        first, _ = _generator()
        second, _ = _generator()
        ids_a = [t.digest() for t in first.generate(50)]
        ids_b = [t.digest() for t in second.generate(50)]
        assert ids_a == ids_b
