"""Unit tests for the multicast fan-out fast path and broadcast authentication."""

from repro.common.crypto import KeyStore, MacAuthenticator
from repro.common.messages import Checkpoint, MessageStats, Prepare
from repro.common.types import ReplicaId
from repro.config import SystemConfig, WorkloadConfig
from repro.engine import Deployment
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.txn.transaction import TransactionBuilder


class _Recorder(Node):
    def __init__(self, address, network):
        super().__init__(address, "local", network)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def _fabric(n=4):
    sim = Simulator(seed=5)
    network = Network(sim)
    nodes = [_Recorder(f"n{i}", network) for i in range(n)]
    return sim, network, nodes


class TestMulticastFastPath:
    def test_multicast_delivers_one_shared_payload_to_every_destination(self):
        sim, network, nodes = _fabric()
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)
        network.multicast("n0", ["n1", "n2", "n3"], message)
        sim.run()
        for node in nodes[1:]:
            assert node.received == [message]
            assert node.received[0] is message  # shared object, not a copy
        assert network.stats.multicasts == 1
        assert network.stats.delivered == 3
        assert network.stats.bytes_delivered == 3 * message.wire_size()

    def test_multicast_draws_rng_identically_to_a_send_loop(self):
        """The fast path must not perturb the deterministic event stream."""
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)

        sim_a, network_a, _ = _fabric()
        network_a.multicast("n0", ["n1", "n2", "n3"], message)
        sim_b, network_b, _ = _fabric()
        for dst in ("n1", "n2", "n3"):
            network_b.send("n0", dst, message)
        assert sim_a.rng.random() == sim_b.rng.random()

    def test_multicast_respects_fault_conditions_per_destination(self):
        sim, network, nodes = _fabric()
        network.conditions.block_link("n0", "n2")
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)
        network.multicast("n0", ["n1", "n2", "n3"], message)
        sim.run()
        assert nodes[2].received == []
        assert nodes[1].received == [message] and nodes[3].received == [message]
        assert network.stats.dropped == 1

    def test_empty_multicast_is_a_no_op(self):
        _, network, _ = _fabric()
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)
        network.multicast("n0", [], message)
        assert network.stats.multicasts == 0

    def test_record_fanout_matches_repeated_record(self):
        message = Prepare(sender=ReplicaId(0, 0), view=0, sequence=1, batch_digest=b"\x00" * 32)
        fanout, repeated = MessageStats(), MessageStats()
        fanout.record_fanout(message, 3)
        for _ in range(3):
            repeated.record(message)
        assert fanout.sent_count == repeated.sent_count
        assert fanout.sent_bytes == repeated.sent_bytes
        fanout.record_fanout(message, 0)
        assert fanout.total_messages == 3

    def test_broadcast_excludes_self_and_records_fanout_once(self):
        sim, network, nodes = _fabric()
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)
        nodes[0].broadcast(["n0", "n1", "n2", "n3"], message)
        sim.run()
        assert nodes[0].received == []
        assert nodes[0].stats.sent_count["Checkpoint"] == 3
        assert network.stats.multicasts == 1


class TestMacVector:
    def test_tag_vector_matches_per_peer_tags(self):
        keystore = KeyStore()
        alice = MacAuthenticator(owner="r0@S0", keystore=keystore)
        peers = [f"r{i}@S0" for i in range(1, 4)]
        vector = alice.tag_vector(peers, b"payload")
        assert set(vector) == set(peers)
        for peer, tag in vector.items():
            assert tag == alice.tag(peer, b"payload")

    def test_pairwise_tag_rejects_tampering(self):
        keystore = KeyStore()
        alice = MacAuthenticator(owner="r0@S0", keystore=keystore)
        bob = MacAuthenticator(owner="r1@S0", keystore=keystore)
        tag = alice.tag("r1@S0", b"payload")
        assert bob.verify("r0@S0", b"payload", tag)
        assert not bob.verify("r0@S0", b"payload!", tag)

    def test_peer_cannot_forge_anothers_tag(self):
        """The PBFT authenticator property a shared audience key would lose:
        a Byzantine shard member must not be able to mint a tag that verifies
        as coming from the primary."""
        keystore = KeyStore()
        byzantine = MacAuthenticator(owner="r2@S0", keystore=keystore)
        honest = MacAuthenticator(owner="r1@S0", keystore=keystore)
        forged = byzantine.tag("r1@S0", b"fake pre-prepare")
        # r1 verifies the tag as if it came from the primary r0 -- it must fail.
        assert not honest.verify("r0@S0", b"fake pre-prepare", forged)


def _deployment():
    config = SystemConfig.uniform(
        2,
        4,
        workload=WorkloadConfig(
            num_records=100, cross_shard_fraction=0.5, batch_size=1, num_clients=1, seed=3
        ),
    )
    return Deployment.build(config, backend="sim", num_clients=1, batch_size=1, seed=3)


class TestBroadcastAuthentication:
    def test_forged_broadcast_tag_is_rejected(self):
        deployment = _deployment()
        replica = deployment.primary_of(0)
        message = Prepare(sender=ReplicaId(0, 1), view=0, sequence=1, batch_digest=b"\x00" * 32)
        message.attach_auth(replica.auth_label, b"\x00" * 32)
        replica.deliver(message)
        assert replica.auth_rejections == 1
        # The forged vote never reached the consensus log.
        assert len(replica.log.slot(0, 1).prepares) == 0

    def test_untagged_intra_shard_broadcast_is_rejected(self):
        """Authentication is mandatory, not opt-in: a sender cannot bypass the
        gate by simply omitting the MAC tag."""
        deployment = _deployment()
        replica = deployment.primary_of(0)
        message = Prepare(sender=ReplicaId(0, 1), view=0, sequence=1, batch_digest=b"\x00" * 32)
        replica.deliver(message)
        assert replica.auth_rejections == 1
        assert len(replica.log.slot(0, 1).prepares) == 0

    def test_spoofed_self_sender_is_not_trusted(self):
        """A network-delivered message claiming the receiver itself as sender
        is spoofable and must pass the gate like any other; only the genuine
        loopback path (deliver_loopback, no network hop) bypasses it."""
        deployment = _deployment()
        replica = deployment.primary_of(0)
        message = Prepare(sender=replica.replica_id, view=0, sequence=1, batch_digest=b"\x00" * 32)
        replica.deliver(message)
        assert replica.auth_rejections == 1
        assert len(replica.log.slot(0, 1).prepares) == 0

    def test_loopback_of_own_broadcast_bypasses_the_gate(self):
        deployment = _deployment()
        replica = deployment.primary_of(0)
        message = Prepare(sender=replica.replica_id, view=0, sequence=1, batch_digest=b"\x00" * 32)
        replica.deliver_loopback(message)
        assert replica.auth_rejections == 0
        assert len(replica.log.slot(0, 1).prepares) == 1

    def test_tag_for_another_receiver_does_not_authenticate(self):
        deployment = _deployment()
        sender = deployment.replica(0, 1)
        receiver = deployment.primary_of(0)
        other = deployment.replica(0, 2)
        message = Prepare(sender=sender.replica_id, view=0, sequence=1, batch_digest=b"\x00" * 32)
        # A genuine tag, but minted for a different receiver: the vector entry
        # for *this* receiver is missing, so the message is rejected.
        sender._authenticate_for_audience(message, [other.replica_id])
        receiver.deliver(message)
        assert receiver.auth_rejections == 1
        assert len(receiver.log.slot(0, 1).prepares) == 0

    def test_client_requests_are_exempt_by_type(self):
        """Types never MAC'd intra-shard (client traffic, cross-shard relays)
        are whitelisted by *type*, not by tag absence."""
        deployment = _deployment()
        replica = deployment.primary_of(0)
        txn = TransactionBuilder("exempt-t1", "client-0").read_modify_write(0, "user1", "v").build()
        from repro.common.messages import ClientRequest

        replica.deliver(ClientRequest(sender="client-0", transaction=txn))
        assert replica.auth_rejections == 0
        # The request passed the gate and the primary proposed it (batch_size=1).
        assert replica.stats.sent_count.get("PrePrepare", 0) > 0

    def test_workload_broadcasts_authenticate_per_peer_over_one_payload(self):
        deployment = _deployment()
        txn = (
            TransactionBuilder("auth-t1", "client-0")
            .read_modify_write(0, "user1", "v")
            .read_modify_write(1, "user2", "w")
            .build()
        )
        result = deployment.run_workload([txn], timeout=60.0)
        assert result.all_completed
        replicas = list(deployment.replicas.values())
        tags = sum(r.auth_tags_created for r in replicas)
        verifications = sum(r.auth_verifications for r in replicas)
        assert tags > 0
        assert verifications > 0
        assert all(r.auth_rejections == 0 for r in replicas)
