"""Unit tests for the multicast fan-out fast path and broadcast authentication."""

from repro.common.crypto import KeyStore, MacAuthenticator
from repro.common.messages import Checkpoint, MessageStats, Prepare
from repro.common.types import ReplicaId
from repro.config import SystemConfig, WorkloadConfig
from repro.engine import Deployment
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.txn.transaction import TransactionBuilder


class _Recorder(Node):
    def __init__(self, address, network):
        super().__init__(address, "local", network)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def _fabric(n=4):
    sim = Simulator(seed=5)
    network = Network(sim)
    nodes = [_Recorder(f"n{i}", network) for i in range(n)]
    return sim, network, nodes


class TestMulticastFastPath:
    def test_multicast_delivers_one_shared_payload_to_every_destination(self):
        sim, network, nodes = _fabric()
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)
        network.multicast("n0", ["n1", "n2", "n3"], message)
        sim.run()
        for node in nodes[1:]:
            assert node.received == [message]
            assert node.received[0] is message  # shared object, not a copy
        assert network.stats.multicasts == 1
        assert network.stats.delivered == 3
        assert network.stats.bytes_delivered == 3 * message.wire_size()

    def test_multicast_draws_rng_identically_to_a_send_loop(self):
        """The fast path must not perturb the deterministic event stream."""
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)

        sim_a, network_a, _ = _fabric()
        network_a.multicast("n0", ["n1", "n2", "n3"], message)
        sim_b, network_b, _ = _fabric()
        for dst in ("n1", "n2", "n3"):
            network_b.send("n0", dst, message)
        assert sim_a.rng.random() == sim_b.rng.random()

    def test_multicast_respects_fault_conditions_per_destination(self):
        sim, network, nodes = _fabric()
        network.conditions.block_link("n0", "n2")
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)
        network.multicast("n0", ["n1", "n2", "n3"], message)
        sim.run()
        assert nodes[2].received == []
        assert nodes[1].received == [message] and nodes[3].received == [message]
        assert network.stats.dropped == 1

    def test_empty_multicast_is_a_no_op(self):
        _, network, _ = _fabric()
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)
        network.multicast("n0", [], message)
        assert network.stats.multicasts == 0

    def test_record_fanout_matches_repeated_record(self):
        message = Prepare(sender=ReplicaId(0, 0), view=0, sequence=1, batch_digest=b"\x00" * 32)
        fanout, repeated = MessageStats(), MessageStats()
        fanout.record_fanout(message, 3)
        for _ in range(3):
            repeated.record(message)
        assert fanout.sent_count == repeated.sent_count
        assert fanout.sent_bytes == repeated.sent_bytes
        fanout.record_fanout(message, 0)
        assert fanout.total_messages == 3

    def test_broadcast_excludes_self_and_records_fanout_once(self):
        sim, network, nodes = _fabric()
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32)
        nodes[0].broadcast(["n0", "n1", "n2", "n3"], message)
        sim.run()
        assert nodes[0].received == []
        assert nodes[0].stats.sent_count["Checkpoint"] == 3
        assert network.stats.multicasts == 1


class TestGroupMac:
    def test_group_tag_verifies_for_any_member(self):
        keystore = KeyStore()
        alice = MacAuthenticator(owner="r0@S0", keystore=keystore)
        bob = MacAuthenticator(owner="r1@S0", keystore=keystore)
        tag = alice.group_tag("shard:0", b"payload")
        assert bob.verify_group("shard:0", b"payload", tag)

    def test_group_tag_rejects_tampering_and_wrong_audience(self):
        keystore = KeyStore()
        mac = MacAuthenticator(owner="r0@S0", keystore=keystore)
        tag = mac.group_tag("shard:0", b"payload")
        assert not mac.verify_group("shard:0", b"payload!", tag)
        assert not mac.verify_group("shard:1", b"payload", tag)


def _deployment():
    config = SystemConfig.uniform(
        2,
        4,
        workload=WorkloadConfig(
            num_records=100, cross_shard_fraction=0.5, batch_size=1, num_clients=1, seed=3
        ),
    )
    return Deployment.build(config, backend="sim", num_clients=1, batch_size=1, seed=3)


class TestBroadcastAuthentication:
    def test_forged_broadcast_tag_is_rejected(self):
        deployment = _deployment()
        replica = deployment.primary_of(0)
        message = Prepare(sender=ReplicaId(0, 1), view=0, sequence=1, batch_digest=b"\x00" * 32)
        message.attach_auth(replica.auth_label, b"\x00" * 32)
        replica.deliver(message)
        assert replica.auth_rejections == 1
        # The forged vote never reached the consensus log.
        assert len(replica.log.slot(0, 1).prepares) == 0

    def test_workload_broadcasts_authenticate_once_per_audience(self):
        deployment = _deployment()
        txn = (
            TransactionBuilder("auth-t1", "client-0")
            .read_modify_write(0, "user1", "v")
            .read_modify_write(1, "user2", "w")
            .build()
        )
        result = deployment.run_workload([txn], timeout=60.0)
        assert result.all_completed
        replicas = list(deployment.replicas.values())
        tags = sum(r.auth_tags_created for r in replicas)
        verifications = sum(r.auth_verifications for r in replicas)
        cache_hits = sum(r.auth_cache_hits for r in replicas)
        assert tags > 0
        assert verifications > 0
        # The shared-object memo means a broadcast to n peers verifies far
        # fewer than n times: later receivers reuse the first verdict.
        assert cache_hits > 0
        assert all(r.auth_rejections == 0 for r in replicas)
