"""Unit tests for metrics summarisation and the deployment directory."""

import pytest

from repro.common.types import ReplicaId
from repro.config import SystemConfig, ShardConfig
from repro.consensus.directory import Directory
from repro.consensus.pbft.client import CompletedTransaction
from repro.errors import ConfigurationError
from repro.metrics.collector import ThroughputSeries, summarize


def _record(txn_id, submitted, completed, cross=False):
    return CompletedTransaction(
        txn_id=txn_id, submitted_at=submitted, completed_at=completed, cross_shard=cross
    )


class TestSummarize:
    def test_empty_records(self):
        summary = summarize([])
        assert summary.completed == 0
        assert summary.throughput == 0.0

    def test_throughput_and_latency(self):
        records = [_record(f"t{i}", i * 0.1, i * 0.1 + 0.5) for i in range(10)]
        summary = summarize(records)
        assert summary.completed == 10
        assert summary.avg_latency == pytest.approx(0.5)
        assert summary.throughput == pytest.approx(10 / summary.duration)

    def test_explicit_duration_overrides_span(self):
        records = [_record("t", 0.0, 1.0)]
        summary = summarize(records, duration=10.0)
        assert summary.throughput == pytest.approx(0.1)

    def test_percentiles_are_ordered(self):
        records = [_record(f"t{i}", 0.0, 0.1 * (i + 1)) for i in range(100)]
        summary = summarize(records)
        assert summary.p50_latency <= summary.p99_latency
        assert summary.p99_latency <= 10.0

    def test_as_row_is_serialisable(self):
        row = summarize([_record("t", 0.0, 1.0)]).as_row()
        assert set(row) >= {"completed", "throughput_tps", "avg_latency_s"}


class TestThroughputSeries:
    def test_buckets_cover_horizon(self):
        series = ThroughputSeries(bucket_seconds=5.0)
        records = [_record(f"t{i}", 0.0, float(i)) for i in range(20)]
        points = series.compute(records, horizon=30.0)
        assert points[0][0] == 0.0
        assert points[-1][0] == 30.0
        assert len(points) == 7

    def test_rates_reflect_bucket_counts(self):
        series = ThroughputSeries(bucket_seconds=10.0)
        records = [_record("a", 0.0, 1.0), _record("b", 0.0, 2.0), _record("c", 0.0, 15.0)]
        points = dict(series.compute(records, horizon=20.0))
        assert points[0.0] == pytest.approx(0.2)
        assert points[10.0] == pytest.approx(0.1)
        assert points[20.0] == pytest.approx(0.0)


class TestDirectory:
    def _directory(self):
        return Directory.from_config(SystemConfig.uniform(3, 4))

    def test_membership(self):
        directory = self._directory()
        assert directory.shard_ids() == (0, 1, 2)
        assert directory.shard_size(1) == 4
        assert len(directory.all_replicas()) == 12

    def test_replicas_have_consecutive_indices(self):
        directory = self._directory()
        assert [r.index for r in directory.replicas_of(2)] == [0, 1, 2, 3]

    def test_primary_rotates_with_view(self):
        directory = self._directory()
        assert directory.primary_of(0, view=0) == ReplicaId(0, 0)
        assert directory.primary_of(0, view=1) == ReplicaId(0, 1)
        assert directory.primary_of(0, view=4) == ReplicaId(0, 0)

    def test_counterpart_same_index(self):
        directory = self._directory()
        assert directory.peer_with_index(1, 2) == ReplicaId(1, 2)

    def test_counterpart_wraps_for_smaller_shards(self):
        config = SystemConfig(shards=(ShardConfig(0, 7), ShardConfig(1, 4)))
        directory = Directory.from_config(config)
        assert directory.peer_with_index(1, 6) == ReplicaId(1, 2)

    def test_unknown_shard_rejected(self):
        with pytest.raises(ConfigurationError):
            self._directory().replicas_of(9)

    def test_quorum_per_shard(self):
        directory = self._directory()
        assert directory.quorum(0).commit_quorum == 3

    def test_region_lookup(self):
        directory = self._directory()
        assert directory.region_of(0) == "oregon"
        assert directory.region_of(2) == "montreal"
