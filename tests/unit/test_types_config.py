"""Unit tests for identifiers and deployment configuration."""

import pytest

from repro.common.types import DataItem, ReplicaId, primary_index
from repro.config import (
    GCP_REGIONS,
    ShardConfig,
    SystemConfig,
    TimerConfig,
    WorkloadConfig,
)
from repro.errors import ConfigurationError


class TestReplicaId:
    def test_ordering_is_by_shard_then_index(self):
        assert ReplicaId(0, 2) < ReplicaId(1, 0)
        assert ReplicaId(1, 0) < ReplicaId(1, 1)

    def test_equality_and_hash(self):
        assert ReplicaId(2, 3) == ReplicaId(2, 3)
        assert len({ReplicaId(2, 3), ReplicaId(2, 3)}) == 1

    def test_string_form(self):
        assert str(ReplicaId(shard=4, index=7)) == "r7@S4"

    def test_primary_candidate(self):
        assert ReplicaId(0, 0).is_primary_candidate
        assert not ReplicaId(0, 1).is_primary_candidate

    def test_data_item_str(self):
        assert str(DataItem(shard=2, key="user9")) == "user9@S2"


class TestPrimaryIndex:
    def test_rotates_round_robin(self):
        assert [primary_index(v, 4) for v in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_rejects_empty_shard(self):
        with pytest.raises(ValueError):
            primary_index(0, 0)


class TestShardConfig:
    def test_minimum_replication(self):
        with pytest.raises(ConfigurationError):
            ShardConfig(shard_id=0, num_replicas=3)

    def test_quorum_derivation(self):
        shard = ShardConfig(shard_id=0, num_replicas=28)
        assert shard.max_faulty == 9
        assert shard.quorum.commit_quorum == 19


class TestTimerConfig:
    def test_default_ordering_holds(self):
        timers = TimerConfig()
        assert timers.local_timeout < timers.remote_timeout < timers.transmit_timeout

    def test_bad_ordering_rejected(self):
        with pytest.raises(ConfigurationError):
            TimerConfig(local_timeout=5.0, remote_timeout=2.0, transmit_timeout=9.0)

    def test_checkpoint_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TimerConfig(checkpoint_interval=0)


class TestWorkloadConfig:
    def test_defaults_match_paper_standard_settings(self):
        workload = WorkloadConfig()
        assert workload.num_records == 600_000
        assert workload.cross_shard_fraction == pytest.approx(0.30)
        assert workload.batch_size == 100
        assert workload.num_clients == 50_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cross_shard_fraction": 1.5},
            {"cross_shard_fraction": -0.1},
            {"num_records": 0},
            {"batch_size": 0},
            {"num_clients": 0},
            {"remote_reads": -1},
            {"zipf_theta": -0.5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**kwargs)


class TestSystemConfig:
    def test_uniform_builds_one_shard_per_region(self):
        config = SystemConfig.uniform(15, 28)
        assert config.num_shards == 15
        assert config.total_replicas == 420
        assert [s.region for s in config.shards] == list(GCP_REGIONS)

    def test_uniform_wraps_regions_beyond_fifteen(self):
        config = SystemConfig.uniform(17, 4)
        assert config.shards[15].region == GCP_REGIONS[0]

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(shards=(ShardConfig(0, 4), ShardConfig(0, 4)))

    def test_ring_order_must_be_permutation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(shards=(ShardConfig(0, 4), ShardConfig(1, 4)), ring_order=(0, 2))

    def test_custom_ring_order_is_used(self):
        config = SystemConfig(
            shards=(ShardConfig(0, 4), ShardConfig(1, 4), ShardConfig(2, 4)),
            ring_order=(2, 0, 1),
        )
        assert config.ring().order == (2, 0, 1)

    def test_default_ring_is_ascending(self):
        config = SystemConfig.uniform(4, 4)
        assert config.ring().order == (0, 1, 2, 3)

    def test_shard_lookup(self):
        config = SystemConfig.uniform(3, 4)
        assert config.shard(2).shard_id == 2
        with pytest.raises(ConfigurationError):
            config.shard(9)

    def test_heterogeneous_shard_sizes_allowed(self):
        config = SystemConfig(shards=(ShardConfig(0, 4), ShardConfig(1, 7), ShardConfig(2, 10)))
        assert config.total_replicas == 21
