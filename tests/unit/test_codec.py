"""Unit tests for the canonical binary codec and the payload/digest memos."""

import pytest

from repro.common import codec
from repro.common.codec import (
    decode_canonical,
    encode_canonical,
    legacy_json_encoding,
    registered_wire_types,
)
from repro.common.messages import Checkpoint, Execute, batch_digest
from repro.common.types import ReplicaId
from repro.errors import MalformedMessageError
from repro.txn.transaction import OpType, Operation, Transaction, TransactionBuilder


def _txn(txn_id="t1", shard=0):
    return TransactionBuilder(txn_id, "client-0").read_modify_write(shard, "user1", "v").build()


class TestInjectivity:
    """Distinct values must never share an encoding (the ``default=str`` bug)."""

    def test_bytes_never_collide_with_their_string_forms(self):
        raw = b"\x01\x02"
        for impostor in (raw.hex(), str(raw), raw.decode("latin-1")):
            assert encode_canonical(raw) != encode_canonical(impostor)

    def test_int_keys_never_collide_with_str_keys(self):
        assert encode_canonical({1: "x"}) != encode_canonical({"1": "x"})

    def test_int_values_never_collide_with_str_values(self):
        assert encode_canonical(7) != encode_canonical("7")
        assert encode_canonical({"k": 7}) != encode_canonical({"k": "7"})

    def test_bool_never_collides_with_int(self):
        assert encode_canonical(True) != encode_canonical(1)
        assert encode_canonical(False) != encode_canonical(0)

    def test_list_tuple_and_set_are_distinct(self):
        assert encode_canonical([1, 2]) != encode_canonical((1, 2))
        assert encode_canonical([1, 2]) != encode_canonical(frozenset({1, 2}))

    def test_nesting_boundaries_are_unambiguous(self):
        assert encode_canonical([["a"], "b"]) != encode_canonical([["a", "b"]])
        assert encode_canonical({"a": {"b": "c"}}) != encode_canonical({"a": {"b": "c"}, "d": {}})


class TestDeterminism:
    def test_dict_ordering_is_insertion_independent(self):
        assert encode_canonical({"a": 1, "b": 2}) == encode_canonical({"b": 2, "a": 1})
        assert encode_canonical({2: "x", 10: "y"}) == encode_canonical({10: "y", 2: "x"})

    def test_mixed_key_dicts_encode_deterministically(self):
        one = encode_canonical({1: "x", "1": "y"})
        two = encode_canonical({"1": "y", 1: "x"})
        assert one == two

    def test_frozenset_ordering_is_canonical(self):
        assert encode_canonical(frozenset({3, 1, 2})) == encode_canonical(frozenset({2, 3, 1}))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            2**80,
            1.5,
            "",
            "héllo",
            b"",
            b"\x00\xff",
            [1, "two", b"three"],
            (1, (2, 3)),
            {"a": [1], "b": {"c": None}},
            {1: "x", "1": "y"},
            frozenset({1, 2, 3}),
        ],
    )
    def test_primitives_round_trip(self, value):
        decoded = decode_canonical(encode_canonical(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_registered_dataclasses_round_trip(self):
        txn = _txn()
        assert decode_canonical(encode_canonical(txn)) == txn
        rid = ReplicaId(shard=2, index=3)
        assert decode_canonical(encode_canonical(rid)) == rid
        op = Operation(shard=0, key="k", op_type=OpType.WRITE, value="v", depends_on=((1, "x"),))
        assert decode_canonical(encode_canonical(op)) == op

    def test_trailing_bytes_rejected(self):
        with pytest.raises(MalformedMessageError):
            decode_canonical(encode_canonical(1) + b"!")

    @pytest.mark.parametrize(
        "junk",
        [
            b"",  # empty frame
            b"\x99",  # unknown tag
            b"D\x00",  # truncated float body
            b"I\x00\x00\x00\x02ab",  # non-numeric int body
            b"S\x00\x00\x00\x01\xff",  # invalid utf-8 str body
            b"B\x00\x00\x00\x05ab",  # truncated bytes body
            b"I\x00\x00",  # truncated length prefix
            b"I\x00\x00\x00\x02+5",  # non-canonical int spelling
            b"I\x00\x00\x00\x03" + b"5_0",  # underscore int spelling
            b"I\x00\x00\x00\x64" + b"5",  # int body longer than the frame
            b"S\x00\x00\x00\x64" + b"ab",  # str body longer than the frame
        ],
    )
    def test_malformed_inputs_raise_the_module_error(self, junk):
        """Low-level struct/unicode errors are translated, never leaked."""
        with pytest.raises(MalformedMessageError):
            decode_canonical(junk)

    def test_legacy_context_is_reentrant(self):
        with legacy_json_encoding():
            with legacy_json_encoding():
                assert codec.LEGACY.enabled
            assert codec.LEGACY.enabled  # inner exit must not clear the outer scope
        assert not codec.LEGACY.enabled

    def test_unknown_type_rejected(self):
        with pytest.raises(MalformedMessageError):
            encode_canonical(object())

    def test_registry_contains_the_protocol_message_set(self):
        names = set(registered_wire_types())
        assert {"Transaction", "ClientRequest", "Forward", "Commit", "Block", "Signature"} <= names


class TestCanonicalForm:
    """Decode must be the exact inverse of encode: every value has ONE frame."""

    def test_negative_zero_encodes_like_positive_zero(self):
        assert encode_canonical(-0.0) == encode_canonical(0.0)
        assert encode_canonical({"k": -0.0}) == encode_canonical({"k": 0.0})

    def test_nan_is_rejected(self):
        with pytest.raises(MalformedMessageError):
            encode_canonical(float("nan"))
        with pytest.raises(MalformedMessageError):
            encode_canonical({float("nan"): "v"})

    def test_decoder_rejects_negative_zero_and_nan_frames(self):
        import struct

        with pytest.raises(MalformedMessageError):
            decode_canonical(b"D" + struct.pack(">d", -0.0))
        with pytest.raises(MalformedMessageError):
            decode_canonical(b"D" + struct.pack(">d", float("nan")))

    def test_decoder_rejects_out_of_order_dict_entries(self):
        frame = encode_canonical({"a": 1, "b": 2})
        # Splice the two entries into reverse order: same logical value,
        # different bytes -- decode must refuse rather than collapse them.
        header = frame[:5]
        entry_a = encode_canonical("a") + encode_canonical(1)
        entry_b = encode_canonical("b") + encode_canonical(2)
        assert frame == header + entry_a + entry_b
        with pytest.raises(MalformedMessageError):
            decode_canonical(header + entry_b + entry_a)

    def test_decoder_rejects_duplicate_dict_keys(self):
        frame = encode_canonical({"a": 1})
        header = b"M" + frame[1:5].replace(b"\x01", b"\x02")
        entry = frame[5:]
        with pytest.raises(MalformedMessageError):
            decode_canonical(header + entry + entry)

    def test_decoder_rejects_out_of_order_frozenset_elements(self):
        frame = encode_canonical(frozenset({1, 2}))
        header = frame[:5]
        one, two = encode_canonical(1), encode_canonical(2)
        assert frame == header + one + two
        with pytest.raises(MalformedMessageError):
            decode_canonical(header + two + one)

    def test_decoder_rejects_duplicate_frozenset_elements(self):
        header = b"Z\x00\x00\x00\x02"
        one = encode_canonical(1)
        with pytest.raises(MalformedMessageError):
            decode_canonical(header + one + one)

    def test_mixed_key_dict_order_is_validated_with_the_encoders_order(self):
        value = {1: "x", "1": "y", b"1": "z"}
        assert decode_canonical(encode_canonical(value)) == value

    @staticmethod
    def _object_frame(entries):
        import struct

        name = b"ReplicaId"
        frame = b"O" + struct.pack(">I", len(name)) + name + struct.pack(">I", len(entries))
        for fname, value in entries:
            frame += struct.pack(">I", len(fname)) + fname + encode_canonical(value)
        return frame

    def test_decoder_rejects_reordered_object_fields(self):
        good = self._object_frame([(b"shard", 1), (b"index", 2)])
        assert good == encode_canonical(ReplicaId(shard=1, index=2))
        assert decode_canonical(good) == ReplicaId(shard=1, index=2)
        with pytest.raises(MalformedMessageError):
            decode_canonical(self._object_frame([(b"index", 2), (b"shard", 1)]))

    def test_decoder_rejects_duplicate_and_missing_object_fields(self):
        with pytest.raises(MalformedMessageError):
            decode_canonical(self._object_frame([(b"shard", 1), (b"shard", 1)]))
        with pytest.raises(MalformedMessageError):
            decode_canonical(self._object_frame([(b"shard", 1)]))

    def test_decoder_rejects_enum_frame_naming_a_non_enum(self):
        import struct

        name = b"ReplicaId"
        frame = b"E" + struct.pack(">I", len(name)) + name + encode_canonical(1)
        with pytest.raises(MalformedMessageError):
            decode_canonical(frame)


class TestDigestInjectivityRegression:
    """Adversarial field values that collided under JSON canonicalization."""

    def test_int_vs_str_write_set_keys_digest_differently(self):
        base = dict(sender=ReplicaId(1, 0), batch_digest=b"\x03" * 32, txn_ids=("t1",), origin_shard=1)
        int_keys = Execute(write_sets={0: {"k": "v"}}, **base)
        str_keys = Execute(write_sets={"0": {"k": "v"}}, **base)
        assert int_keys.digest() != str_keys.digest()
        # The legacy JSON path collides -- which is exactly why it is
        # quarantined to benchmarks.
        with legacy_json_encoding():
            assert int_keys.digest() == str_keys.digest()

    def test_bytes_vs_stringified_bytes_digest_differently(self):
        raw = Checkpoint(sender=ReplicaId(0, 0), sequence=4, state_digest=b"\xab" * 32)
        impostor = Checkpoint(sender=ReplicaId(0, 0), sequence=4, state_digest=(b"\xab" * 32).hex())
        assert raw.digest() != impostor.digest()
        with legacy_json_encoding():
            assert raw.digest() == impostor.digest()

    def test_transaction_digest_distinguishes_value_types(self):
        a = Transaction("t", "c", (Operation(shard=0, key="k", op_type=OpType.WRITE, value="7"),))
        b = Transaction("t", "c", (Operation(shard=0, key="k", op_type=OpType.WRITE, value=7),))
        assert a.digest() != b.digest()


class TestMemoisation:
    def test_payload_bytes_encoded_once_per_object(self):
        txn = _txn()
        first = txn.payload_bytes()
        assert txn.payload_bytes() is first  # same object, not merely equal

    def test_digest_hashed_once_per_object(self):
        message = Checkpoint(sender=ReplicaId(0, 0), sequence=4, state_digest=b"\x01" * 32)
        assert message.digest() is message.digest()

    def test_stats_count_hits_and_misses(self):
        before = codec.STATS.snapshot()
        txn = _txn("memo-stats")
        txn.digest()
        txn.digest()
        delta = codec.STATS.delta_since(before)
        assert delta["digest"]["misses"] == 1
        assert delta["digest"]["hits"] == 1

    def test_batch_digest_reuses_transaction_digests(self):
        from repro.common.messages import ClientRequest

        requests = tuple(
            ClientRequest(sender="client-0", transaction=_txn(f"b-{i}")) for i in range(3)
        )
        first = batch_digest(requests)
        before = codec.STATS.snapshot()
        assert batch_digest(requests) == first
        delta = codec.STATS.delta_since(before)
        assert delta["digest"]["misses"] == 0  # every leaf came from the memo

    def test_prime_payload_seeds_the_memo(self):
        source = _txn("prime-src")
        payload = source.payload_bytes()
        clone = Transaction(source.txn_id, source.client_id, source.operations)
        codec.prime_payload(clone, payload)
        assert clone.payload_bytes() is payload

    def test_legacy_mode_bypasses_memos_but_is_self_consistent(self):
        txn = _txn("legacy")
        with legacy_json_encoding():
            one = txn.payload_bytes()
            two = txn.payload_bytes()
            assert one == two
            assert one is not two  # recomputed per call, like the pre-codec path
        assert txn.payload_bytes() != one  # binary codec differs from JSON
