"""Unit tests for quorum arithmetic (n >= 3f + 1)."""

import pytest

from repro.common.quorum import QuorumSpec, max_faulty
from repro.errors import QuorumError


class TestMaxFaulty:
    @pytest.mark.parametrize(
        "n, expected",
        [(1, 0), (3, 0), (4, 1), (6, 1), (7, 2), (10, 3), (16, 5), (28, 9), (32, 10)],
    )
    def test_max_faulty_values(self, n, expected):
        assert max_faulty(n) == expected

    def test_zero_replicas_rejected(self):
        with pytest.raises(QuorumError):
            max_faulty(0)


class TestQuorumSpec:
    def test_commit_quorum_is_n_minus_f(self):
        spec = QuorumSpec(n=4, f=1)
        assert spec.commit_quorum == 3
        assert spec.nf == 3

    def test_weak_quorum_is_f_plus_one(self):
        assert QuorumSpec(n=28, f=9).weak_quorum == 10

    def test_view_change_quorum_matches_commit_quorum(self):
        spec = QuorumSpec.for_replicas(16)
        assert spec.view_change_quorum == spec.commit_quorum

    def test_insufficient_replication_rejected(self):
        with pytest.raises(QuorumError):
            QuorumSpec(n=3, f=1)

    def test_negative_faults_rejected(self):
        with pytest.raises(QuorumError):
            QuorumSpec(n=4, f=-1)

    def test_for_replicas_uses_maximum_tolerance(self):
        spec = QuorumSpec.for_replicas(28)
        assert spec.f == 9
        assert spec.n == 28

    @pytest.mark.parametrize("n", [4, 7, 10, 16, 22, 28, 31])
    def test_two_commit_quorums_intersect_in_a_nonfaulty_replica(self, n):
        # The quorum-intersection argument of Proposition 6.1: any two commit
        # quorums share at least one non-faulty replica.
        spec = QuorumSpec.for_replicas(n)
        assert spec.intersects(spec.commit_quorum)

    def test_weak_quorums_need_not_intersect(self):
        spec = QuorumSpec.for_replicas(28)
        assert not spec.intersects(spec.weak_quorum)
