"""Unit tests for ring-order routing."""

import pytest

from repro.errors import ConfigurationError
from repro.txn.ring import RingTopology


class TestConstruction:
    def test_ascending_helper_sorts_ids(self):
        ring = RingTopology.ascending([3, 1, 2])
        assert ring.order == (1, 2, 3)

    def test_custom_permutation_preserved(self):
        assert RingTopology([5, 2, 9]).order == (5, 2, 9)

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            RingTopology([1, 1, 2])

    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            RingTopology([])

    def test_membership_and_position(self):
        ring = RingTopology([4, 7, 9])
        assert 7 in ring
        assert 3 not in ring
        assert ring.position(9) == 2
        with pytest.raises(ConfigurationError):
            ring.position(3)


class TestRouting:
    def test_route_follows_ring_positions(self):
        ring = RingTopology([0, 1, 2, 3])
        assert ring.route({0, 2, 3}) == (0, 2, 3)

    def test_route_with_custom_permutation(self):
        ring = RingTopology([3, 0, 2, 1])
        assert ring.route({0, 1, 2}) == (0, 2, 1)

    def test_first_and_last_in_ring_order(self):
        ring = RingTopology([0, 1, 2, 3])
        assert ring.first_in_ring_order({1, 3}) == 1
        assert ring.last_in_ring_order({1, 3}) == 3

    def test_next_wraps_to_initiator(self):
        ring = RingTopology([0, 1, 2, 3])
        involved = {0, 1, 3}
        assert ring.next_in_ring_order(0, involved) == 1
        assert ring.next_in_ring_order(1, involved) == 3
        assert ring.next_in_ring_order(3, involved) == 0

    def test_prev_wraps_to_last(self):
        ring = RingTopology([0, 1, 2, 3])
        involved = {0, 1, 3}
        assert ring.prev_in_ring_order(0, involved) == 3
        assert ring.prev_in_ring_order(3, involved) == 1

    def test_single_shard_route_wraps_to_itself(self):
        ring = RingTopology([0, 1, 2])
        assert ring.next_in_ring_order(1, {1}) == 1

    def test_is_initiator(self):
        ring = RingTopology([0, 1, 2, 3])
        assert ring.is_initiator(1, {1, 2})
        assert not ring.is_initiator(2, {1, 2})

    def test_rotation_length_counts_involved_shards(self):
        ring = RingTopology([0, 1, 2, 3, 4])
        assert ring.rotation_length({0, 2, 4}) == 3

    def test_uninvolved_shard_rejected(self):
        ring = RingTopology([0, 1, 2])
        with pytest.raises(ConfigurationError):
            ring.next_in_ring_order(2, {0, 1})

    def test_unknown_shard_rejected(self):
        ring = RingTopology([0, 1, 2])
        with pytest.raises(ConfigurationError):
            ring.route({0, 9})

    def test_empty_involved_set_rejected(self):
        ring = RingTopology([0, 1, 2])
        with pytest.raises(ConfigurationError):
            ring.first_in_ring_order(set())


class TestDeadlockFreedomPrecondition:
    def test_two_conflicting_routes_share_the_same_initiator(self):
        # Theorem 6.2 relies on conflicting transactions over the same shard
        # set being sequenced by the same initiator shard.
        ring = RingTopology([0, 1, 2, 3, 4])
        involved = {1, 3, 4}
        assert ring.first_in_ring_order(involved) == ring.route(involved)[0]
        assert ring.first_in_ring_order(involved) == 1
