"""Unit tests for the analytical performance model.

Besides sanity checks, these tests pin the qualitative *shapes* the paper
reports (who wins, how curves move) so that a regression in the cost models
is caught even though absolute numbers are not expected to match the paper.
"""

import pytest

from repro.analytical import (
    CostParameters,
    DeploymentSpec,
    estimate,
    model_by_name,
)
from repro.analytical.costs import NodeWork


class TestDeploymentSpec:
    def test_defaults_match_standard_settings(self):
        spec = DeploymentSpec()
        assert spec.num_shards == 15
        assert spec.replicas_per_shard == 28
        assert spec.total_replicas == 420
        assert spec.effective_involved == 15

    def test_effective_involved_clamps(self):
        assert DeploymentSpec(involved_shards=0).effective_involved == 15
        assert DeploymentSpec(involved_shards=99).effective_involved == 15
        assert DeploymentSpec(involved_shards=3).effective_involved == 3

    def test_with_returns_modified_copy(self):
        spec = DeploymentSpec()
        other = spec.with_(num_shards=5)
        assert other.num_shards == 5
        assert spec.num_shards == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            DeploymentSpec(num_shards=0)
        with pytest.raises(ValueError):
            DeploymentSpec(cross_shard_fraction=2.0)

    def test_ring_hops_and_rtt_are_positive(self):
        spec = DeploymentSpec(num_shards=5)
        assert spec.average_ring_hop() > 0
        assert spec.max_region_rtt() >= spec.average_region_rtt() > 0
        assert len(spec.ring_one_way_delays()) == 5

    def test_faults_per_shard(self):
        assert DeploymentSpec(replicas_per_shard=28).faults_per_shard == 9


class TestCostParameters:
    def test_batch_message_size_matches_paper_at_batch_100(self):
        params = CostParameters()
        assert params.batch_message_size("PrePrepare", 100) == pytest.approx(5408, rel=0.05)
        assert params.batch_message_size("Forward", 100) == pytest.approx(6147, rel=0.05)

    def test_batch_message_size_scales_with_batch(self):
        params = CostParameters()
        assert params.batch_message_size("PrePrepare", 1000) > params.batch_message_size(
            "PrePrepare", 100
        )

    def test_fixed_size_messages_do_not_scale(self):
        params = CostParameters()
        assert params.batch_message_size("Prepare", 1000) == params.message_size("Prepare")

    def test_node_work_busy_time_includes_overhead(self):
        params = CostParameters()
        work = NodeWork(lan_bytes=0, wan_bytes=0, cpu_seconds=0, messages=0)
        assert work.busy_seconds(params) == pytest.approx(params.per_batch_overhead_s)

    def test_node_work_combinators(self):
        a = NodeWork(lan_bytes=10, wan_bytes=5, cpu_seconds=1.0, messages=2)
        b = NodeWork(lan_bytes=1, wan_bytes=1, cpu_seconds=0.5, messages=1)
        combined = a.plus(b)
        assert combined.lan_bytes == 11
        assert combined.messages == 3
        assert a.scaled(2).cpu_seconds == 2.0


class TestModelRegistry:
    def test_all_paper_protocols_are_available(self):
        for name in ("RingBFT", "AHL", "Sharper", "Pbft", "Zyzzyva", "Sbft", "PoE", "HotStuff", "Rcc"):
            assert model_by_name(name).name == name

    def test_lookup_is_case_insensitive(self):
        assert model_by_name("ringbft").name == "RingBFT"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            model_by_name("raft")


class TestEstimates:
    STANDARD = DeploymentSpec()

    def _tput(self, protocol, spec):
        return estimate(model_by_name(protocol), spec).throughput_tps

    def test_all_protocols_agree_without_cross_shard_transactions(self):
        spec = self.STANDARD.with_(cross_shard_fraction=0.0)
        values = [self._tput(p, spec) for p in ("RingBFT", "Sharper", "AHL")]
        assert max(values) == pytest.approx(min(values), rel=1e-6)

    def test_ringbft_beats_sharper_beats_ahl_on_standard_mix(self):
        ring = self._tput("RingBFT", self.STANDARD)
        sharper = self._tput("Sharper", self.STANDARD)
        ahl = self._tput("AHL", self.STANDARD)
        assert ring > sharper > ahl
        # Paper: up to ~4x over Sharper and ~16-18x over AHL at 15 shards.
        assert ring / sharper > 2.5
        assert ring / ahl > 8.0

    def test_ringbft_throughput_roughly_flat_in_shard_count(self):
        few = self._tput("RingBFT", self.STANDARD.with_(num_shards=3))
        many = self._tput("RingBFT", self.STANDARD.with_(num_shards=15))
        assert many > 0.7 * few

    def test_baselines_degrade_with_more_shards(self):
        for protocol in ("Sharper", "AHL"):
            few = self._tput(protocol, self.STANDARD.with_(num_shards=3))
            many = self._tput(protocol, self.STANDARD.with_(num_shards=15))
            assert many < few

    def test_throughput_decreases_with_replicas_per_shard(self):
        small = self._tput("RingBFT", self.STANDARD.with_(replicas_per_shard=10))
        large = self._tput("RingBFT", self.STANDARD.with_(replicas_per_shard=28))
        assert large < small

    def test_throughput_decreases_with_cross_shard_fraction(self):
        values = [
            self._tput("RingBFT", self.STANDARD.with_(cross_shard_fraction=x))
            for x in (0.0, 0.15, 0.30, 0.60, 1.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_throughput_increases_with_batch_size_up_to_saturation(self):
        small = self._tput("RingBFT", self.STANDARD.with_(batch_size=10))
        medium = self._tput("RingBFT", self.STANDARD.with_(batch_size=100))
        large = self._tput("RingBFT", self.STANDARD.with_(batch_size=1500))
        assert small < medium < large

    def test_latency_increases_with_shard_count(self):
        few = estimate(model_by_name("RingBFT"), self.STANDARD.with_(num_shards=3)).latency_s
        many = estimate(model_by_name("RingBFT"), self.STANDARD.with_(num_shards=15)).latency_s
        assert many > few

    def test_remote_reads_reduce_ringbft_throughput(self):
        none = self._tput("RingBFT", self.STANDARD.with_(remote_reads=0))
        many = self._tput("RingBFT", self.STANDARD.with_(remote_reads=64))
        assert many < none
        assert many > 0.3 * none  # still "reasonable throughput" (Section 8.8)

    def test_ahl_is_limited_by_its_reference_committee(self):
        result = estimate(model_by_name("AHL"), self.STANDARD)
        assert result.bottleneck == "ahl-reference-committee"

    def test_fully_replicated_protocols_scale_poorly_with_replicas(self):
        for protocol in ("Pbft", "Zyzzyva", "Sbft", "PoE", "HotStuff"):
            small = self._tput(protocol, DeploymentSpec(num_shards=1, replicas_per_shard=4, cross_shard_fraction=0.0))
            large = self._tput(protocol, DeploymentSpec(num_shards=1, replicas_per_shard=32, cross_shard_fraction=0.0))
            assert large < small

    def test_sharded_ringbft_dominates_fully_replicated_protocols(self):
        ring = self._tput(
            "RingBFT", DeploymentSpec(num_shards=9, replicas_per_shard=32, cross_shard_fraction=0.0)
        )
        for protocol in ("Pbft", "Zyzzyva", "Sbft", "PoE", "HotStuff", "Rcc"):
            other = self._tput(
                protocol, DeploymentSpec(num_shards=1, replicas_per_shard=32, cross_shard_fraction=0.0)
            )
            assert ring > other

    def test_more_clients_increase_delivered_throughput_until_saturation(self):
        few = self._tput("RingBFT", self.STANDARD.with_(num_clients=3_000))
        more = self._tput("RingBFT", self.STANDARD.with_(num_clients=15_000))
        assert more >= few

    def test_estimate_reports_positive_values_and_details(self):
        result = estimate(model_by_name("RingBFT"), self.STANDARD)
        assert result.throughput_tps > 0
        assert result.latency_s > 0
        assert "saturation_tps" in result.details
        assert isinstance(result.as_row()["bottleneck"], str)
