"""Unit tests for the authenticated-communication substrate."""

import pytest

from repro.common.crypto import (
    DIGEST_SIZE,
    KeyStore,
    MacAuthenticator,
    Signature,
    SignatureScheme,
    digest_hex,
    sha256,
    verify_certificate,
)
from repro.errors import CryptoError


class TestHashing:
    def test_sha256_is_deterministic(self):
        assert sha256(b"ringbft") == sha256(b"ringbft")

    def test_sha256_differs_on_different_input(self):
        assert sha256(b"a") != sha256(b"b")

    def test_digest_size(self):
        assert len(sha256(b"payload")) == DIGEST_SIZE

    def test_digest_hex_matches_binary_digest(self):
        assert bytes.fromhex(digest_hex(b"x")) == sha256(b"x")


class TestKeyStore:
    def test_signing_keys_differ_per_entity(self):
        store = KeyStore()
        assert store.signing_key("r0@S0") != store.signing_key("r1@S0")

    def test_mac_key_is_symmetric(self):
        store = KeyStore()
        assert store.mac_key("a", "b") == store.mac_key("b", "a")

    def test_mac_keys_differ_per_pair(self):
        store = KeyStore()
        assert store.mac_key("a", "b") != store.mac_key("a", "c")

    def test_different_seeds_produce_different_keys(self):
        assert KeyStore(b"one").signing_key("x") != KeyStore(b"two").signing_key("x")


class TestSignatureScheme:
    def test_sign_and_verify_roundtrip(self):
        store = KeyStore()
        scheme = SignatureScheme(store)
        signature = scheme.sign("replica-1", b"message")
        assert scheme.verify(signature, b"message")

    def test_verification_fails_on_tampered_payload(self):
        scheme = SignatureScheme(KeyStore())
        signature = scheme.sign("replica-1", b"message")
        assert not scheme.verify(signature, b"another message")

    def test_verification_fails_on_wrong_signer(self):
        scheme = SignatureScheme(KeyStore())
        signature = scheme.sign("replica-1", b"message")
        forged = Signature(signer="replica-2", value=signature.value)
        assert not scheme.verify(forged, b"message")

    def test_sign_with_stolen_key_is_rejected(self):
        store = KeyStore()
        scheme = SignatureScheme(store)
        wrong_key = store.signing_key("replica-2")
        with pytest.raises(CryptoError):
            scheme.sign("replica-1", b"message", wrong_key)

    def test_require_valid_raises_on_bad_signature(self):
        scheme = SignatureScheme(KeyStore())
        signature = scheme.sign("replica-1", b"message")
        with pytest.raises(CryptoError):
            scheme.require_valid(signature, b"tampered")

    def test_signature_value_must_be_digest_sized(self):
        with pytest.raises(CryptoError):
            Signature(signer="x", value=b"short")


class TestMacAuthenticator:
    def test_tag_verifies_between_the_two_endpoints(self):
        store = KeyStore()
        alice = MacAuthenticator(owner="alice", keystore=store)
        bob = MacAuthenticator(owner="bob", keystore=store)
        tag = alice.tag("bob", b"hello")
        assert bob.verify("alice", b"hello", tag)

    def test_tag_rejected_by_third_party_channel(self):
        store = KeyStore()
        alice = MacAuthenticator(owner="alice", keystore=store)
        carol = MacAuthenticator(owner="carol", keystore=store)
        tag = alice.tag("bob", b"hello")
        assert not carol.verify("alice", b"hello", tag)

    def test_tampered_payload_rejected(self):
        store = KeyStore()
        alice = MacAuthenticator(owner="alice", keystore=store)
        bob = MacAuthenticator(owner="bob", keystore=store)
        tag = alice.tag("bob", b"hello")
        assert not bob.verify("alice", b"bye", tag)


class TestCertificates:
    def _signatures(self, scheme, payload, signers):
        return [scheme.sign(name, payload) for name in signers]

    def test_certificate_with_enough_distinct_signers_is_valid(self):
        scheme = SignatureScheme(KeyStore())
        payload = b"commit|view=0|seq=1"
        sigs = self._signatures(scheme, payload, ["r0", "r1", "r2"])
        assert verify_certificate(scheme, payload, sigs, required=3)

    def test_certificate_with_too_few_signers_is_invalid(self):
        scheme = SignatureScheme(KeyStore())
        payload = b"commit"
        sigs = self._signatures(scheme, payload, ["r0", "r1"])
        assert not verify_certificate(scheme, payload, sigs, required=3)

    def test_duplicate_signers_do_not_count_twice(self):
        scheme = SignatureScheme(KeyStore())
        payload = b"commit"
        sig = scheme.sign("r0", payload)
        assert not verify_certificate(scheme, payload, [sig, sig, sig], required=2)

    def test_invalid_signatures_are_ignored(self):
        scheme = SignatureScheme(KeyStore())
        payload = b"commit"
        good = self._signatures(scheme, payload, ["r0", "r1"])
        bad = scheme.sign("r2", b"other payload")
        assert not verify_certificate(scheme, payload, good + [bad], required=3)
