"""Unit tests for protocol messages, batching, and message statistics."""

from repro.common.batching import Batcher
from repro.common.crypto import KeyStore, SignatureScheme
from repro.common.messages import (
    MESSAGE_SIZES,
    Checkpoint,
    ClientRequest,
    ClientResponse,
    Commit,
    CommitCertificate,
    Execute,
    Forward,
    MessageStats,
    PrePrepare,
    Prepare,
    RemoteView,
    batch_digest,
)
from repro.common.types import ReplicaId
from repro.txn.transaction import TransactionBuilder


def _request(txn_id="t1", shards=(0,)):
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        builder.read_modify_write(shard, f"user{shard}", "v")
    return ClientRequest(sender="client-0", transaction=builder.build())


class TestWireSizes:
    def test_paper_reported_sizes(self):
        # Section 8: PrePrepare 5408B, Prepare 216B, Commit 269B,
        # Forward 6147B, Checkpoint 164B, Execute 1732B.
        assert MESSAGE_SIZES["PrePrepare"] == 5408
        assert MESSAGE_SIZES["Prepare"] == 216
        assert MESSAGE_SIZES["Commit"] == 269
        assert MESSAGE_SIZES["Forward"] == 6147
        assert MESSAGE_SIZES["Checkpoint"] == 164
        assert MESSAGE_SIZES["Execute"] == 1732

    def test_wire_size_lookup_by_type_name(self):
        message = Prepare(sender=ReplicaId(0, 1), view=0, sequence=1, batch_digest=b"\x00" * 32)
        assert message.wire_size() == 216

    def test_unknown_message_types_get_default_size(self):
        response = ClientResponse(sender=ReplicaId(0, 0), txn_id="t", sequence=1, result={}, shard=0)
        assert response.wire_size() == MESSAGE_SIZES["ClientResponse"]


class TestDigests:
    def test_batch_digest_depends_on_content_and_order(self):
        a, b = _request("a"), _request("b")
        assert batch_digest([a, b]) == batch_digest([a, b])
        assert batch_digest([a, b]) != batch_digest([b, a])
        assert batch_digest([a]) != batch_digest([b])

    def test_message_digest_distinguishes_views(self):
        one = Prepare(sender=ReplicaId(0, 1), view=0, sequence=1, batch_digest=b"\x00" * 32)
        two = Prepare(sender=ReplicaId(0, 1), view=1, sequence=1, batch_digest=b"\x00" * 32)
        assert one.digest() != two.digest()

    def test_commit_signed_payload_excludes_sender(self):
        digest = b"\x01" * 32
        a = Commit(sender=ReplicaId(0, 1), view=0, sequence=3, batch_digest=digest)
        b = Commit(sender=ReplicaId(0, 2), view=0, sequence=3, batch_digest=digest)
        assert a.signed_payload() == b.signed_payload()


class TestCommitCertificate:
    def test_certificate_counts_distinct_signers(self):
        scheme = SignatureScheme(KeyStore())
        digest = b"\x02" * 32
        commit = Commit(sender=ReplicaId(0, 0), view=0, sequence=1, batch_digest=digest)
        signatures = tuple(
            scheme.sign(f"r{i}@S0", commit.signed_payload()) for i in range(3)
        )
        certificate = CommitCertificate(
            shard=0, view=0, sequence=1, batch_digest=digest, signatures=signatures
        )
        assert certificate.distinct_signers == 3
        assert certificate.signed_payload() == commit.signed_payload()


class TestCrossShardMessages:
    def test_forward_payload_mentions_all_transactions(self):
        requests = (_request("t1", (0, 1)), _request("t2", (0, 1)))
        certificate = CommitCertificate(
            shard=0, view=0, sequence=1, batch_digest=batch_digest(requests), signatures=()
        )
        forward = Forward(
            sender=ReplicaId(0, 2),
            requests=requests,
            certificate=certificate,
            batch_digest=batch_digest(requests),
            origin_shard=0,
        )
        payload = forward.payload_bytes()
        assert b"t1" in payload and b"t2" in payload

    def test_execute_payload_contains_write_sets(self):
        execute = Execute(
            sender=ReplicaId(1, 0),
            batch_digest=b"\x03" * 32,
            txn_ids=("t1",),
            write_sets={0: {"user1": "value-xyz"}},
            origin_shard=1,
        )
        assert b"value-xyz" in execute.payload_bytes()

    def test_remote_view_identifies_target_shard(self):
        message = RemoteView(sender=ReplicaId(1, 0), batch_digest=b"\x04" * 32, target_shard=0)
        assert message.target_shard == 0
        assert message.wire_size() == MESSAGE_SIZES["RemoteView"]


class TestMessageStats:
    def test_record_accumulates_counts_and_bytes(self):
        stats = MessageStats()
        stats.record(Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32))
        stats.record(Checkpoint(sender=ReplicaId(0, 0), sequence=2, state_digest=b"\x00" * 32))
        assert stats.sent_count["Checkpoint"] == 2
        assert stats.total_bytes == 2 * MESSAGE_SIZES["Checkpoint"]

    def test_merged_with_combines_both_sides(self):
        first, second = MessageStats(), MessageStats()
        first.record(Checkpoint(sender=ReplicaId(0, 0), sequence=1, state_digest=b"\x00" * 32))
        second.record(Prepare(sender=ReplicaId(0, 0), view=0, sequence=1, batch_digest=b"\x00" * 32))
        merged = first.merged_with(second)
        assert merged.total_messages == 2
        assert set(merged.sent_count) == {"Checkpoint", "Prepare"}


class TestBatcher:
    def test_batch_completes_at_configured_size(self):
        batcher = Batcher(batch_size=3)
        assert batcher.add(_request("t1")) is None
        assert batcher.add(_request("t2")) is None
        batch = batcher.add(_request("t3"))
        assert batch is not None and len(batch) == 3
        assert batcher.pending == 0

    def test_requests_grouped_by_involved_shard_set(self):
        batcher = Batcher(batch_size=2)
        assert batcher.add(_request("single", (0,))) is None
        assert batcher.add(_request("cross", (0, 1))) is None
        batch = batcher.add(_request("single-2", (0,)))
        assert batch is not None
        assert {r.transaction.txn_id for r in batch} == {"single", "single-2"}

    def test_flush_returns_partial_batches(self):
        batcher = Batcher(batch_size=10)
        batcher.add(_request("a", (0,)))
        batcher.add(_request("b", (0, 1)))
        flushed = batcher.flush()
        assert len(flushed) == 2
        assert batcher.pending == 0

    def test_size_one_batches_complete_immediately(self):
        batcher = Batcher(batch_size=1)
        assert batcher.add(_request("a")) is not None


class TestPrePrepare:
    def test_preprepare_carries_requests_and_digest(self):
        requests = (_request("t1"), _request("t2"))
        message = PrePrepare(
            sender=ReplicaId(0, 0),
            view=0,
            sequence=7,
            batch_digest=batch_digest(requests),
            requests=requests,
        )
        assert message.sequence == 7
        assert batch_digest(message.requests) == message.batch_digest
