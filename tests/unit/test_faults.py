"""Unit tests for the fault injector (scheduling and state changes)."""

from repro.faults.injector import FaultInjector

from tests.conftest import build_cluster


class TestFaultInjector:
    def test_crash_primary_immediately(self):
        cluster = build_cluster()
        injector = FaultInjector(cluster)
        injector.crash_primary(0)
        assert cluster.primary_of(0).crashed
        assert any("crashed primary" in entry for _, entry in injector.log)

    def test_crash_primary_at_future_time(self):
        cluster = build_cluster()
        injector = FaultInjector(cluster)
        injector.crash_primary(1, at=5.0)
        assert not cluster.primary_of(1).crashed
        cluster.run(duration=6.0)
        assert cluster.primary_of(1).crashed
        assert injector.log[0][0] >= 5.0

    def test_crash_and_recover_replica(self):
        cluster = build_cluster()
        injector = FaultInjector(cluster)
        injector.crash_replica(0, 2)
        assert cluster.replica(0, 2).crashed
        injector.recover_replica(0, 2)
        assert not cluster.replica(0, 2).crashed

    def test_silence_primary_sets_flag(self):
        cluster = build_cluster()
        FaultInjector(cluster).silence_primary(0)
        assert cluster.primary_of(0).byzantine_silent

    def test_dark_attack_limits_victims_to_f(self):
        cluster = build_cluster()
        FaultInjector(cluster).dark_attack(0, victims=99)
        primary = cluster.primary_of(0)
        assert len(primary.dark_targets) == cluster.directory.quorum(0).f
        assert primary.replica_id not in primary.dark_targets

    def test_drop_forwards_marks_replicas(self):
        cluster = build_cluster()
        FaultInjector(cluster).drop_forwards(0, replicas=2)
        flags = [r.drop_forwards for r in cluster.shard_replicas(0)]
        assert flags.count(True) == 2

    def test_block_and_heal_cross_shard_link(self):
        cluster = build_cluster()
        injector = FaultInjector(cluster)
        injector.block_cross_shard_link(0, 1)
        conditions = cluster.network.conditions
        blocked = sum(
            1
            for src in cluster.directory.replicas_of(0)
            for dst in cluster.directory.replicas_of(1)
            if (src, dst) in conditions.blocked_links
        )
        assert blocked == 16
        injector.heal_cross_shard_link(0, 1)
        assert not conditions.blocked_links

    def test_message_loss_setting(self):
        cluster = build_cluster()
        FaultInjector(cluster).set_message_loss(0.25)
        assert cluster.network.conditions.drop_probability == 0.25
