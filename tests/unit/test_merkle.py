"""Unit tests for the Merkle tree used by block roots."""

import pytest

from repro.common.crypto import sha256
from repro.common.merkle import BucketedDigest, MerkleTree, merkle_root
from repro.errors import LedgerError


class TestMerkleTree:
    def test_single_leaf_root_is_stable(self):
        assert MerkleTree([b"only"]).root == MerkleTree([b"only"]).root

    def test_root_changes_with_leaf_content(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root

    def test_root_changes_with_leaf_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_empty_tree_is_rejected(self):
        with pytest.raises(LedgerError):
            MerkleTree([])

    def test_leaf_count(self):
        assert MerkleTree([b"a", b"b", b"c"]).leaf_count == 3

    def test_merkle_root_helper_matches_tree(self):
        leaves = [b"x", b"y", b"z"]
        assert merkle_root(leaves) == MerkleTree(leaves).root

    def test_odd_leaf_counts_are_supported(self):
        for count in (1, 3, 5, 7, 9):
            leaves = [f"leaf-{i}".encode() for i in range(count)]
            tree = MerkleTree(leaves)
            assert len(tree.root) == 32

    def test_leaf_digest_is_domain_separated_from_node_digest(self):
        # A tree over one leaf must not equal the raw hash of the leaf, or an
        # attacker could confuse leaves with inner nodes.
        assert MerkleTree([b"data"]).root != sha256(b"data")


class TestMerkleProofs:
    def test_valid_proof_verifies_for_every_leaf(self):
        leaves = [f"txn-{i}".encode() for i in range(7)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.proof(index)
            assert MerkleTree.verify_proof(leaf, proof, tree.root)

    def test_proof_fails_for_wrong_leaf(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        proof = tree.proof(1)
        assert not MerkleTree.verify_proof(b"not-b", proof, tree.root)

    def test_proof_fails_against_wrong_root(self):
        leaves = [b"a", b"b", b"c", b"d"]
        tree = MerkleTree(leaves)
        other = MerkleTree([b"w", b"x", b"y", b"z"])
        proof = tree.proof(2)
        assert not MerkleTree.verify_proof(b"c", proof, other.root)

    def test_proof_index_out_of_range(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(LedgerError):
            tree.proof(5)

    def test_proof_path_length_is_logarithmic(self):
        leaves = [f"{i}".encode() for i in range(16)]
        tree = MerkleTree(leaves)
        assert len(tree.proof(0).path) == 4


class TestBucketedDigest:
    def test_root_is_pure_function_of_entry_set(self):
        # Incremental arrival and bulk install must converge on one root.
        incremental = BucketedDigest()
        for i in range(50):
            incremental.update(f"key-{i}", f"key-{i}=v{i}".encode())
            incremental.root()  # interleave refreshes with mutations
        bulk = BucketedDigest()
        for i in reversed(range(50)):
            bulk.update(f"key-{i}", f"key-{i}=v{i}".encode())
        assert incremental.root() == bulk.root()

    def test_root_changes_with_any_leaf(self):
        a = BucketedDigest()
        b = BucketedDigest()
        for digest in (a, b):
            for i in range(10):
                digest.update(f"key-{i}", f"key-{i}=v{i}".encode())
        assert a.root() == b.root()
        b.update("key-3", b"key-3=tampered")
        assert a.root() != b.root()

    def test_only_touched_buckets_are_dirty(self):
        digest = BucketedDigest()
        for i in range(100):
            digest.update(f"key-{i}", b"leaf")
        digest.root()
        assert digest.dirty_buckets == 0
        digest.update("key-7", b"leaf2")
        assert digest.dirty_buckets == 1

    def test_remove_restores_prior_root(self):
        digest = BucketedDigest()
        digest.update("stay", b"stay=1")
        before = digest.root()
        digest.update("transient", b"transient=1")
        assert digest.root() != before
        digest.remove("transient")
        assert digest.root() == before

    def test_remove_of_absent_key_is_a_noop(self):
        digest = BucketedDigest()
        digest.update("k", b"v")
        root = digest.root()
        digest.remove("missing")
        assert digest.dirty_buckets == 0
        assert digest.root() == root

    def test_reset_matches_fresh_instance(self):
        digest = BucketedDigest()
        for i in range(20):
            digest.update(f"key-{i}", b"leaf")
        digest.reset()
        assert digest.entry_count == 0
        assert digest.root() == BucketedDigest().root()

    def test_zero_buckets_rejected(self):
        with pytest.raises(LedgerError):
            BucketedDigest(num_buckets=0)

    def test_bucket_count_changes_partitioning_root(self):
        # The bucket count is part of the digest definition; replicas must
        # agree on it (it is a constructor constant, not negotiated state).
        a = BucketedDigest(num_buckets=4)
        b = BucketedDigest(num_buckets=8)
        for digest in (a, b):
            for i in range(10):
                digest.update(f"key-{i}", b"leaf")
        assert len(a.root()) == 32
        assert len(b.root()) == 32
