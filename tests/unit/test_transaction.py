"""Unit tests for deterministic transactions and read/write sets."""

import pytest

from repro.errors import MalformedMessageError
from repro.txn.transaction import Operation, OpType, Transaction, TransactionBuilder


def _simple_txn(txn_id="t1"):
    return (
        TransactionBuilder(txn_id, "client-0")
        .read_modify_write(0, "user1", "v1")
        .build()
    )


def _cross_txn(txn_id="t2", shards=(0, 1, 2)):
    builder = TransactionBuilder(txn_id, "client-0")
    for shard in shards:
        builder.read_modify_write(shard, f"user{shard * 10}", f"v{shard}")
    return builder.build()


class TestTransactionBasics:
    def test_empty_transaction_rejected(self):
        with pytest.raises(MalformedMessageError):
            Transaction(txn_id="empty", client_id="c", operations=())

    def test_single_shard_detection(self):
        txn = _simple_txn()
        assert txn.involved_shards == frozenset({0})
        assert not txn.is_cross_shard

    def test_cross_shard_detection(self):
        txn = _cross_txn()
        assert txn.involved_shards == frozenset({0, 1, 2})
        assert txn.is_cross_shard

    def test_fragment_for_shard(self):
        txn = _cross_txn()
        fragment = txn.fragment_for(1)
        assert all(op.shard == 1 for op in fragment)
        assert len(fragment) == 2  # the read and the write

    def test_keys_for_shard(self):
        txn = _cross_txn()
        assert txn.keys_for(2) == frozenset({"user20"})
        assert txn.keys_for(5) == frozenset()

    def test_read_and_write_keys(self):
        txn = (
            TransactionBuilder("t", "c")
            .read(0, "a")
            .write(0, "b", "value")
            .build()
        )
        assert txn.read_keys_for(0) == frozenset({"a"})
        assert txn.write_keys_for(0) == frozenset({"b"})

    def test_digest_is_stable_and_unique(self):
        assert _simple_txn().digest() == _simple_txn().digest()
        assert _simple_txn("a").digest() != _simple_txn("b").digest()

    def test_builder_chaining_returns_builder(self):
        builder = TransactionBuilder("t", "c")
        assert builder.read(0, "k") is builder


class TestComplexTransactions:
    def test_dependency_makes_transaction_complex(self):
        txn = (
            TransactionBuilder("t", "c")
            .read_modify_write(0, "a", "v")
            .write(1, "b", "v", depends_on=((0, "a"),))
            .build()
        )
        assert txn.is_complex
        assert not txn.is_simple
        assert txn.remote_read_count == 1

    def test_dependencies_extend_involved_shards(self):
        txn = (
            TransactionBuilder("t", "c")
            .write(1, "b", "v", depends_on=((3, "remote-key"),))
            .build()
        )
        assert txn.involved_shards == frozenset({1, 3})

    def test_simple_cross_shard_has_no_dependencies(self):
        assert _cross_txn().is_simple
        assert _cross_txn().remote_read_count == 0


class TestConflicts:
    def test_write_write_conflict(self):
        a = TransactionBuilder("a", "c").write(0, "k", "1").build()
        b = TransactionBuilder("b", "c").write(0, "k", "2").build()
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_read_write_conflict(self):
        a = TransactionBuilder("a", "c").read(0, "k").build()
        b = TransactionBuilder("b", "c").write(0, "k", "2").build()
        assert a.conflicts_with(b)

    def test_read_read_is_not_a_conflict(self):
        a = TransactionBuilder("a", "c").read(0, "k").build()
        b = TransactionBuilder("b", "c").read(0, "k").build()
        assert not a.conflicts_with(b)

    def test_disjoint_keys_do_not_conflict(self):
        a = TransactionBuilder("a", "c").write(0, "k1", "1").build()
        b = TransactionBuilder("b", "c").write(0, "k2", "2").build()
        assert not a.conflicts_with(b)

    def test_same_key_different_shards_do_not_conflict(self):
        a = TransactionBuilder("a", "c").write(0, "k", "1").build()
        b = TransactionBuilder("b", "c").write(1, "k", "2").build()
        assert not a.conflicts_with(b)


class TestWireFormat:
    def test_to_wire_roundtrip_fields(self):
        txn = _cross_txn()
        wire = txn.to_wire()
        assert wire["txn_id"] == txn.txn_id
        assert len(wire["operations"]) == len(txn.operations)

    def test_operation_wire_format_includes_dependencies(self):
        op = Operation(shard=0, key="k", op_type=OpType.WRITE, value="v", depends_on=((1, "x"),))
        assert op.to_wire()["deps"] == [[1, "x"]]
