"""Unit tests for the partitioned YCSB-style key-value store."""

import pytest

from repro.errors import StorageError
from repro.storage.kvstore import KeyValueStore, ShardedKeyValueStore, ycsb_key


class TestKeyValueStore:
    def test_load_and_read(self):
        store = KeyValueStore(shard_id=0)
        store.load({"user1": "a", "user2": "b"})
        assert store.read("user1") == "a"
        assert len(store) == 2

    def test_read_missing_key_raises(self):
        store = KeyValueStore(shard_id=0)
        with pytest.raises(StorageError):
            store.read("absent")

    def test_write_updates_value_and_version(self):
        store = KeyValueStore(shard_id=0)
        store.load({"user1": "a"})
        assert store.version("user1") == 0
        store.write("user1", "b")
        assert store.read("user1") == "b"
        assert store.version("user1") == 1

    def test_blind_insert_creates_row(self):
        store = KeyValueStore(shard_id=0)
        store.write("new-key", "value")
        assert "new-key" in store
        assert store.version("new-key") == 1

    def test_snapshot_digest_input_changes_with_state(self):
        store = KeyValueStore(shard_id=0)
        store.load({"user1": "a"})
        before = store.snapshot_digest_input()
        store.write("user1", "b")
        assert store.snapshot_digest_input() != before

    def test_items_returns_copy(self):
        store = KeyValueStore(shard_id=0)
        store.load({"user1": "a"})
        items = store.items()
        items["user1"] = "mutated"
        assert store.read("user1") == "a"


class TestShardedKeyValueStore:
    def test_ycsb_key_format(self):
        assert ycsb_key(42) == "user42"

    def test_every_record_has_exactly_one_owner(self):
        table = ShardedKeyValueStore((0, 1, 2), num_records=300)
        owners = [table.owner_of(i) for i in range(300)]
        assert set(owners) == {0, 1, 2}
        assert owners == sorted(owners)  # range partitioning

    def test_partitions_cover_all_records_without_overlap(self):
        table = ShardedKeyValueStore((0, 1, 2, 3), num_records=1000)
        seen = set()
        for shard in (0, 1, 2, 3):
            records = set(table.records_for(shard))
            assert not records & seen
            seen |= records
        assert seen == set(range(1000))

    def test_owner_of_key_matches_owner_of_index(self):
        table = ShardedKeyValueStore((0, 1, 2), num_records=600)
        assert table.owner_of_key("user250") == table.owner_of(250)

    def test_owner_of_key_rejects_non_ycsb_keys(self):
        table = ShardedKeyValueStore((0, 1), num_records=10)
        with pytest.raises(StorageError):
            table.owner_of_key("not-a-key")

    def test_out_of_range_record_rejected(self):
        table = ShardedKeyValueStore((0, 1), num_records=10)
        with pytest.raises(StorageError):
            table.owner_of(10)

    def test_local_record_wraps_offset(self):
        table = ShardedKeyValueStore((0, 1, 2), num_records=30)
        assert table.local_record(1, 0) == table.local_record(1, 10)

    def test_local_record_is_owned_by_requested_shard(self):
        table = ShardedKeyValueStore((0, 1, 2), num_records=600)
        for shard in (0, 1, 2):
            for offset in (0, 7, 199):
                key = table.local_record(shard, offset)
                assert table.owner_of_key(key) == shard

    def test_build_partition_contents(self):
        table = ShardedKeyValueStore((0, 1), num_records=20)
        partition = table.build_partition(1, initial_value="seed")
        assert len(partition) == 10
        assert all(value == "seed" for value in partition.values())
        assert all(table.owner_of_key(key) == 1 for key in partition)

    def test_non_divisible_record_count_assigns_remainder_to_last_shard(self):
        table = ShardedKeyValueStore((0, 1, 2), num_records=100)
        total = sum(len(table.records_for(s)) for s in (0, 1, 2))
        assert total == 100
        assert len(table.records_for(2)) >= len(table.records_for(0))

    def test_unknown_shard_rejected(self):
        table = ShardedKeyValueStore((0, 1), num_records=10)
        with pytest.raises(StorageError):
            table.records_for(5)

    def test_constructor_validation(self):
        with pytest.raises(StorageError):
            ShardedKeyValueStore((), num_records=10)
        with pytest.raises(StorageError):
            ShardedKeyValueStore((0,), num_records=0)
