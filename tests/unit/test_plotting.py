"""Unit tests for ASCII chart rendering and the CLI plot command."""

from repro.cli import main
from repro.metrics.plotting import figure_chart, horizontal_bars, series_chart


class TestHorizontalBars:
    def test_bars_scale_with_values(self):
        chart = horizontal_bars([("a", 100.0), ("b", 50.0)], title="demo")
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert lines[1].count("#") > lines[2].count("#")

    def test_value_formatting(self):
        chart = horizontal_bars([("x", 1_500_000.0), ("y", 2_500.0), ("z", 3.5)])
        assert "1.50M" in chart
        assert "2.5K" in chart
        assert "3.50" in chart

    def test_zero_values_render_without_bars(self):
        chart = horizontal_bars([("empty", 0.0), ("full", 10.0)])
        empty_line = chart.splitlines()[0]
        assert "#" not in empty_line

    def test_empty_series(self):
        assert "(no data)" in horizontal_bars([], title="nothing")


class TestSeriesChart:
    ROWS = [
        {"protocol": "RingBFT", "num_shards": 3, "throughput_tps": 60_000.0, "latency_s": 0.4},
        {"protocol": "RingBFT", "num_shards": 15, "throughput_tps": 90_000.0, "latency_s": 4.0},
        {"protocol": "AHL", "num_shards": 3, "throughput_tps": 20_000.0, "latency_s": 0.2},
        {"protocol": "AHL", "num_shards": 15, "throughput_tps": 4_500.0, "latency_s": 0.6},
    ]

    def test_groups_by_protocol(self):
        chart = series_chart(self.ROWS, x_key="num_shards", y_key="throughput_tps", title="t")
        assert "RingBFT" in chart and "AHL" in chart
        assert chart.count("(throughput_tps vs num_shards)") == 2

    def test_figure_chart_includes_throughput_and_latency(self):
        chart = figure_chart("figure8-shards", self.ROWS)
        assert "throughput" in chart
        assert "latency" in chart

    def test_figure_chart_handles_empty_rows(self):
        assert figure_chart("anything", []) == "(no data)"


class TestCliPlot:
    def test_plot_command_renders_chart(self, capsys):
        assert main(["plot", "figure10"]) == 0
        out = capsys.readouterr().out
        assert "RingBFT" in out
        assert "#" in out
        assert "throughput" in out
