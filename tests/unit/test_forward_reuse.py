"""Forward messages are reused across retransmissions (ROADMAP open item).

``_send_forward`` used to rebuild the Forward object on every
(re)transmission, so the frozen object's payload memo and MAC vector never
amortised.  It now rebuilds only when the record's accumulated read sets
actually changed.
"""

from repro.common.messages import Forward
from repro.config import SystemConfig, WorkloadConfig
from repro.core.records import CrossShardRecord
from repro.engine import Deployment
from repro.txn.transaction import TransactionBuilder


def _deployment():
    config = SystemConfig.uniform(
        2,
        4,
        workload=WorkloadConfig(
            num_records=200, cross_shard_fraction=1.0, batch_size=1, num_clients=1, seed=7
        ),
    )
    return Deployment.build(config, backend="sim", num_clients=1, batch_size=1, seed=7)


def _cross_txn():
    return (
        TransactionBuilder("cross-1", "client-0")
        .read_modify_write(0, "user3", "a")
        .read_modify_write(1, "user150", "b")
        .build()
    )


def _run_cross_shard(deployment):
    result = deployment.run_workload([_cross_txn()], timeout=120.0)
    assert result.all_completed
    # The default checkpoint interval (100) never fires here, so the record
    # survives for inspection.
    replica = deployment.primary_of(0)
    record = next(iter(replica._cross_records.values()))
    return replica, record


class TestForwardReuse:
    def test_retransmission_reuses_the_same_forward_object(self):
        deployment = _deployment()
        replica, record = _run_cross_shard(deployment)
        sent: list[Forward] = []
        replica.send = lambda dst, message: sent.append(message)  # type: ignore[assignment]
        replica._send_forward(record)
        replica._send_forward(record)
        assert len(sent) == 2
        assert sent[0] is sent[1], "unchanged read sets must not rebuild the Forward"
        assert sent[0] is record.cached_forward

    def test_changed_read_sets_rebuild_the_forward(self):
        deployment = _deployment()
        replica, record = _run_cross_shard(deployment)
        sent: list[Forward] = []
        replica.send = lambda dst, message: sent.append(message)  # type: ignore[assignment]
        replica._send_forward(record)
        record.merge_write_sets({1: {"user150": "a-new-value"}})
        replica._send_forward(record)
        assert len(sent) == 2
        assert sent[0] is not sent[1], "changed read sets must rebuild the Forward"
        assert sent[1].read_sets[1]["user150"] == "a-new-value"

    def test_auth_tags_survive_reuse(self):
        """A reused Forward keeps its MAC vector: no re-tagging per retransmit."""
        deployment = _deployment()
        replica, record = _run_cross_shard(deployment)
        replica.send = lambda dst, message: None  # type: ignore[assignment]
        replica._send_forward(record)
        tags_created = replica.auth_tags_created
        replica._send_forward(record)
        replica._send_forward(record)
        assert replica.auth_tags_created == tags_created


class TestWriteSetVersioning:
    def test_merging_identical_values_does_not_bump_the_version(self):
        record = CrossShardRecord(batch_digest=b"\x01" * 32, involved_shards=frozenset({0, 1}))
        record.merge_write_sets({0: {"k": "v"}})
        version = record.write_sets_version
        record.merge_write_sets({0: {"k": "v"}})
        assert record.write_sets_version == version

    def test_new_keys_and_changed_values_bump_the_version(self):
        record = CrossShardRecord(batch_digest=b"\x01" * 32, involved_shards=frozenset({0, 1}))
        record.merge_write_sets({0: {"k": "v"}})
        v1 = record.write_sets_version
        record.merge_write_sets({0: {"k2": "w"}})
        v2 = record.write_sets_version
        record.merge_write_sets({0: {"k": "changed"}})
        assert v1 < v2 < record.write_sets_version

    def test_add_local_writes_is_version_tracked(self):
        record = CrossShardRecord(batch_digest=b"\x01" * 32, involved_shards=frozenset({0, 1}))
        record.add_local_writes(0, {"k": "v"})
        version = record.write_sets_version
        record.add_local_writes(0, {"k": "v"})
        assert record.write_sets_version == version
        record.add_local_writes(0, {"k": "v2"})
        assert record.write_sets_version == version + 1
