"""Strict-typing gate for the wire format and the protocol core.

``repro.common`` and ``repro.consensus`` are the strict-mypy perimeter
(configured in pyproject.toml); the CI static-analysis job runs mypy
directly, and this test runs the same check wherever mypy happens to be
installed so the gate is also enforced by a plain local pytest run.  The
container image for the tier-1 suite does not ship mypy, so the test skips
there rather than failing.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

mypy = pytest.importorskip("mypy", reason="mypy is not installed; CI runs this gate")


def test_py_typed_marker_ships():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").is_file()


def test_strict_perimeter_typechecks():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"mypy --strict failed:\n{result.stdout}\n{result.stderr}"
