"""Unit tests for the execution engine and the checkpoint store."""

from repro.storage.checkpoint import CheckpointStore
from repro.storage.executor import ExecutionEngine
from repro.storage.kvstore import KeyValueStore
from repro.txn.transaction import TransactionBuilder


def _engine(shard_id=0, records=None):
    store = KeyValueStore(shard_id=shard_id)
    store.load(records or {"user1": "init", "user2": "init"})
    return ExecutionEngine(shard_id, store), store


class TestExecutionEngine:
    def test_read_modify_write_applies_value(self):
        engine, store = _engine()
        txn = TransactionBuilder("t1", "c").read_modify_write(0, "user1", "updated").build()
        result = engine.execute_fragment(txn)
        assert result.reads == {"user1": "init"}
        assert result.writes == {"user1": "updated"}
        assert store.read("user1") == "updated"

    def test_execution_is_idempotent(self):
        engine, store = _engine()
        txn = TransactionBuilder("t1", "c").read_modify_write(0, "user1", "v").build()
        first = engine.execute_fragment(txn)
        second = engine.execute_fragment(txn)
        assert first is second
        assert store.version("user1") == 1

    def test_only_local_fragment_is_executed(self):
        engine, store = _engine()
        txn = (
            TransactionBuilder("t1", "c")
            .read_modify_write(0, "user1", "local")
            .read_modify_write(1, "user999", "remote")
            .build()
        )
        result = engine.execute_fragment(txn)
        assert "user999" not in result.writes
        assert "user999" not in store

    def test_missing_local_read_returns_empty_string(self):
        engine, _ = _engine(records={"user1": "x"})
        txn = TransactionBuilder("t1", "c").read(0, "user404").build()
        result = engine.execute_fragment(txn)
        assert result.reads == {"user404": ""}

    def test_dependency_resolved_from_remote_values(self):
        engine, store = _engine()
        txn = (
            TransactionBuilder("t1", "c")
            .write(0, "user1", "base", depends_on=((2, "remote-key"),))
            .build()
        )
        result = engine.execute_fragment(txn, remote_values={2: {"remote-key": "rv"}})
        assert result.complete
        assert "2:remote-key=rv" in result.writes["user1"]
        assert "2:remote-key=rv" in store.read("user1")

    def test_missing_dependency_is_reported(self):
        engine, _ = _engine()
        txn = (
            TransactionBuilder("t1", "c")
            .write(0, "user1", "base", depends_on=((2, "remote-key"),))
            .build()
        )
        result = engine.execute_fragment(txn)
        assert not result.complete
        assert result.missing_dependencies == frozenset({(2, "remote-key")})

    def test_local_dependency_resolved_from_own_store(self):
        engine, _ = _engine(records={"user1": "init", "user2": "neighbour"})
        txn = (
            TransactionBuilder("t1", "c")
            .write(0, "user1", "base", depends_on=((0, "user2"),))
            .build()
        )
        result = engine.execute_fragment(txn)
        assert "0:user2=neighbour" in result.writes["user1"]

    def test_execute_batch_preserves_order(self):
        engine, store = _engine()
        first = TransactionBuilder("t1", "c").write(0, "user1", "one").build()
        second = TransactionBuilder("t2", "c").write(0, "user1", "two").build()
        engine.execute_batch([first, second])
        assert store.read("user1") == "two"
        assert engine.executed_count == 2

    def test_result_for_unknown_txn_raises(self):
        engine, _ = _engine()
        import pytest

        from repro.errors import StorageError

        with pytest.raises(StorageError):
            engine.result_for("ghost")


class TestCheckpointStore:
    def _txns(self, prefix, count):
        return tuple(
            TransactionBuilder(f"{prefix}-{i}", "c").read_modify_write(0, "user1", "v").build()
            for i in range(count)
        )

    def test_should_checkpoint_every_interval(self):
        checkpoints = CheckpointStore(interval=10)
        assert checkpoints.should_checkpoint(10)
        assert checkpoints.should_checkpoint(20)
        assert not checkpoints.should_checkpoint(5)
        assert not checkpoints.should_checkpoint(0)

    def test_checkpoint_becomes_stable_with_quorum(self):
        checkpoints = CheckpointStore(interval=5)
        for seq in range(1, 6):
            checkpoints.record_batch(seq, self._txns(f"b{seq}", 2))
        assert not checkpoints.add_vote(5, "r0", quorum=3)
        assert not checkpoints.add_vote(5, "r1", quorum=3)
        assert checkpoints.add_vote(5, "r2", quorum=3)
        assert checkpoints.last_stable_sequence == 5

    def test_duplicate_votes_do_not_reach_quorum(self):
        checkpoints = CheckpointStore(interval=5)
        assert not checkpoints.add_vote(5, "r0", quorum=2)
        assert not checkpoints.add_vote(5, "r0", quorum=2)

    def test_stable_checkpoint_truncates_log(self):
        checkpoints = CheckpointStore(interval=3)
        for seq in range(1, 7):
            checkpoints.record_batch(seq, self._txns(f"b{seq}", 1))
        for replica in ("r0", "r1", "r2"):
            checkpoints.add_vote(3, replica, quorum=3)
        assert checkpoints.log_size == 3  # batches 4-6 remain
        assert [seq for seq, _ in checkpoints.batches_after(3)] == [4, 5, 6]

    def test_stable_record_covers_batches_since_previous_checkpoint(self):
        checkpoints = CheckpointStore(interval=2)
        checkpoints.record_batch(1, self._txns("a", 1))
        checkpoints.record_batch(2, self._txns("b", 1))
        for replica in ("r0", "r1", "r2"):
            checkpoints.add_vote(2, replica, quorum=3)
        record = checkpoints.stable_record(2)
        assert record is not None
        assert [seq for seq, _ in record.batches] == [1, 2]

    def test_old_checkpoints_do_not_regress_stability(self):
        checkpoints = CheckpointStore(interval=2)
        for replica in ("r0", "r1", "r2"):
            checkpoints.add_vote(4, replica, quorum=3)
        assert checkpoints.last_stable_sequence == 4
        for replica in ("r0", "r1", "r2"):
            checkpoints.add_vote(2, replica, quorum=3)
        assert checkpoints.last_stable_sequence == 4
