"""Property-based tests: the binary codec round-trips every message type.

``decode(encode(m)) == m`` must hold for randomly generated instances of the
whole protocol message set (core PBFT, RingBFT cross-shard, state transfer,
and both baselines), and the encoding must be injective over distinct values.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.ahl.messages import (
    CommitteeDecision,
    CommitteeVote,
    Decide2PC,
    Prepare2PC,
    Vote2PC,
)
from repro.baselines.sharper.messages import CrossCommit, CrossPrepare, CrossPropose
from repro.common.codec import decode_canonical, encode_canonical
from repro.common.crypto import Signature
from repro.common.messages import (
    Checkpoint,
    ClientRequest,
    ClientResponse,
    Commit,
    CommitCertificate,
    Execute,
    Forward,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    RemoteView,
    StateTransferReply,
    StateTransferRequest,
    ViewChange,
)
from repro.common.types import ReplicaId
from repro.storage.ledger import Block
from repro.txn.transaction import Operation, OpType, Transaction

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

short_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x10FF), min_size=1, max_size=8
)
digests = st.binary(min_size=32, max_size=32)
shard_ids = st.integers(min_value=0, max_value=5)
sequences = st.integers(min_value=0, max_value=1_000)
views = st.integers(min_value=0, max_value=10)

replica_ids = st.builds(ReplicaId, shard=shard_ids, index=st.integers(0, 3))
senders = st.one_of(replica_ids, short_text)

operations = st.builds(
    Operation,
    shard=shard_ids,
    key=short_text,
    op_type=st.sampled_from(OpType),
    value=short_text,
    depends_on=st.lists(st.tuples(shard_ids, short_text), max_size=2).map(tuple),
)
transactions = st.builds(
    Transaction,
    txn_id=short_text,
    client_id=short_text,
    operations=st.lists(operations, min_size=1, max_size=3).map(tuple),
)
signatures = st.builds(Signature, signer=short_text, value=digests)
maybe_signature = st.none() | signatures
client_requests = st.builds(
    ClientRequest, sender=short_text, transaction=transactions, signature=maybe_signature
)
request_tuples = st.lists(client_requests, min_size=1, max_size=2).map(tuple)
kv_dicts = st.dictionaries(short_text, short_text, max_size=2)
rw_sets = st.dictionaries(shard_ids, kv_dicts, max_size=2)
certificates = st.builds(
    CommitCertificate,
    shard=shard_ids,
    view=views,
    sequence=sequences,
    batch_digest=digests,
    signatures=st.lists(signatures, max_size=3).map(tuple),
)
pre_prepares = st.builds(
    PrePrepare,
    sender=replica_ids,
    view=views,
    sequence=sequences,
    batch_digest=digests,
    requests=request_tuples,
)
prepared_proofs = st.builds(
    PreparedProof,
    sequence=sequences,
    view=views,
    batch_digest=digests,
    prepares=st.integers(1, 5),
    requests=request_tuples,
)
blocks = st.builds(
    Block,
    height=sequences,
    sequence=sequences,
    shard_id=shard_ids,
    primary=short_text,
    merkle_root=digests,
    previous_hash=digests,
    txn_ids=st.lists(short_text, max_size=3).map(tuple),
    involved_shards=st.frozensets(shard_ids, min_size=1, max_size=3),
)

MESSAGE_STRATEGIES: dict[str, st.SearchStrategy] = {
    "ClientRequest": client_requests,
    "ClientResponse": st.builds(
        ClientResponse,
        sender=replica_ids,
        txn_id=short_text,
        sequence=sequences,
        result=kv_dicts,
        shard=shard_ids,
    ),
    "PrePrepare": pre_prepares,
    "Prepare": st.builds(
        Prepare, sender=replica_ids, view=views, sequence=sequences, batch_digest=digests
    ),
    "Commit": st.builds(
        Commit,
        sender=replica_ids,
        view=views,
        sequence=sequences,
        batch_digest=digests,
        signature=maybe_signature,
    ),
    "CommitCertificate": certificates,
    "Forward": st.builds(
        Forward,
        sender=replica_ids,
        requests=request_tuples,
        certificate=certificates,
        batch_digest=digests,
        origin_shard=shard_ids,
        read_sets=rw_sets,
        signature=maybe_signature,
    ),
    "Execute": st.builds(
        Execute,
        sender=replica_ids,
        batch_digest=digests,
        txn_ids=st.lists(short_text, min_size=1, max_size=3).map(tuple),
        write_sets=rw_sets,
        origin_shard=shard_ids,
        signature=maybe_signature,
    ),
    "RemoteView": st.builds(
        RemoteView,
        sender=replica_ids,
        batch_digest=digests,
        target_shard=shard_ids,
        signature=maybe_signature,
    ),
    "Checkpoint": st.builds(
        Checkpoint, sender=replica_ids, sequence=sequences, state_digest=digests
    ),
    "ViewChange": st.builds(
        ViewChange,
        sender=replica_ids,
        new_view=views,
        last_stable_sequence=sequences,
        prepared=st.lists(prepared_proofs, max_size=2).map(tuple),
    ),
    "NewView": st.builds(
        NewView,
        sender=replica_ids,
        view=views,
        view_change_senders=st.lists(short_text, max_size=3).map(tuple),
        reproposals=st.lists(pre_prepares, max_size=2).map(tuple),
        abandoned=st.lists(sequences, max_size=3).map(tuple),
    ),
    "StateTransferRequest": st.builds(
        StateTransferRequest, sender=replica_ids, last_executed=sequences
    ),
    "StateTransferReply": st.builds(
        StateTransferReply,
        sender=replica_ids,
        last_executed=sequences,
        state_digest=digests,
        store_snapshot=kv_dicts,
        executed_txn_ids=st.lists(short_text, max_size=3).map(tuple),
        blocks=st.lists(blocks, max_size=2).map(tuple),
    ),
    "Prepare2PC": st.builds(
        Prepare2PC,
        sender=replica_ids,
        requests=request_tuples,
        batch_digest=digests,
        global_sequence=sequences,
    ),
    "Vote2PC": st.builds(
        Vote2PC,
        sender=replica_ids,
        batch_digest=digests,
        shard=shard_ids,
        commit=st.booleans(),
        signature=maybe_signature,
    ),
    "CommitteeVote": st.builds(
        CommitteeVote, sender=replica_ids, batch_digest=digests, commit=st.booleans()
    ),
    "CommitteeDecision": st.builds(
        CommitteeDecision, sender=replica_ids, batch_digest=digests, commit=st.booleans()
    ),
    "Decide2PC": st.builds(
        Decide2PC,
        sender=replica_ids,
        batch_digest=digests,
        commit=st.booleans(),
        signature=maybe_signature,
    ),
    "CrossPropose": st.builds(
        CrossPropose,
        sender=replica_ids,
        requests=request_tuples,
        batch_digest=digests,
        global_sequence=sequences,
    ),
    "CrossPrepare": st.builds(
        CrossPrepare, sender=replica_ids, batch_digest=digests, shard=shard_ids
    ),
    "CrossCommit": st.builds(
        CrossCommit, sender=replica_ids, batch_digest=digests, shard=shard_ids
    ),
}

any_message = st.one_of(*MESSAGE_STRATEGIES.values())


class TestCodecRoundTrip:
    @pytest.mark.parametrize("type_name", sorted(MESSAGE_STRATEGIES))
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_every_message_type_round_trips(self, type_name, data):
        message = data.draw(MESSAGE_STRATEGIES[type_name])
        decoded = decode_canonical(encode_canonical(message))
        assert decoded == message
        assert type(decoded) is type(message)

    @settings(max_examples=50, deadline=None)
    @given(message=any_message)
    def test_encoding_is_deterministic(self, message):
        assert encode_canonical(message) == encode_canonical(message)


class TestCodecInjectivity:
    @settings(max_examples=50, deadline=None)
    @given(a=any_message, b=any_message)
    def test_distinct_messages_encode_distinctly(self, a, b):
        if a != b:
            assert encode_canonical(a) != encode_canonical(b)
        else:
            assert encode_canonical(a) == encode_canonical(b)

    @settings(max_examples=50, deadline=None)
    @given(a=transactions, b=transactions)
    def test_distinct_transactions_digest_distinctly(self, a, b):
        # Transaction payloads carry the full envelope, so digest equality
        # must coincide with value equality (modulo SHA-256 collisions).
        if a != b:
            assert a.digest() != b.digest()
        else:
            assert a.digest() == b.digest()
