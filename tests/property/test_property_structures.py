"""Property-based tests for the core data structures (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.common.crypto import KeyStore, SignatureScheme
from repro.common.merkle import MerkleTree
from repro.common.quorum import QuorumSpec, max_faulty
from repro.storage.ledger import Ledger
from repro.txn.ring import RingTopology
from repro.txn.transaction import TransactionBuilder


# ---------------------------------------------------------------------------
# Merkle trees
# ---------------------------------------------------------------------------

leaves_strategy = st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=32)


class TestMerkleProperties:
    @given(leaves=leaves_strategy)
    def test_every_leaf_has_a_valid_proof(self, leaves):
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert MerkleTree.verify_proof(leaf, tree.proof(index), tree.root)

    @given(leaves=leaves_strategy, data=st.data())
    def test_modified_leaf_fails_its_proof(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        tampered = leaves[index] + b"!"
        assert not MerkleTree.verify_proof(tampered, tree.proof(index), tree.root)

    @given(leaves=leaves_strategy)
    def test_root_is_deterministic(self, leaves):
        assert MerkleTree(leaves).root == MerkleTree(leaves).root


# ---------------------------------------------------------------------------
# Quorums
# ---------------------------------------------------------------------------


class TestQuorumProperties:
    @given(n=st.integers(min_value=4, max_value=200))
    def test_commit_quorums_always_intersect_in_a_nonfaulty_replica(self, n):
        spec = QuorumSpec.for_replicas(n)
        # Two commit quorums overlap in more than f replicas.
        overlap = 2 * spec.commit_quorum - n
        assert overlap > spec.f

    @given(n=st.integers(min_value=1, max_value=500))
    def test_max_faulty_respects_bft_bound(self, n):
        f = max_faulty(n)
        assert 3 * f + 1 <= n + 3  # f is the largest integer with n >= 3f+1
        assert n >= 3 * f + 1 or f == 0

    @given(n=st.integers(min_value=4, max_value=200))
    def test_weak_quorum_contains_a_nonfaulty_replica(self, n):
        spec = QuorumSpec.for_replicas(n)
        assert spec.weak_quorum > spec.f


# ---------------------------------------------------------------------------
# Ring order
# ---------------------------------------------------------------------------

ring_strategy = st.lists(
    st.integers(min_value=0, max_value=30), min_size=1, max_size=12, unique=True
)


class TestRingProperties:
    @given(order=ring_strategy, data=st.data())
    def test_route_is_a_permutation_of_the_involved_set(self, order, data):
        ring = RingTopology(order)
        involved = frozenset(
            data.draw(
                st.lists(st.sampled_from(order), min_size=1, max_size=len(order), unique=True)
            )
        )
        route = ring.route(involved)
        assert set(route) == involved
        assert len(route) == len(involved)

    @given(order=ring_strategy, data=st.data())
    def test_following_next_visits_every_involved_shard_once(self, order, data):
        ring = RingTopology(order)
        involved = frozenset(
            data.draw(
                st.lists(st.sampled_from(order), min_size=1, max_size=len(order), unique=True)
            )
        )
        current = ring.first_in_ring_order(involved)
        visited = [current]
        for _ in range(len(involved) - 1):
            current = ring.next_in_ring_order(current, involved)
            visited.append(current)
        assert set(visited) == involved
        # One more hop wraps back to the initiator, closing the rotation.
        assert ring.next_in_ring_order(current, involved) == visited[0]

    @given(order=ring_strategy, data=st.data())
    def test_next_and_prev_are_inverse(self, order, data):
        ring = RingTopology(order)
        involved = frozenset(
            data.draw(
                st.lists(st.sampled_from(order), min_size=1, max_size=len(order), unique=True)
            )
        )
        for shard in involved:
            nxt = ring.next_in_ring_order(shard, involved)
            assert ring.prev_in_ring_order(nxt, involved) == shard

    @given(order=ring_strategy, data=st.data())
    def test_initiator_is_unique_and_shared_by_overlapping_sets(self, order, data):
        ring = RingTopology(order)
        involved = frozenset(
            data.draw(
                st.lists(st.sampled_from(order), min_size=1, max_size=len(order), unique=True)
            )
        )
        initiator = ring.first_in_ring_order(involved)
        assert initiator in involved
        assert ring.position(initiator) == min(ring.position(s) for s in involved)


# ---------------------------------------------------------------------------
# Ledger
# ---------------------------------------------------------------------------


class TestLedgerProperties:
    @settings(max_examples=25)
    @given(
        batches=st.lists(
            st.lists(st.integers(min_value=0, max_value=1_000), min_size=1, max_size=5),
            min_size=1,
            max_size=10,
        )
    )
    def test_chain_verifies_and_preserves_order(self, batches):
        ledger = Ledger(shard_id=0)
        all_ids = []
        for seq, batch in enumerate(batches, start=1):
            txns = []
            for i, key_index in enumerate(batch):
                txn_id = f"txn-{seq}-{i}"
                all_ids.append(txn_id)
                txns.append(
                    TransactionBuilder(txn_id, "c")
                    .read_modify_write(0, f"user{key_index}", f"v{seq}-{i}")
                    .build()
                )
            ledger.append_batch(seq, "p", txns)
        assert ledger.verify_chain()
        assert ledger.height == len(batches)
        assert ledger.commit_order(set(all_ids)) == all_ids


# ---------------------------------------------------------------------------
# Signatures
# ---------------------------------------------------------------------------


class TestSignatureProperties:
    @given(payload=st.binary(min_size=0, max_size=256), signer=st.text(min_size=1, max_size=12))
    def test_sign_verify_roundtrip(self, payload, signer):
        scheme = SignatureScheme(KeyStore())
        assert scheme.verify(scheme.sign(signer, payload), payload)

    @given(
        payload=st.binary(min_size=1, max_size=64),
        other=st.binary(min_size=1, max_size=64),
        signer=st.text(min_size=1, max_size=8),
    )
    def test_signature_does_not_transfer_to_other_payloads(self, payload, other, signer):
        if payload == other:
            return
        scheme = SignatureScheme(KeyStore())
        assert not scheme.verify(scheme.sign(signer, payload), other)
