"""Property-based end-to-end tests: random workloads through the simulator.

Each example builds a small RingBFT deployment, submits a randomly generated
mix of single-shard and cross-shard (possibly conflicting, possibly complex)
transactions, runs the simulation to quiescence, and checks the paper's
correctness properties:

* Termination / involvement: every submitted transaction completes at the client.
* Non-divergence: all replicas of a shard execute the same order (identical
  ledgers).
* Consistence: conflicting cross-shard transactions appear in the same order
  in the ledgers of all involved shards' replicas.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.txn.transaction import TransactionBuilder

from tests.conftest import build_cluster

NUM_SHARDS = 3
KEYS_PER_SHARD = 3


@st.composite
def workloads(draw):
    """A list of transaction specs: (involved shards, key index, complex?)."""
    count = draw(st.integers(min_value=1, max_value=6))
    specs = []
    for _ in range(count):
        involved = draw(
            st.lists(
                st.integers(min_value=0, max_value=NUM_SHARDS - 1),
                min_size=1,
                max_size=NUM_SHARDS,
                unique=True,
            )
        )
        key_index = draw(st.integers(min_value=0, max_value=KEYS_PER_SHARD - 1))
        complex_txn = draw(st.booleans()) and len(involved) > 1
        specs.append((tuple(sorted(involved)), key_index, complex_txn))
    return specs


def _build_txn(cluster, spec, index):
    involved, key_index, complex_txn = spec
    builder = TransactionBuilder(f"prop-{index}", "client-0")
    keys = {shard: cluster.table.local_record(shard, key_index) for shard in involved}
    for shard in involved:
        builder.read(shard, keys[shard])
        deps = ()
        if complex_txn:
            others = [s for s in involved if s != shard]
            if others:
                deps = ((others[0], keys[others[0]]),)
        builder.write(shard, keys[shard], f"prop-{index}@{shard}", depends_on=deps)
    return builder.build()


class TestProtocolProperties:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(specs=workloads())
    def test_random_workloads_terminate_consistently(self, specs):
        cluster = build_cluster(num_shards=NUM_SHARDS, num_clients=1)
        transactions = [_build_txn(cluster, spec, i) for i, spec in enumerate(specs)]
        for txn in transactions:
            cluster.submit(txn)

        assert cluster.run_until_clients_done(timeout=300.0), "some transaction never completed"
        cluster.run(duration=cluster.simulator.now + 5.0)

        assert cluster.completed_transactions() == len(transactions)

        txn_ids = {txn.txn_id for txn in transactions}
        for shard in range(NUM_SHARDS):
            # Non-divergence: identical ledgers (prefix) per shard.
            assert cluster.ledgers_consistent(shard)
            assert cluster.executed_in_same_order(shard, txn_ids)
            # All locks released at quiescence.
            for replica in cluster.shard_replicas(shard):
                assert replica.locks.locked_key_count == 0

        # Consistence for conflicting cross-shard transactions: any pair of
        # involved shards orders them identically.
        for i, a in enumerate(transactions):
            for b in transactions[i + 1:]:
                if not (a.is_cross_shard and b.is_cross_shard and a.conflicts_with(b)):
                    continue
                shared = a.involved_shards & b.involved_shards
                orders = set()
                for shard in shared:
                    for replica in cluster.shard_replicas(shard):
                        order = tuple(replica.ledger.commit_order({a.txn_id, b.txn_id}))
                        if len(order) == 2:
                            orders.add(order)
                assert len(orders) <= 1, f"conflicting order for {a.txn_id}/{b.txn_id}"
