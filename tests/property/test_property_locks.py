"""Property-based tests for the sequence-ordered lock manager.

The lock manager underpins RingBFT's deadlock-freedom argument, so these
properties are checked over randomly generated commit schedules:

* locks are only ever granted in sequence order (``k_max`` never skips an
  unskipped sequence);
* no data item is ever held by two transactions at once;
* once every transaction releases, every lock is free and every pending
  transaction was eventually granted.
"""

from hypothesis import given, settings, strategies as st

from repro.storage.locks import LockManager

#: A schedule entry: (sequence permutation index, keys accessed).
keys_strategy = st.frozensets(st.sampled_from("abcdefgh"), min_size=1, max_size=3)


@st.composite
def schedules(draw):
    """A random out-of-order arrival schedule of sequences 1..n with key sets."""
    n = draw(st.integers(min_value=1, max_value=12))
    order = draw(st.permutations(list(range(1, n + 1))))
    keys = [draw(keys_strategy) for _ in range(n)]
    return [(sequence, keys[sequence - 1]) for sequence in order]


class TestLockManagerProperties:
    @settings(max_examples=60)
    @given(schedule=schedules())
    def test_grants_follow_sequence_order_and_are_exclusive(self, schedule):
        locks = LockManager(shard_id=0)
        granted: list[str] = []

        def note_granted(txn_ids):
            granted.extend(txn_ids)

        for sequence, keys in schedule:
            acquired, unblocked = locks.try_lock(sequence, f"t{sequence}", keys)
            if acquired:
                note_granted([f"t{sequence}"])
            note_granted(unblocked)
            # Exclusivity: every held key has exactly one holder.
            holders = {}
            for txn in granted:
                if locks.holds(txn):
                    for key in locks.held_keys(txn):
                        assert key not in holders
                        holders[key] = txn

        # Grant order respects sequence order.
        grant_sequences = [int(txn_id[1:]) for txn_id in granted]
        assert grant_sequences == sorted(grant_sequences)

    @settings(max_examples=60)
    @given(schedule=schedules())
    def test_all_transactions_eventually_complete(self, schedule):
        locks = LockManager(shard_id=0)
        completed: set[str] = set()

        def complete(txn_id):
            """Simulate execution: release immediately, completing the txn."""
            completed.add(txn_id)
            for unblocked in locks.release(txn_id):
                complete(unblocked)

        for sequence, keys in schedule:
            acquired, unblocked = locks.try_lock(sequence, f"t{sequence}", keys)
            if acquired:
                complete(f"t{sequence}")
            for txn in unblocked:
                complete(txn)

        assert completed == {f"t{sequence}" for sequence, _ in schedule}
        assert locks.locked_key_count == 0
        assert locks.pending_sequences == ()

    @settings(max_examples=40)
    @given(schedule=schedules(), data=st.data())
    def test_skipping_arbitrary_gaps_never_blocks_progress(self, schedule, data):
        # Drop a random subset of sequences (simulating abandoned view-change
        # gaps) and deliver the rest; after skipping the dropped ones, every
        # delivered transaction must complete.
        sequences = [sequence for sequence, _ in schedule]
        dropped = set(
            data.draw(
                st.lists(st.sampled_from(sequences), unique=True, max_size=len(sequences) - 1)
                if len(sequences) > 1
                else st.just([])
            )
        )
        locks = LockManager(shard_id=0)
        completed: set[str] = set()

        def complete(txn_id):
            completed.add(txn_id)
            for unblocked in locks.release(txn_id):
                complete(unblocked)

        for sequence, keys in schedule:
            if sequence in dropped:
                continue
            acquired, unblocked = locks.try_lock(sequence, f"t{sequence}", keys)
            if acquired:
                complete(f"t{sequence}")
            for txn in unblocked:
                complete(txn)
        for sequence in dropped:
            for txn in locks.skip_sequence(sequence):
                complete(txn)

        expected = {f"t{sequence}" for sequence, _ in schedule if sequence not in dropped}
        assert completed == expected
        assert locks.locked_key_count == 0
