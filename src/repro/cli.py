"""Command-line interface.

Examples::

    # List the experiments that regenerate the paper's figures.
    ringbft list

    # Regenerate one figure and print its table.
    ringbft run figure8-shards

    # Run the figure's protocol-mode validation on a chosen execution backend.
    ringbft run figure8-shards --backend realtime

    # Run a small end-to-end protocol demo (simulator or asyncio real time).
    ringbft demo --shards 3 --replicas 4 --transactions 20 --backend sim

    # Sustain open-loop Poisson load across checkpoint intervals and report
    # the retained-state gauges (steady-state memory behaviour).
    ringbft steady --rate 50 --intervals 20 --checkpoint-interval 4

    # Run a full deployment over real TCP loopback, one OS process per
    # replica, and aggregate the fleet's metrics.
    ringbft deploy-local --shards 2 --replicas-per-shard 4 --transactions 24

    # The same, with every link emulating the wan3 region RTT matrix.
    ringbft deploy-local --shards 2 --replicas-per-shard 4 --geo wan3

    # One geo workload on all three backends, side by side.
    ringbft run wan-backends

    # (Usually spawned by deploy-local:) host one replica over TCP.
    ringbft serve --shard 0 --index 1 --address-file /tmp/addresses.json
"""

from __future__ import annotations

import argparse
import sys

from repro.config import PipelineConfig, SystemConfig, WorkloadConfig
from repro.core.replica import RingBftReplica
from repro.baselines.ahl.replica import AhlReplica
from repro.baselines.sharper.replica import SharperReplica
from repro.engine import BACKENDS, Deployment, WorkloadDriver
from repro.experiments.runner import EXPERIMENTS, format_table, run_experiment
from repro.metrics.collector import (
    cache_efficiency,
    format_cache_stats,
    format_pipeline_stats,
)
from repro.netem import GEO_PROFILES as _GEO_PROFILES
from repro.workloads.ycsb import YcsbWorkloadGenerator

_PROTOCOLS = {
    "ringbft": RingBftReplica,
    "ahl": AhlReplica,
    "sharper": SharperReplica,
}


def _print_cache_block(result) -> None:
    """Print one aligned 'hot-path caches' block for a RunResult."""
    cache_lines = format_cache_stats(result.cache_stats)
    if cache_lines:
        print("hot-path caches     : " + cache_lines[0])
        for line in cache_lines[1:]:
            print("                      " + line)


def _print_pipeline_block(result, depth: int) -> None:
    """Print one aligned 'pipeline' block for a RunResult."""
    if not result.pipeline_stats:
        return
    lines = format_pipeline_stats(result.pipeline_stats, depth)
    print("pipeline            : " + lines[0])
    for line in lines[1:]:
        print("                      " + line)


def _cmd_list(_: argparse.Namespace) -> int:
    for name in sorted(EXPERIMENTS):
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    rows = run_experiment(args.experiment, backend=args.backend)
    print(format_table(rows))
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from repro.metrics.plotting import figure_chart

    rows = run_experiment(args.experiment, backend=args.backend)
    print(figure_chart(args.experiment, rows))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.netem import netem_policy_for, regions_for

    workload = WorkloadConfig(
        num_records=1_000,
        cross_shard_fraction=args.cross_shard,
        batch_size=1,
        num_clients=args.clients,
        seed=args.seed,
    )
    config = SystemConfig.uniform(
        args.shards,
        args.replicas,
        workload=workload,
        regions=regions_for(args.geo),
        pipeline=PipelineConfig(depth=args.pipeline_depth),
    )
    deployment = Deployment.build(
        config,
        backend=args.backend,
        replica_class=_PROTOCOLS[args.protocol],
        num_clients=args.clients,
        batch_size=1,
        seed=args.seed,
        time_scale=args.time_scale,
        netem=netem_policy_for(args.geo),
    )
    try:
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, workload, seed=args.seed
        )
        driver = WorkloadDriver(deployment, generator, total=args.transactions, window=2)
        result = driver.run(timeout=300.0)
    finally:
        deployment.close()
    print(f"protocol            : {args.protocol}")
    print(f"backend             : {result.backend}")
    if args.geo:
        print(f"geo profile         : {args.geo}")
    print(f"shards x replicas   : {args.shards} x {args.replicas}")
    print(f"completed           : {result.completed}/{result.submitted}")
    print(f"duration            : {result.duration_s:.3f}s (protocol time)")
    print(f"wall clock          : {result.wall_clock_s:.3f}s")
    print(f"throughput          : {result.throughput_tps:.1f} txn/s (protocol time)")
    print(f"average latency     : {result.avg_latency * 1000:.1f} ms")
    print(f"messages exchanged  : {result.total_messages}")
    print(f"ledgers consistent  : {result.ledgers_consistent}")
    _print_pipeline_block(result, args.pipeline_depth)
    _print_cache_block(result)
    return 0 if result.all_completed and result.ledgers_consistent else 1


def _cmd_steady(args: argparse.Namespace) -> int:
    import json

    from repro.config import TimerConfig
    from repro.engine import run_sustained_load

    timers = TimerConfig(
        local_timeout=1.0,
        remote_timeout=2.0,
        transmit_timeout=3.0,
        client_timeout=1.5,
        checkpoint_interval=args.checkpoint_interval,
    )
    workload = WorkloadConfig(
        num_records=1_000,
        cross_shard_fraction=args.cross_shard,
        batch_size=1,
        num_clients=args.clients,
        seed=args.seed,
    )
    config = SystemConfig.uniform(
        args.shards,
        args.replicas,
        timers=timers,
        workload=workload,
        pipeline=PipelineConfig(depth=args.pipeline_depth),
    )
    result, driver = run_sustained_load(
        config,
        backend=args.backend,
        replica_class=_PROTOCOLS[args.protocol],
        rate_per_second=args.rate,
        checkpoint_intervals=args.intervals,
        num_clients=args.clients,
        seed=args.seed,
        time_scale=args.time_scale,
        gc_enabled=not args.no_gc,
    )
    series = driver.series
    print(f"protocol            : {args.protocol}")
    print(f"backend             : {result.backend}")
    print(f"gc                  : {'off' if args.no_gc else 'on'}")
    print(f"stable checkpoints  : {driver.stable_floor()}/{driver.target_sequence} sequences")
    print(f"completed           : {result.completed}/{result.submitted}")
    print(f"throughput          : {result.throughput_tps:.1f} txn/s (protocol time)")
    print(f"ledgers consistent  : {result.ledgers_consistent}")
    print("retained state      :  gauge                peak   final  growth")
    for gauge in (
        "open_slots",
        "log_slots",
        "batches",
        "cross_records",
        "committed_txn_ids",
        "locked_keys",
    ):
        print(
            f"                       {gauge:18s} {series.peak(gauge):6d}"
            f" {series.final(gauge):7d}  x{series.growth_ratio(gauge):.2f}"
        )
    _print_pipeline_block(result, args.pipeline_depth)
    _print_cache_block(result)
    if args.json:
        payload = {
            "result": result.as_row(),
            "stable_floor": driver.stable_floor(),
            "target_sequence": driver.target_sequence,
            "series": series.as_rows(),
            "cache_stats": cache_efficiency(result.cache_stats),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote               : {args.json}")
    ok = result.ledgers_consistent and driver.stable_floor() >= driver.target_sequence
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.net.launcher import AddressBook, build_system_config, serve_replica

    config = build_system_config(
        shards=args.shards,
        replicas_per_shard=args.replicas_per_shard,
        num_records=args.num_records,
        cross_shard=args.cross_shard,
        checkpoint_interval=args.checkpoint_interval,
        seed=args.seed,
        num_clients=args.num_clients,
        geo=args.geo,
    )
    return serve_replica(
        shard=args.shard,
        index=args.index,
        address_book=AddressBook.read(args.address_file),
        config=config,
        replica_class=_PROTOCOLS[args.protocol],
        batch_size=args.batch_size,
        seed=args.seed,
        max_runtime=args.max_runtime,
        geo=args.geo,
    )


def _cmd_deploy_local(args: argparse.Namespace) -> int:
    import json

    from repro.net.launcher import deploy_local

    outcome = deploy_local(
        shards=args.shards,
        replicas_per_shard=args.replicas_per_shard,
        transactions=args.transactions,
        num_clients=args.clients,
        cross_shard=args.cross_shard,
        num_records=args.num_records,
        checkpoint_interval=args.checkpoint_interval,
        batch_size=args.batch_size,
        seed=args.seed,
        timeout=args.timeout,
        geo=args.geo,
    )
    result = outcome.result
    aggregate = outcome.aggregate
    print(f"processes           : {aggregate['processes']} "
          f"({args.shards} shards x {args.replicas_per_shard} replicas + coordinator)")
    geo_line = f"{args.geo} (emulated WAN latency)" if args.geo else "none (plain loopback)"
    print(f"geo profile         : {geo_line}")
    print(f"completed           : {result.completed}/{result.submitted}")
    print(f"duration            : {result.duration_s:.3f}s (wall-clock == protocol time)")
    print(f"throughput          : {result.throughput_tps:.1f} txn/s")
    print(f"average latency     : {result.avg_latency * 1000:.1f} ms "
          f"(p99 {result.p99_latency * 1000:.1f} ms)")
    print(f"messages exchanged  : {result.total_messages}")
    print(f"bytes on wire       : {aggregate['bytes_on_wire']}")
    print(f"auth rejections     : {aggregate['auth_rejections']} "
          f"(of {aggregate['auth_verifications']} verifications)")
    print(f"ledgers consistent  : {result.ledgers_consistent}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(outcome.report(), fh, indent=2)
        print(f"wrote               : {args.json}")
    return 0 if outcome.ok else 1


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro import analysis

    root = Path(args.root).resolve()
    if not (root / "src" / "repro").is_dir():
        print(f"error: {root} does not look like the repo root (no src/repro)",
              file=sys.stderr)
        return 2

    if args.list_rules:
        for rule_id, rule in sorted(analysis.all_rules().items()):
            print(f"{rule_id:24} {rule.title}")
        return 0

    select = tuple(s.strip() for s in args.select.split(",") if s.strip()) if args.select else ()
    baseline_path = Path(args.baseline) if args.baseline else root / analysis.DEFAULT_BASELINE_NAME
    baseline = frozenset()
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = analysis.load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"error: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    try:
        report = analysis.run_analysis(root, select=select, baseline=baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        analysis.write_baseline(baseline_path, report.findings)
        print(f"wrote baseline with {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    rendered = (
        analysis.render_json(report) if args.format == "json" else analysis.render_text(report)
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(rendered + "\n")
        print(f"wrote {args.format} report to {args.output}")
        if report.findings:
            print(f"{len(report.findings)} non-baselined finding(s)", file=sys.stderr)
    else:
        print(rendered)
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ringbft",
        description="RingBFT reproduction: experiments, figures, and protocol demos.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list available experiments")
    list_parser.set_defaults(func=_cmd_list)

    backend_kwargs = dict(choices=sorted(BACKENDS), default=None)

    run_parser = sub.add_parser("run", help="run one experiment and print its table")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument(
        "--backend",
        help="run the figure's protocol-mode validation on this execution backend "
        "instead of regenerating the analytical figure",
        **backend_kwargs,
    )
    run_parser.set_defaults(func=_cmd_run)

    plot_parser = sub.add_parser("plot", help="run one experiment and render ASCII charts")
    plot_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    plot_parser.add_argument("--backend", **backend_kwargs)
    plot_parser.set_defaults(func=_cmd_plot)

    demo_parser = sub.add_parser("demo", help="run a protocol-mode demo on either backend")
    demo_parser.add_argument("--protocol", choices=sorted(_PROTOCOLS), default="ringbft")
    demo_parser.add_argument("--backend", choices=sorted(BACKENDS), default="sim")
    demo_parser.add_argument("--shards", type=int, default=3)
    demo_parser.add_argument("--replicas", type=int, default=4)
    demo_parser.add_argument("--clients", type=int, default=2)
    demo_parser.add_argument("--transactions", type=int, default=20)
    demo_parser.add_argument("--cross-shard", type=float, default=0.3)
    demo_parser.add_argument("--seed", type=int, default=2022)
    demo_parser.add_argument(
        "--geo",
        choices=sorted(_GEO_PROFILES),
        default=None,
        help="emulate this WAN geo profile on the chosen backend",
    )
    demo_parser.add_argument(
        "--time-scale",
        type=float,
        default=0.02,
        help="realtime backend only: compress every delay by this factor",
    )
    demo_parser.add_argument(
        "--pipeline-depth",
        type=int,
        default=1,
        help="proposal-window depth k per primary (1 = classic one-batch-at-a-time)",
    )
    demo_parser.set_defaults(func=_cmd_demo)

    steady_parser = sub.add_parser(
        "steady",
        help="sustain open-loop Poisson load across checkpoint intervals and "
        "report retained-state gauges",
    )
    steady_parser.add_argument("--protocol", choices=sorted(_PROTOCOLS), default="ringbft")
    steady_parser.add_argument("--backend", choices=sorted(BACKENDS), default="sim")
    steady_parser.add_argument("--shards", type=int, default=2)
    steady_parser.add_argument("--replicas", type=int, default=4)
    steady_parser.add_argument("--clients", type=int, default=2)
    steady_parser.add_argument("--rate", type=float, default=50.0, help="offered load (txn/s)")
    steady_parser.add_argument(
        "--intervals", type=int, default=20, help="checkpoint intervals to sustain"
    )
    steady_parser.add_argument("--checkpoint-interval", type=int, default=4)
    steady_parser.add_argument("--cross-shard", type=float, default=0.2)
    steady_parser.add_argument("--seed", type=int, default=2022)
    steady_parser.add_argument(
        "--no-gc",
        action="store_true",
        help="disable checkpoint-driven truncation (to demonstrate the growth it prevents)",
    )
    steady_parser.add_argument("--json", help="also write the sampled series to this file")
    steady_parser.add_argument(
        "--time-scale",
        type=float,
        default=0.02,
        help="realtime backend only: compress every delay by this factor",
    )
    steady_parser.add_argument(
        "--pipeline-depth",
        type=int,
        default=1,
        help="proposal-window depth k per primary (1 = classic one-batch-at-a-time)",
    )
    steady_parser.set_defaults(func=_cmd_steady)

    serve_parser = sub.add_parser(
        "serve",
        help="host one replica of a networked deployment over TCP "
        "(normally spawned by deploy-local)",
    )
    serve_parser.add_argument("--shard", type=int, required=True)
    serve_parser.add_argument("--index", type=int, required=True)
    serve_parser.add_argument(
        "--address-file", required=True, help="AddressBook JSON written by the launcher"
    )
    serve_parser.add_argument("--protocol", choices=sorted(_PROTOCOLS), default="ringbft")
    serve_parser.add_argument("--shards", type=int, default=2)
    serve_parser.add_argument("--replicas-per-shard", type=int, default=4)
    serve_parser.add_argument("--num-records", type=int, default=1_000)
    serve_parser.add_argument("--cross-shard", type=float, default=0.3)
    serve_parser.add_argument("--checkpoint-interval", type=int, default=100)
    serve_parser.add_argument("--batch-size", type=int, default=1)
    serve_parser.add_argument("--num-clients", type=int, default=2)
    serve_parser.add_argument("--seed", type=int, default=2022)
    serve_parser.add_argument(
        "--geo",
        choices=sorted(_GEO_PROFILES),
        default=None,
        help="geo profile of the deployment (must match the coordinator's)",
    )
    serve_parser.add_argument(
        "--max-runtime",
        type=float,
        default=600.0,
        help="exit with status 1 if no shutdown arrives within this many seconds",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    deploy_parser = sub.add_parser(
        "deploy-local",
        help="run a full deployment over TCP loopback, one OS process per replica",
    )
    deploy_parser.add_argument("--shards", type=int, default=2)
    deploy_parser.add_argument("--replicas-per-shard", type=int, default=4)
    deploy_parser.add_argument("--transactions", type=int, default=24)
    deploy_parser.add_argument("--clients", type=int, default=2)
    deploy_parser.add_argument("--cross-shard", type=float, default=0.3)
    deploy_parser.add_argument("--num-records", type=int, default=1_000)
    deploy_parser.add_argument("--checkpoint-interval", type=int, default=100)
    deploy_parser.add_argument("--batch-size", type=int, default=1)
    deploy_parser.add_argument("--seed", type=int, default=2022)
    deploy_parser.add_argument("--timeout", type=float, default=120.0)
    deploy_parser.add_argument(
        "--geo",
        choices=sorted(_GEO_PROFILES),
        default=None,
        help="emulate this WAN geo profile across the loopback fleet",
    )
    deploy_parser.add_argument("--json", help="also write the aggregated report to this file")
    deploy_parser.set_defaults(func=_cmd_deploy_local)

    lint_parser = sub.add_parser(
        "lint",
        help="run the protocol-aware static-analysis rules over the repo",
        description=(
            "AST-based protocol invariants: determinism, MAC coverage, codec "
            "completeness, async hygiene, lock/ordering discipline.  Exits 0 "
            "when no finding is outside the baseline, 1 otherwise.  Suppress a "
            "single line with '# repro: allow[rule-id] reason'."
        ),
    )
    lint_parser.add_argument(
        "--root", default=".", help="repository root (default: current directory)"
    )
    lint_parser.add_argument("--format", choices=("text", "json"), default="text")
    lint_parser.add_argument(
        "--output", help="write the report to this file instead of stdout"
    )
    lint_parser.add_argument(
        "--baseline",
        help="baseline file of grandfathered findings "
        "(default: <root>/analysis-baseline.json when it exists)",
    )
    lint_parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    lint_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="capture the current findings as the new baseline and exit 0",
    )
    lint_parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all; pragma "
        "bookkeeping only runs on full runs)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    lint_parser.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
