"""Cost parameters of the analytical performance model.

The paper runs on 16-core GCP N1 machines across fifteen regions; we do not
have that testbed, so paper-scale figures are regenerated with a calibrated
pipeline model.  The calibration constants below are chosen so that the
*anchor point* of the evaluation -- 15 shards of 28 replicas, batches of 100,
0% cross-shard transactions -- lands near the paper's reported 1.2M txn/s,
and every other configuration follows from the protocols' message complexity,
message sizes (taken verbatim from Section 8), and the WAN latency model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.messages import MESSAGE_SIZES


@dataclass(frozen=True)
class CostParameters:
    """Per-node resource model (seconds / bytes) used by every protocol model."""

    #: Effective per-node NIC throughput for intra-region traffic.  The
    #: ResilientDB pipeline overlaps networking with consensus, so this is the
    #: *effective* drain rate of a 16-core node, not raw link speed.
    lan_bandwidth_bps: float = 10.0e9
    #: Effective per-node WAN egress for cross-region traffic.  Long-haul GCP
    #: flows sustain far less than local links; nodes that concentrate
    #: cross-shard traffic (AHL's committee, Sharper's coordinator) are
    #: limited by this figure, which is the effect Section 8 highlights.
    wan_bandwidth_bps: float = 0.3e9
    #: CPU time to enqueue/dequeue + handle one protocol message.
    per_message_cpu_s: float = 3.5e-6
    #: Symmetric MAC create/verify cost (intra-shard authentication).
    mac_cpu_s: float = 1.0e-6
    #: Digital-signature sign / verify cost (cross-shard authentication).
    ds_sign_cpu_s: float = 20.0e-6
    ds_verify_cpu_s: float = 40.0e-6
    #: Executing one YCSB read-modify-write transaction.
    execute_cpu_s: float = 2.0e-6
    #: Fixed consensus-pipeline overhead charged once per batch (queueing,
    #: batching thread, ledger append).
    per_batch_overhead_s: float = 50.0e-6
    #: Extra bytes each remote-read dependency adds to an Execute message and
    #: the CPU spent resolving it (Figure 10's complex transactions).
    remote_read_bytes: int = 512
    remote_read_cpu_s: float = 30.0e-6
    #: Average one-way WAN delay between two distinct regions (seconds); the
    #: per-figure code refines this with the actual region list when known.
    avg_wan_one_way_s: float = 0.055
    #: Intra-shard (same region) round-trip time.
    lan_rtt_s: float = 0.0006

    #: Per-transaction payload carried by batch-bearing messages (bytes).  The
    #: Section 8 sizes are measured at the standard batch size of 100; these
    #: slopes reproduce them at b=100 and let the batch-size study scale them.
    batch_payload_per_txn: dict[str, float] = None  # type: ignore[assignment]
    batch_message_header: int = 300

    def __post_init__(self) -> None:
        if self.batch_payload_per_txn is None:
            object.__setattr__(
                self,
                "batch_payload_per_txn",
                {
                    "PrePrepare": 51.0,
                    "Forward": 58.5,
                    "Execute": 14.3,
                    "Prepare2PC": 51.0,
                    "CrossPropose": 51.0,
                },
            )

    def message_size(self, name: str) -> int:
        """Wire size of a protocol message type (bytes, from Section 8)."""
        return MESSAGE_SIZES.get(name, 512)

    def batch_message_size(self, name: str, batch_size: int) -> float:
        """Wire size of a batch-bearing message for an arbitrary batch size.

        Falls back to the fixed Section 8 size for messages whose size does
        not depend on the batch (Prepare, Commit, Checkpoint, ...).
        """
        per_txn = self.batch_payload_per_txn.get(name)
        if per_txn is None:
            return float(self.message_size(name))
        return self.batch_message_header + per_txn * batch_size

    def transfer_time(self, num_bytes: float, wan: bool) -> float:
        """Serialisation time of ``num_bytes`` on the LAN or WAN uplink."""
        bandwidth = self.wan_bandwidth_bps if wan else self.lan_bandwidth_bps
        return num_bytes * 8.0 / bandwidth


@dataclass(frozen=True)
class NodeWork:
    """Work performed by one node for one batch: bytes moved and CPU spent."""

    lan_bytes: float = 0.0
    wan_bytes: float = 0.0
    cpu_seconds: float = 0.0
    messages: float = 0.0

    def busy_seconds(self, params: CostParameters) -> float:
        """Wall-clock seconds the node is busy with this batch (pipelined).

        Network serialisation and CPU work overlap across the ResilientDB
        thread pipeline, so the node's occupancy is the maximum of the two,
        plus the fixed per-batch overhead.
        """
        network = params.transfer_time(self.lan_bytes, wan=False) + params.transfer_time(
            self.wan_bytes, wan=True
        )
        cpu = self.cpu_seconds + self.messages * params.per_message_cpu_s
        return max(network, cpu) + params.per_batch_overhead_s

    def plus(self, other: "NodeWork") -> "NodeWork":
        return NodeWork(
            lan_bytes=self.lan_bytes + other.lan_bytes,
            wan_bytes=self.wan_bytes + other.wan_bytes,
            cpu_seconds=self.cpu_seconds + other.cpu_seconds,
            messages=self.messages + other.messages,
        )

    def scaled(self, factor: float) -> "NodeWork":
        return NodeWork(
            lan_bytes=self.lan_bytes * factor,
            wan_bytes=self.wan_bytes * factor,
            cpu_seconds=self.cpu_seconds * factor,
            messages=self.messages * factor,
        )
