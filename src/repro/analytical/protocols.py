"""Per-protocol cost models.

Each model translates a protocol's message flow into (a) the work its busiest
node performs per batch and (b) the critical-path latency of one batch, from
which :func:`repro.analytical.model.estimate` derives throughput and latency
for any deployment.  The message flows mirror the protocol-mode
implementations in ``repro.core`` and ``repro.baselines`` -- the unit tests
check the formulas against message counts observed in the simulator at small
scale -- and the message sizes are the ones Section 8 reports.

Models for the fully-replicated protocols of Figure 1 (Pbft, Zyzzyva, Sbft,
PoE, HotStuff, Rcc) treat the whole deployment as one replica group spanning
all regions, which is how the paper runs them.
"""

from __future__ import annotations

from repro.analytical.costs import CostParameters, NodeWork
from repro.analytical.model import DeploymentSpec


def _pbft_primary_work(
    n: int,
    batch: int,
    params: CostParameters,
    *,
    signed_commits: bool = False,
    reply_to_clients: bool = True,
    wan: bool = False,
) -> NodeWork:
    """Work of a PBFT primary for one batch in a group of ``n`` replicas.

    ``wan=True`` charges the traffic against the WAN uplink (used by the
    fully-replicated protocols whose replica group spans regions).
    """
    preprepare = params.batch_message_size("PrePrepare", batch)
    prepare = params.message_size("Prepare")
    commit = params.message_size("Commit")
    request = params.message_size("ClientRequest")
    response = params.message_size("ClientResponse")

    bytes_out = (n - 1) * (preprepare + prepare + commit)
    bytes_in = batch * request + (n - 1) * (prepare + commit)
    if reply_to_clients:
        bytes_out += batch * response
    messages = 3 * (n - 1) + batch + 2 * (n - 1) + (batch if reply_to_clients else 0)
    cpu = (6 * (n - 1) + 2 * batch) * params.mac_cpu_s + batch * params.execute_cpu_s
    if signed_commits:
        cpu += params.ds_sign_cpu_s + (n - (n - 1) // 3) * params.ds_verify_cpu_s
    total_bytes = bytes_out + bytes_in
    if wan:
        return NodeWork(wan_bytes=total_bytes, cpu_seconds=cpu, messages=messages)
    return NodeWork(lan_bytes=total_bytes, cpu_seconds=cpu, messages=messages)


def _pbft_latency(rtt: float, params: CostParameters, phases: int = 3) -> float:
    """Critical path of a PBFT instance whose replicas are ``rtt`` apart."""
    return 0.5 * rtt + phases * rtt + params.per_batch_overhead_s


class ProtocolModel:
    """Interface every protocol cost model implements."""

    name = "abstract"

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        raise NotImplementedError

    def cross_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        """Work of one involved shard's busiest node for one cross-shard batch."""
        return self.single_shard_batch_work(spec, params)

    def per_shard_parallelism(self, spec: DeploymentSpec) -> float:
        """How many batches one shard can drive concurrently (1.0 = one pipeline)."""
        return 1.0

    def global_limits(self, spec: DeploymentSpec, params: CostParameters) -> dict[str, float]:
        """Protocol-wide throughput caps (txn/s) beyond the per-shard constraint."""
        return {}

    def single_shard_latency(self, spec: DeploymentSpec, params: CostParameters) -> float:
        raise NotImplementedError

    def cross_shard_latency(self, spec: DeploymentSpec, params: CostParameters) -> float:
        return self.single_shard_latency(spec, params)


# ---------------------------------------------------------------------------
# Sharded protocols: RingBFT, AHL, Sharper
# ---------------------------------------------------------------------------


class RingBftModel(ProtocolModel):
    """RingBFT: intra-shard PBFT + linear ring forwarding (Sections 4-5)."""

    name = "RingBFT"

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        return _pbft_primary_work(spec.replicas_per_shard, spec.batch_size, params)

    def cross_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        n = spec.replicas_per_shard
        nf = n - (n - 1) // 3
        forward = params.batch_message_size("Forward", spec.batch_size)
        # Complex transactions ship their accumulated write sets (Sigma) in
        # the Execute message, so its size grows with the dependency count.
        execute = (
            params.batch_message_size("Execute", spec.batch_size)
            + spec.remote_reads * params.remote_read_bytes
        )
        # Local consensus with digitally signed commits (certificate material).
        work = _pbft_primary_work(
            n, spec.batch_size, params, signed_commits=True, reply_to_clients=False
        )
        # Linear cross-shard step: one Forward + one Execute sent to (and
        # received from) the counterpart replica of the neighbouring shards,
        # plus the local sharing broadcast of both messages inside the shard.
        wan_bytes = 2 * (forward + execute)
        lan_bytes = 2 * (n - 1) * (forward + execute)
        messages = 4 + 4 * (n - 1)
        # Verifying the certificate of nf digital signatures carried by the
        # incoming Forward message, plus resolving remote-read dependencies.
        cpu = (
            nf * params.ds_verify_cpu_s
            + params.ds_sign_cpu_s
            + spec.remote_reads * params.remote_read_cpu_s
        )
        # The initiator shard answers the client; amortised over involved shards.
        reply_bytes = spec.batch_size * params.message_size("ClientResponse") / spec.effective_involved
        return work.plus(
            NodeWork(
                lan_bytes=lan_bytes + reply_bytes,
                wan_bytes=wan_bytes,
                cpu_seconds=cpu,
                messages=messages,
            )
        )

    def single_shard_latency(self, spec: DeploymentSpec, params: CostParameters) -> float:
        return _pbft_latency(params.lan_rtt_s, params)

    def cross_shard_latency(self, spec: DeploymentSpec, params: CostParameters) -> float:
        involved = spec.effective_involved
        hop = spec.average_ring_hop()
        local = _pbft_latency(params.lan_rtt_s, params)
        # Rotation 1: local consensus + one ring hop per involved shard.
        # Rotation 2: one ring hop + execution/local sharing per involved shard.
        rotation_one = involved * (local + hop)
        rotation_two = involved * (hop + params.lan_rtt_s + params.per_batch_overhead_s)
        return rotation_one + rotation_two


class AhlModel(ProtocolModel):
    """AHL: reference committee ordering plus 2PC with all-to-all phases."""

    name = "AHL"

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        return _pbft_primary_work(spec.replicas_per_shard, spec.batch_size, params)

    def cross_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        n = spec.replicas_per_shard
        prepare2pc = params.message_size("Vote2PC")
        # An involved shard runs a local PBFT instance to decide its vote ...
        work = _pbft_primary_work(n, spec.batch_size, params, reply_to_clients=False)
        # ... receives the batch from every committee replica (all-to-all),
        # votes back to every committee replica, and receives every decision.
        batch_bytes = params.batch_message_size("Prepare2PC", spec.batch_size)
        wan_bytes = n * batch_bytes + n * prepare2pc + n * prepare2pc
        messages = 3 * n
        cpu = params.ds_sign_cpu_s + params.ds_verify_cpu_s * 2
        return work.plus(NodeWork(wan_bytes=wan_bytes, cpu_seconds=cpu, messages=messages))

    def _committee_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        """Work of the committee primary for one cross-shard batch."""
        n = spec.replicas_per_shard
        involved = spec.effective_involved
        total_involved_replicas = involved * n
        # Global ordering consensus inside the committee.
        work = _pbft_primary_work(n, spec.batch_size, params, reply_to_clients=True, wan=False)
        # 2PC prepare: the full batch to every replica of every involved shard.
        wan_bytes = total_involved_replicas * params.batch_message_size(
            "Prepare2PC", spec.batch_size
        )
        # Votes back from every involved replica, decisions out to all of them.
        wan_bytes += total_involved_replicas * params.message_size("Vote2PC")
        wan_bytes += total_involved_replicas * params.message_size("Decide2PC")
        messages = 3 * total_involved_replicas
        # Decision consensus inside the committee (second PBFT instance).
        decision = _pbft_primary_work(n, 1, params, reply_to_clients=False)
        cpu = total_involved_replicas * params.mac_cpu_s
        return work.plus(decision).plus(
            NodeWork(wan_bytes=wan_bytes, cpu_seconds=cpu, messages=messages)
        )

    def global_limits(self, spec: DeploymentSpec, params: CostParameters) -> dict[str, float]:
        x = spec.cross_shard_fraction
        if x <= 0 or spec.num_shards <= 1:
            return {}
        committee_busy = self._committee_batch_work(spec, params).busy_seconds(params)
        return {"ahl-reference-committee": spec.batch_size / (x * committee_busy)}

    def single_shard_latency(self, spec: DeploymentSpec, params: CostParameters) -> float:
        return _pbft_latency(params.lan_rtt_s, params)

    def cross_shard_latency(self, spec: DeploymentSpec, params: CostParameters) -> float:
        rtt = spec.average_region_rtt()
        local = _pbft_latency(params.lan_rtt_s, params)
        # client -> committee ordering -> prepare (WAN) -> shard vote consensus
        # -> votes back (WAN) -> committee decision -> decide (WAN) -> execute.
        return local + rtt / 2 + local + rtt / 2 + local + rtt / 2 + params.per_batch_overhead_s


class SharperModel(ProtocolModel):
    """Sharper: initiator-led global consensus with all-to-all cross-shard phases."""

    name = "Sharper"

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        return _pbft_primary_work(spec.replicas_per_shard, spec.batch_size, params)

    def cross_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        n = spec.replicas_per_shard
        involved = spec.effective_involved
        total_involved_replicas = involved * n
        prepare = params.message_size("Prepare")
        commit = params.message_size("Commit")
        # Every replica of every involved shard broadcasts its prepare and
        # commit votes to every replica of every involved shard.
        wan_bytes = 2 * total_involved_replicas * (prepare + commit)
        messages = 4 * total_involved_replicas
        # The initiator primary additionally sends the full batch everywhere;
        # shards take turns being the initiator, so amortise by 1/involved.
        wan_bytes += (
            total_involved_replicas
            * params.batch_message_size("CrossPropose", spec.batch_size)
            / involved
        )
        messages += total_involved_replicas / involved
        cpu = (
            2 * total_involved_replicas * params.mac_cpu_s
            + params.ds_sign_cpu_s
            + params.ds_verify_cpu_s
            + spec.batch_size * params.execute_cpu_s
        )
        reply_bytes = spec.batch_size * params.message_size("ClientResponse") / involved
        return NodeWork(
            lan_bytes=reply_bytes, wan_bytes=wan_bytes, cpu_seconds=cpu, messages=messages
        )

    def single_shard_latency(self, spec: DeploymentSpec, params: CostParameters) -> float:
        return _pbft_latency(params.lan_rtt_s, params)

    def cross_shard_latency(self, spec: DeploymentSpec, params: CostParameters) -> float:
        # Two global all-to-all rounds paced by the farthest pair of involved regions.
        rtt = spec.max_region_rtt()
        return 0.5 * rtt + 2 * rtt + params.per_batch_overhead_s


# ---------------------------------------------------------------------------
# Fully-replicated protocols (Figure 1)
# ---------------------------------------------------------------------------


class _FullyReplicatedModel(ProtocolModel):
    """Base for protocols where every replica orders every transaction."""

    def _group_size(self, spec: DeploymentSpec) -> int:
        return spec.total_replicas

    def global_limits(self, spec: DeploymentSpec, params: CostParameters) -> dict[str, float]:
        busy = self.single_shard_batch_work(spec, params).busy_seconds(params)
        return {f"{self.name}-primary": spec.batch_size / busy * self.concurrent_instances(spec)}

    def concurrent_instances(self, spec: DeploymentSpec) -> float:
        """How many consensus instances proceed concurrently (Rcc overrides)."""
        return 1.0

    def per_shard_parallelism(self, spec: DeploymentSpec) -> float:
        # The per-shard constraint is meaningless for a single replica group;
        # make it non-binding and rely on the explicit global limit.
        return 1e9

    def single_shard_latency(self, spec: DeploymentSpec, params: CostParameters) -> float:
        return _pbft_latency(spec.average_region_rtt(), params, phases=self.phases())

    def phases(self) -> int:
        return 3


class PbftModel(_FullyReplicatedModel):
    """Castro-Liskov PBFT over all replicas (two quadratic phases)."""

    name = "Pbft"

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        return _pbft_primary_work(self._group_size(spec), spec.batch_size, params, wan=True)


class ZyzzyvaModel(_FullyReplicatedModel):
    """Zyzzyva: speculative single-phase ordering, clients resolve divergence."""

    name = "Zyzzyva"

    def phases(self) -> int:
        return 1

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        n = self._group_size(spec)
        batch = spec.batch_size
        preprepare = params.batch_message_size("PrePrepare", batch)
        request = params.message_size("ClientRequest")
        response = params.message_size("ClientResponse")
        bytes_total = (n - 1) * preprepare + batch * (request + response)
        messages = (n - 1) + 2 * batch
        cpu = (n - 1 + 2 * batch) * params.mac_cpu_s + batch * params.execute_cpu_s
        return NodeWork(wan_bytes=bytes_total, cpu_seconds=cpu, messages=messages)


class SbftModel(_FullyReplicatedModel):
    """SBFT: collector-based linear communication with threshold signatures."""

    name = "Sbft"

    def phases(self) -> int:
        return 4

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        n = self._group_size(spec)
        batch = spec.batch_size
        preprepare = params.batch_message_size("PrePrepare", batch)
        small = params.message_size("Commit")
        request = params.message_size("ClientRequest")
        response = params.message_size("ClientResponse")
        # Primary/collector sends the batch once to each replica and exchanges
        # two linear rounds of (threshold-signed) votes.
        bytes_total = (n - 1) * preprepare + 4 * (n - 1) * small + batch * (request + response)
        messages = 5 * (n - 1) + 2 * batch
        cpu = (
            2 * (n - 1) * params.ds_verify_cpu_s / 4  # threshold shares are cheaper to verify
            + 2 * params.ds_sign_cpu_s
            + batch * params.execute_cpu_s
        )
        return NodeWork(wan_bytes=bytes_total, cpu_seconds=cpu, messages=messages)


class PoeModel(_FullyReplicatedModel):
    """Proof-of-Execution: speculative execution removes one quadratic phase."""

    name = "PoE"

    def phases(self) -> int:
        return 2

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        n = self._group_size(spec)
        batch = spec.batch_size
        preprepare = params.batch_message_size("PrePrepare", batch)
        small = params.message_size("Prepare")
        request = params.message_size("ClientRequest")
        response = params.message_size("ClientResponse")
        bytes_total = (n - 1) * (preprepare + 2 * small) + batch * (request + response)
        messages = 3 * (n - 1) + 2 * batch
        cpu = (4 * (n - 1) + 2 * batch) * params.mac_cpu_s + batch * params.execute_cpu_s
        return NodeWork(wan_bytes=bytes_total, cpu_seconds=cpu, messages=messages)


class HotStuffModel(_FullyReplicatedModel):
    """HotStuff: linear leader-based protocol with four phases (higher latency)."""

    name = "HotStuff"

    def phases(self) -> int:
        return 4

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        n = self._group_size(spec)
        batch = spec.batch_size
        preprepare = params.batch_message_size("PrePrepare", batch)
        small = params.message_size("Commit")
        request = params.message_size("ClientRequest")
        response = params.message_size("ClientResponse")
        # The leader drives four linear vote rounds and disseminates the batch once.
        bytes_total = (n - 1) * preprepare + 8 * (n - 1) * small + batch * (request + response)
        messages = 9 * (n - 1) + 2 * batch
        cpu = (
            4 * (n - 1) * params.ds_verify_cpu_s / 4
            + 4 * params.ds_sign_cpu_s
            + batch * params.execute_cpu_s
        )
        return NodeWork(wan_bytes=bytes_total, cpu_seconds=cpu, messages=messages)


class RccModel(_FullyReplicatedModel):
    """RCC: wait-free concurrent consensus -- every replica acts as a primary."""

    name = "Rcc"

    def concurrent_instances(self, spec: DeploymentSpec) -> float:
        # All replicas propose concurrently, but each replica must still
        # process every other instance as a backup, so the speed-up over PBFT
        # saturates well below N.
        n = self._group_size(spec)
        return max(1.0, n / 3.0)

    def single_shard_batch_work(self, spec: DeploymentSpec, params: CostParameters) -> NodeWork:
        n = self._group_size(spec)
        primary = _pbft_primary_work(n, spec.batch_size, params, wan=True)
        # Backup participation in the other concurrent instances of this round.
        prepare = params.message_size("Prepare")
        commit = params.message_size("Commit")
        preprepare = params.batch_message_size("PrePrepare", spec.batch_size)
        backup_bytes = (n - 1) * (preprepare + 2 * (n - 1) * (prepare + commit) / n)
        backup_messages = (n - 1) * (1 + 4 * (n - 1) / n)
        backup = NodeWork(
            wan_bytes=backup_bytes,
            cpu_seconds=backup_messages * params.mac_cpu_s,
            messages=backup_messages,
        )
        return primary.plus(backup)


_MODELS: dict[str, type[ProtocolModel]] = {
    model.name.lower(): model
    for model in (
        RingBftModel,
        AhlModel,
        SharperModel,
        PbftModel,
        ZyzzyvaModel,
        SbftModel,
        PoeModel,
        HotStuffModel,
        RccModel,
    )
}


def model_by_name(name: str) -> ProtocolModel:
    """Instantiate a protocol model by its (case-insensitive) paper name."""
    key = name.lower()
    if key not in _MODELS:
        raise KeyError(f"unknown protocol model {name!r}; known: {sorted(_MODELS)}")
    return _MODELS[key]()
