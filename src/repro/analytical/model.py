"""Deployment specification and the mixture throughput / latency estimator.

The estimator turns a protocol's per-batch cost functions into the two
numbers the paper plots for every configuration:

* **throughput** -- the offered mix (``cross_shard_fraction`` of transactions
  touching ``involved_shards`` shards each) is pushed through the protocol
  until its busiest node saturates.  Per-shard work and protocol-specific
  global bottlenecks (AHL's committee, a fully-replicated primary) are both
  respected, and the client population caps the number of transactions that
  can be in flight (Little's law), which is what bends the curves in the
  client-scaling experiment.
* **latency** -- the workload-weighted average of the single-shard and
  cross-shard critical paths, plus the queueing delay implied by the offered
  load.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analytical.costs import CostParameters
from repro.config import GCP_REGIONS
from repro.sim.regions import region_rtt_seconds


@dataclass(frozen=True)
class DeploymentSpec:
    """One experimental configuration (a single point on a paper figure)."""

    num_shards: int = 15
    replicas_per_shard: int = 28
    batch_size: int = 100
    cross_shard_fraction: float = 0.30
    involved_shards: int = 0  # 0 means "all shards"
    remote_reads: int = 0
    num_clients: int = 50_000
    #: Transactions each client keeps in flight (clients batch their requests,
    #: Section 8 "we require clients and replicas to employ batching").
    client_outstanding: int = 10
    regions: tuple[str, ...] = GCP_REGIONS

    def __post_init__(self) -> None:
        if self.num_shards < 1 or self.replicas_per_shard < 4:
            raise ValueError("need at least one shard of four replicas")
        if not 0.0 <= self.cross_shard_fraction <= 1.0:
            raise ValueError("cross_shard_fraction must be in [0, 1]")

    @property
    def effective_involved(self) -> int:
        """Number of shards a cross-shard transaction touches."""
        if self.involved_shards <= 0 or self.involved_shards > self.num_shards:
            return self.num_shards
        return max(2, self.involved_shards) if self.num_shards > 1 else 1

    @property
    def total_replicas(self) -> int:
        return self.num_shards * self.replicas_per_shard

    @property
    def faults_per_shard(self) -> int:
        return (self.replicas_per_shard - 1) // 3

    @property
    def shard_regions(self) -> tuple[str, ...]:
        return tuple(self.regions[i % len(self.regions)] for i in range(self.num_shards))

    def with_(self, **changes) -> "DeploymentSpec":
        """Copy of the spec with some fields replaced (sweep helper)."""
        return replace(self, **changes)

    # -- WAN geometry helpers used by the latency models -------------------

    def ring_one_way_delays(self) -> list[float]:
        """One-way delay of each consecutive hop around the ring of shards."""
        regions = self.shard_regions
        if len(regions) == 1:
            return [region_rtt_seconds(regions[0], regions[0]) / 2]
        delays = []
        for i in range(len(regions)):
            a = regions[i]
            b = regions[(i + 1) % len(regions)]
            delays.append(region_rtt_seconds(a, b) / 2)
        return delays

    def average_ring_hop(self) -> float:
        delays = self.ring_one_way_delays()
        return sum(delays) / len(delays)

    def max_region_rtt(self) -> float:
        """Largest RTT between any two shard regions (global quorum latency)."""
        regions = self.shard_regions
        return max(
            region_rtt_seconds(a, b) for a in regions for b in regions
        )

    def average_region_rtt(self) -> float:
        regions = self.shard_regions
        if len(regions) == 1:
            return region_rtt_seconds(regions[0], regions[0])
        pairs = [
            region_rtt_seconds(a, b)
            for i, a in enumerate(regions)
            for j, b in enumerate(regions)
            if i != j
        ]
        return sum(pairs) / len(pairs)


@dataclass(frozen=True)
class PerformanceEstimate:
    """The two numbers the paper plots, plus the limiting resource for analysis."""

    throughput_tps: float
    latency_s: float
    bottleneck: str
    details: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, float | str]:
        return {
            "throughput_tps": round(self.throughput_tps, 1),
            "latency_s": round(self.latency_s, 3),
            "bottleneck": self.bottleneck,
        }


def estimate(model, spec: DeploymentSpec, params: CostParameters | None = None) -> PerformanceEstimate:
    """Estimate throughput and latency of ``model`` under ``spec``.

    ``model`` is any object implementing the :class:`ProtocolModel` interface
    (see ``repro.analytical.protocols``).
    """
    params = params or CostParameters()
    x = spec.cross_shard_fraction
    involved = spec.effective_involved if x > 0 else 1
    batch = spec.batch_size

    # Busy time of the per-shard bottleneck node, per batch of each kind.
    single_busy = model.single_shard_batch_work(spec, params).busy_seconds(params)
    throughput_limits: dict[str, float] = {}

    # Per-shard capacity constraint:
    #   T/z * [(1-x)*C_ss + x*i*C_cs] / b  <=  parallelism_per_shard
    per_txn_shard_work = (1.0 - x) * single_busy / batch
    if x > 0 and spec.num_shards > 1:
        cross_busy = model.cross_shard_batch_work(spec, params).busy_seconds(params)
        per_txn_shard_work += x * involved * cross_busy / batch
    else:
        cross_busy = 0.0
    if per_txn_shard_work > 0:
        throughput_limits["shard-bottleneck"] = (
            spec.num_shards * model.per_shard_parallelism(spec) / per_txn_shard_work
        )

    # Protocol-specific global constraints (e.g. AHL's committee, a
    # fully-replicated primary that every transaction must pass through).
    for name, limit in model.global_limits(spec, params).items():
        throughput_limits[name] = limit

    bottleneck = min(throughput_limits, key=throughput_limits.get)
    saturation_tps = throughput_limits[bottleneck]

    # Base (unloaded) latencies.
    single_latency = model.single_shard_latency(spec, params)
    cross_latency = model.cross_shard_latency(spec, params) if x > 0 and spec.num_shards > 1 else 0.0
    base_latency = (1.0 - x) * single_latency + x * cross_latency

    # The client population closes the loop (Little's law): with C clients
    # keeping ``client_outstanding`` transactions in flight each, delivered
    # throughput cannot exceed C * outstanding / latency, where the latency
    # itself depends on how loaded the system is.  A short damped fixed-point
    # iteration finds the self-consistent operating point.
    in_flight = spec.num_clients * spec.client_outstanding
    queueing_cap = 14.0

    def queueing_factor_at(delivered: float) -> float:
        utilization = min(delivered / saturation_tps, 0.98)
        return min(1.0 + utilization ** 2 / max(1.0 - utilization, 0.02), queueing_cap)

    def offered_at(delivered: float) -> float:
        return in_flight / max(base_latency * queueing_factor_at(delivered), 1e-6)

    # Find the self-consistent operating point: the delivered rate equals the
    # rate the clients can offer at the resulting (loaded) latency, capped by
    # the saturation throughput.  ``offered_at`` is non-increasing in the
    # delivered rate, so a simple bisection converges.
    if offered_at(saturation_tps) >= saturation_tps:
        delivered_tps = saturation_tps
        overloaded = True
    else:
        overloaded = False
        lo, hi = 0.0, saturation_tps
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if offered_at(mid) >= mid:
                lo = mid
            else:
                hi = mid
        delivered_tps = (lo + hi) / 2.0

    offered_tps = offered_at(delivered_tps)
    latency = base_latency * queueing_factor_at(delivered_tps)
    if not overloaded:
        bottleneck = "client-limited"
    else:
        # Overload: incoming requests sit in full work queues (the memory
        # pressure effect Section 8.6 describes) -- a mild throughput penalty.
        excess_ratio = offered_tps / saturation_tps - 1.0
        delivered_tps = saturation_tps * (1.0 - 0.09 * min(1.0, excess_ratio / 4.0))

    return PerformanceEstimate(
        throughput_tps=delivered_tps,
        latency_s=latency,
        bottleneck=bottleneck,
        details={
            "single_batch_busy_s": single_busy,
            "cross_batch_busy_s": cross_busy,
            "saturation_tps": saturation_tps,
            "base_latency_s": base_latency,
            "offered_tps": offered_tps,
        },
    )
