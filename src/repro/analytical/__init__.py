"""Calibrated analytical performance model used to regenerate paper-scale figures."""

from repro.analytical.costs import CostParameters
from repro.analytical.model import DeploymentSpec, PerformanceEstimate, estimate
from repro.analytical.protocols import (
    AhlModel,
    HotStuffModel,
    PbftModel,
    PoeModel,
    ProtocolModel,
    RccModel,
    RingBftModel,
    SbftModel,
    SharperModel,
    ZyzzyvaModel,
    model_by_name,
)

__all__ = [
    "CostParameters",
    "DeploymentSpec",
    "PerformanceEstimate",
    "estimate",
    "ProtocolModel",
    "RingBftModel",
    "AhlModel",
    "SharperModel",
    "PbftModel",
    "ZyzzyvaModel",
    "SbftModel",
    "PoeModel",
    "HotStuffModel",
    "RccModel",
    "model_by_name",
]
