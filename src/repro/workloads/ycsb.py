"""YCSB-style workload generator (Section 8, *Benchmark*).

The paper drives every experiment with the Yahoo Cloud Serving Benchmark from
the BlockBench suite: an active set of 600k records accessed by
read-modify-write transactions.  The generator reproduces the knobs the
evaluation sweeps:

* fraction of cross-shard transactions (Figure 8 V-VI),
* number of involved shards per cross-shard transaction (Figure 8 IX-X),
* number of remote-read dependencies, making transactions *complex*
  (Figure 10),
* key skew via a standard YCSB Zipfian distribution (conflict rate).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config import WorkloadConfig
from repro.errors import WorkloadError
from repro.storage.kvstore import ShardedKeyValueStore
from repro.txn.ring import RingTopology
from repro.txn.transaction import Operation, OpType, Transaction


class ZipfianGenerator:
    """Zipfian integer generator over ``[0, n)`` with skew ``theta``.

    ``theta = 0`` degenerates to the uniform distribution.  The implementation
    follows the classic Gray et al. rejection-free formulation used by YCSB.
    """

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n <= 0:
            raise WorkloadError("Zipfian range must be positive")
        if theta < 0 or theta >= 1.0:
            raise WorkloadError("Zipfian theta must lie in [0, 1)")
        self._n = n
        self._theta = theta
        self._rng = rng
        if theta > 0:
            self._zetan = self._zeta(n, theta)
            self._zeta2 = self._zeta(2, theta)
            self._alpha = 1.0 / (1.0 - theta)
            # For n == 2 both zeta terms coincide and the eta denominator is
            # zero; eta only shapes the tail beyond rank 1, which is empty.
            denominator = 1 - self._zeta2 / self._zetan
            if denominator > 0:
                self._eta = (1 - (2.0 / n) ** (1 - theta)) / denominator
            else:
                self._eta = 0.0

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        if self._theta == 0:
            return self._rng.randrange(self._n)
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self._theta:
            return 1
        # For u near 1.0 the Gray et al. formula can round up to exactly n,
        # one past the valid range; clamp into [0, n).
        index = int(self._n * (self._eta * u - self._eta + 1) ** self._alpha)
        return min(max(index, 0), self._n - 1)


@dataclass
class WorkloadMix:
    """Summary of the generated mix, useful for sanity checks in tests."""

    total: int
    cross_shard: int
    complex_txns: int

    @property
    def cross_shard_fraction(self) -> float:
        return self.cross_shard / self.total if self.total else 0.0


class YcsbWorkloadGenerator:
    """Generates deterministic YCSB transactions for a sharded deployment."""

    def __init__(
        self,
        table: ShardedKeyValueStore,
        ring: RingTopology,
        config: WorkloadConfig,
        *,
        seed: int | None = None,
    ) -> None:
        self._table = table
        self._ring = ring
        self._config = config
        self._rng = random.Random(seed if seed is not None else config.seed)
        self._counter = 0
        records_per_shard = max(1, table.num_records // table.num_shards)
        self._zipf = ZipfianGenerator(records_per_shard, config.zipf_theta, self._rng)
        self.last_mix = WorkloadMix(total=0, cross_shard=0, complex_txns=0)

    # ------------------------------------------------------------------
    # key selection
    # ------------------------------------------------------------------

    def _local_key(self, shard: int) -> str:
        """Pick one record owned by ``shard`` using the configured skew."""
        return self._table.local_record(shard, self._zipf.next())

    def _pick_involved_shards(self, forced_count: int | None = None) -> list[int]:
        """Pick consecutive shards in ring order, as the paper's clients do."""
        order = self._ring.order
        count = forced_count if forced_count is not None else self._config.involved_shards
        if count <= 0 or count > len(order):
            count = len(order)
        if count == len(order):
            return list(order)
        start = self._rng.randrange(len(order))
        return [order[(start + i) % len(order)] for i in range(count)]

    # ------------------------------------------------------------------
    # transaction construction
    # ------------------------------------------------------------------

    def next_id(self, client_id: str) -> str:
        self._counter += 1
        return f"{client_id}-txn-{self._counter}"

    def single_shard_transaction(self, client_id: str, shard: int | None = None) -> Transaction:
        """A read-modify-write of one record on one shard."""
        target = shard if shard is not None else self._rng.choice(self._ring.order)
        key = self._local_key(target)
        txn_id = self.next_id(client_id)
        ops = (
            Operation(shard=target, key=key, op_type=OpType.READ),
            Operation(shard=target, key=key, op_type=OpType.WRITE, value=f"{txn_id}-value"),
        )
        return Transaction(txn_id=txn_id, client_id=client_id, operations=ops)

    def cross_shard_transaction(
        self,
        client_id: str,
        involved: list[int] | None = None,
        remote_reads: int | None = None,
    ) -> Transaction:
        """A cross-shard transaction accessing one record per involved shard.

        The paper's standard setting accesses one key-value pair per involved
        region; ``remote_reads`` cross-shard dependencies turn the transaction
        into a *complex* one that needs the second rotation's write sets.
        """
        shards = involved if involved is not None else self._pick_involved_shards()
        if len(shards) < 2:
            return self.single_shard_transaction(client_id, shards[0] if shards else None)
        txn_id = self.next_id(client_id)
        keys = {shard: self._local_key(shard) for shard in shards}
        dependency_budget = remote_reads if remote_reads is not None else self._config.remote_reads
        operations: list[Operation] = []
        for shard in shards:
            key = keys[shard]
            operations.append(Operation(shard=shard, key=key, op_type=OpType.READ))
            deps: list[tuple[int, str]] = []
            for _ in range(self._per_shard_dependencies(dependency_budget, len(shards))):
                other = self._rng.choice([s for s in shards if s != shard])
                deps.append((other, keys[other]))
            operations.append(
                Operation(
                    shard=shard,
                    key=key,
                    op_type=OpType.WRITE,
                    value=f"{txn_id}-value",
                    depends_on=tuple(deps),
                )
            )
        return Transaction(txn_id=txn_id, client_id=client_id, operations=tuple(operations))

    def _per_shard_dependencies(self, total_dependencies: int, num_shards: int) -> int:
        """Spread the remote-read budget roughly evenly across involved shards."""
        if total_dependencies <= 0:
            return 0
        base = total_dependencies // num_shards
        if self._rng.random() < (total_dependencies % num_shards) / num_shards:
            base += 1
        return base

    def generate(self, count: int, client_id: str = "client-0") -> list[Transaction]:
        """Generate ``count`` transactions following the configured mix."""
        transactions: list[Transaction] = []
        cross = 0
        complex_count = 0
        for _ in range(count):
            if self._rng.random() < self._config.cross_shard_fraction and self._ring.size > 1:
                txn = self.cross_shard_transaction(client_id)
                cross += 1
            else:
                txn = self.single_shard_transaction(client_id)
            if txn.is_complex:
                complex_count += 1
            transactions.append(txn)
        self.last_mix = WorkloadMix(total=count, cross_shard=cross, complex_txns=complex_count)
        return transactions
