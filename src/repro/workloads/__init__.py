"""Workload generation: YCSB-style transactions and open-loop client drivers."""

from repro.workloads.ycsb import YcsbWorkloadGenerator, ZipfianGenerator
from repro.workloads.clients import ClosedLoopDriver, OpenLoopDriver

__all__ = [
    "YcsbWorkloadGenerator",
    "ZipfianGenerator",
    "ClosedLoopDriver",
    "OpenLoopDriver",
]
