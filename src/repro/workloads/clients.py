"""Client drivers feeding generated workloads into a simulated cluster.

Two driving modes are provided:

* :class:`ClosedLoopDriver` keeps a fixed number of transactions in flight per
  client -- the classical way to saturate a consensus pipeline, used by the
  protocol-mode benchmarks and the fault experiments.
* :class:`OpenLoopDriver` injects transactions at a fixed offered rate,
  regardless of completions -- used to study overload behaviour (the paper's
  client-scaling experiment, Figure 8 XI-XII).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.workloads.ycsb import YcsbWorkloadGenerator


@dataclass
class ClosedLoopDriver:
    """Keeps ``window`` transactions outstanding per client until ``total`` complete."""

    cluster: Cluster
    generator: YcsbWorkloadGenerator
    total: int
    window: int = 4
    submitted: int = 0
    _client_ids: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._client_ids = list(self.cluster.clients)

    def start(self) -> None:
        """Prime every client's window and install completion callbacks."""
        for client_id in self._client_ids:
            for _ in range(self.window):
                self._submit_next(client_id)
        self._arm_poll()

    def _submit_next(self, client_id: str) -> None:
        if self.submitted >= self.total:
            return
        txn = self.generator.generate(1, client_id)[0]
        self.cluster.submit(txn, client_id)
        self.submitted += 1

    def _arm_poll(self) -> None:
        self.cluster.simulator.schedule(0.05, self._poll)

    def _poll(self) -> None:
        """Refill client windows as transactions complete."""
        if self.completed >= self.total:
            return
        for client_id in self._client_ids:
            client = self.cluster.clients[client_id]
            while client.outstanding < self.window and self.submitted < self.total:
                self._submit_next(client_id)
        self._arm_poll()

    @property
    def completed(self) -> int:
        return self.cluster.completed_transactions()

    def run(self, timeout: float = 300.0) -> int:
        """Drive the workload until ``total`` transactions complete (or timeout)."""
        self.start()
        deadline = self.cluster.simulator.now + timeout
        while self.completed < self.total and self.cluster.simulator.now < deadline:
            if not self.cluster.simulator.step():
                break
        return self.completed


@dataclass
class OpenLoopDriver:
    """Submits transactions at ``rate_per_second`` spread over all clients."""

    cluster: Cluster
    generator: YcsbWorkloadGenerator
    rate_per_second: float
    duration: float
    submitted: int = 0

    def start(self) -> None:
        interval = 1.0 / self.rate_per_second
        client_ids = list(self.cluster.clients)
        total = int(self.rate_per_second * self.duration)
        for i in range(total):
            client_id = client_ids[i % len(client_ids)]
            self.cluster.simulator.schedule(i * interval, self._make_submit(client_id))

    def _make_submit(self, client_id: str):
        def _submit() -> None:
            txn = self.generator.generate(1, client_id)[0]
            self.cluster.submit(txn, client_id)
            self.submitted += 1

        return _submit

    def run(self, extra_drain: float = 30.0) -> int:
        """Inject for ``duration`` seconds, then drain, returning completions."""
        self.start()
        self.cluster.run(duration=self.duration + extra_drain)
        return self.cluster.completed_transactions()
