"""Legacy client-driver shims over the backend-agnostic engine drivers.

Two driving modes are provided (both now live in :mod:`repro.engine.driver`
and work on any execution backend):

* :class:`ClosedLoopDriver` keeps a fixed number of transactions in flight per
  client -- the classical way to saturate a consensus pipeline, used by the
  protocol-mode benchmarks and the fault experiments.
* :class:`OpenLoopDriver` injects transactions at a fixed offered rate,
  regardless of completions -- used to study overload behaviour (the paper's
  client-scaling experiment, Figure 8 XI-XII).

These wrappers keep the historical ``int``-returning ``run`` signatures; new
code should use :class:`repro.engine.WorkloadDriver` /
:class:`repro.engine.OpenLoopWorkloadDriver` directly and consume the unified
:class:`repro.engine.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.deployment import Deployment
from repro.engine.driver import OpenLoopWorkloadDriver, WorkloadDriver
from repro.workloads.ycsb import YcsbWorkloadGenerator


@dataclass
class ClosedLoopDriver:
    """Keeps ``window`` transactions outstanding per client until ``total`` complete."""

    cluster: Deployment
    generator: YcsbWorkloadGenerator
    total: int
    window: int = 4
    _driver: WorkloadDriver = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._driver = WorkloadDriver(
            self.cluster, self.generator, total=self.total, window=self.window
        )

    def start(self) -> None:
        """Prime every client's window and install completion callbacks."""
        self._driver.start()

    @property
    def submitted(self) -> int:
        return self._driver.submitted

    @property
    def completed(self) -> int:
        return self._driver.completed

    def run(self, timeout: float = 300.0) -> int:
        """Drive the workload until ``total`` transactions complete (or timeout)."""
        return self._driver.run(timeout=timeout, check_consistency=False).completed


@dataclass
class OpenLoopDriver:
    """Submits transactions at ``rate_per_second`` spread over all clients."""

    cluster: Deployment
    generator: YcsbWorkloadGenerator
    rate_per_second: float
    duration: float
    _driver: OpenLoopWorkloadDriver = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._driver = OpenLoopWorkloadDriver(
            self.cluster, self.generator, self.rate_per_second, self.duration
        )

    def start(self) -> None:
        self._driver.start()

    @property
    def submitted(self) -> int:
        return self._driver.submitted

    def run(self, extra_drain: float = 30.0) -> int:
        """Inject for ``duration`` seconds, then drain, returning completions."""
        return self._driver.run(extra_drain=extra_drain, check_consistency=False).completed
