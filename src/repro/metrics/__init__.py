"""Throughput and latency metrics collection."""

from repro.metrics.collector import (
    MetricsSummary,
    RetainedStateSample,
    RetainedStateSeries,
    ThroughputSeries,
    summarize,
)

__all__ = [
    "MetricsSummary",
    "RetainedStateSample",
    "RetainedStateSeries",
    "ThroughputSeries",
    "summarize",
]
