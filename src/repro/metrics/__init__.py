"""Throughput and latency metrics collection."""

from repro.metrics.collector import MetricsSummary, ThroughputSeries, summarize

__all__ = ["MetricsSummary", "ThroughputSeries", "summarize"]
