"""Throughput / latency summarisation for completed transactions.

Every experiment in the paper reports two numbers per configuration -- total
throughput (txn/s) and average latency (s) -- plus, for the primary-failure
experiment, a throughput time series.  These helpers turn the per-client
completion records produced by the simulator into those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.pbft.client import CompletedTransaction


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregate throughput/latency for one experiment run."""

    completed: int
    duration: float
    throughput: float
    avg_latency: float
    p50_latency: float
    p99_latency: float

    def as_row(self) -> dict[str, float]:
        return {
            "completed": self.completed,
            "duration_s": round(self.duration, 3),
            "throughput_tps": round(self.throughput, 1),
            "avg_latency_s": round(self.avg_latency, 4),
            "p50_latency_s": round(self.p50_latency, 4),
            "p99_latency_s": round(self.p99_latency, 4),
        }


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted values (shared by all summaries)."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


# Backwards-compatible alias for the historical private name.
_percentile = percentile


# ---------------------------------------------------------------------------
# cache efficacy (verification LRUs + codec memoisation)
# ---------------------------------------------------------------------------


def cache_hit_rate(stats: dict[str, int]) -> float:
    """Hit fraction of one hit/miss counter pair (0.0 when the cache is cold)."""
    hits = stats.get("hits", 0)
    misses = stats.get("misses", 0)
    total = hits + misses
    return hits / total if total else 0.0


def cache_efficiency(cache_stats: dict[str, dict[str, int]]) -> dict[str, dict]:
    """Annotate each cache's counters with its hit rate.

    ``cache_stats`` is the :class:`~repro.engine.deployment.RunResult`
    ``cache_stats`` mapping (``verify``/``certificate`` LRUs plus the codec's
    ``payload``/``digest`` memo counters).  Empty entries (disabled caches)
    are dropped.
    """
    report: dict[str, dict] = {}
    for name, stats in cache_stats.items():
        if not stats:
            continue
        annotated = dict(stats)
        annotated["hit_rate"] = round(cache_hit_rate(stats), 4)
        report[name] = annotated
    return report


def format_cache_stats(cache_stats: dict[str, dict[str, int]]) -> list[str]:
    """Human-readable one-line-per-cache summary used by the CLI."""
    lines = []
    for name, stats in sorted(cache_efficiency(cache_stats).items()):
        lines.append(
            f"{name:12s} {stats['hit_rate'] * 100:6.1f}% hit"
            f"  ({stats.get('hits', 0)} hits / {stats.get('misses', 0)} misses)"
        )
    return lines


# ---------------------------------------------------------------------------
# pipeline occupancy (proposal-window instrumentation)
# ---------------------------------------------------------------------------


def summarize_pipeline(replicas) -> dict[str, float | int]:
    """Aggregate per-replica proposal-window gauges into one report.

    ``replicas`` is any iterable of objects exposing the pipeline
    instrumentation (``peak_open_slots``, ``open_slot_count``,
    ``proposed_batch_count``, ``proposed_request_count``,
    ``queue_delay_total``) -- in practice the deployment's
    :class:`~repro.consensus.pbft.replica.PbftReplica` instances, of which
    only primaries ever report non-zero counts.
    """
    peak = 0
    open_now = 0
    batches = 0
    txns = 0
    delayed = 0
    delay_total = 0.0
    shaped = 0
    fallback = 0
    pacing_rows: list[dict[str, float | int]] = []
    for replica in replicas:
        peak = max(peak, getattr(replica, "peak_open_slots", 0))
        open_now += getattr(replica, "open_slot_count", 0)
        batches += getattr(replica, "proposed_batch_count", 0)
        txns += getattr(replica, "proposed_txn_count", 0)
        delayed += getattr(replica, "proposed_request_count", 0)
        delay_total += getattr(replica, "queue_delay_total", 0.0)
        shaped += getattr(replica, "shaped_batch_count", 0)
        fallback += getattr(replica, "fallback_batch_count", 0)
        row = getattr(replica, "pacing_stats", None)
        if row and getattr(replica, "proposed_batch_count", 0):
            pacing_rows.append(row)
    report: dict[str, float | int] = {
        "peak_open_slots": peak,
        "open_slots_now": open_now,
        "proposed_batches": batches,
        "avg_batch_size": round(txns / batches, 2) if batches else 0.0,
        "avg_queue_delay_s": round(delay_total / delayed, 6) if delayed else 0.0,
        "shaped_batches": shaped,
        "fallback_batches": fallback,
    }
    if pacing_rows:
        # Occupancy-controller gauges, aggregated over the replicas that
        # actually proposed (primaries): occupancy and EWMA latency average
        # across them, arrival rate sums (it is a per-primary offered load),
        # and the ceiling reports the highest currently derived.
        count = len(pacing_rows)
        report["slot_occupancy"] = round(
            sum(float(r.get("slot_occupancy", 0.0)) for r in pacing_rows) / count, 2
        )
        report["batch_ceiling"] = int(
            max(int(r.get("batch_ceiling", 0)) for r in pacing_rows)
        )
        report["ewma_commit_latency_s"] = round(
            sum(float(r.get("ewma_commit_latency_s", 0.0)) for r in pacing_rows) / count, 6
        )
        report["ewma_slot_hold_s"] = round(
            sum(float(r.get("ewma_slot_hold_s", 0.0)) for r in pacing_rows) / count, 6
        )
        report["ewma_arrival_rate_tps"] = round(
            sum(float(r.get("ewma_arrival_rate_tps", 0.0)) for r in pacing_rows), 1
        )
    return report


def format_pipeline_stats(stats: dict[str, float | int], depth: int) -> list[str]:
    """Human-readable pipeline-occupancy summary used by the CLI."""
    lines = [
        f"window depth {depth}: peak {stats.get('peak_open_slots', 0)} open slots,"
        f" {stats.get('proposed_batches', 0)} batches proposed"
        f" (avg size {stats.get('avg_batch_size', 0.0)})",
        f"avg queue delay {1e3 * stats.get('avg_queue_delay_s', 0.0):.1f} ms"
        " per request before proposal",
    ]
    if "slot_occupancy" in stats:
        lines.append(
            f"pacing: {stats.get('slot_occupancy', 0.0)} slots busy (time-avg),"
            f" batch ceiling {stats.get('batch_ceiling', 0)},"
            f" EWMA commit {1e3 * float(stats.get('ewma_commit_latency_s', 0.0)):.1f} ms"
            f" / arrivals {stats.get('ewma_arrival_rate_tps', 0.0)}/s"
        )
    shaped = stats.get("shaped_batches", 0)
    fallback = stats.get("fallback_batches", 0)
    if shaped or fallback:
        lines.append(
            f"pump modes: {shaped} shaped batches, {fallback} eager-fallback batches"
        )
    return lines


def summarize(records: list[CompletedTransaction], duration: float | None = None) -> MetricsSummary:
    """Summarise completion records into throughput and latency statistics.

    ``duration`` defaults to the span between the first submission and the
    last completion, which matches how a fixed-length measurement window is
    normally reported.
    """
    if not records:
        return MetricsSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    latencies = sorted(record.latency for record in records)
    start = min(record.submitted_at for record in records)
    end = max(record.completed_at for record in records)
    span = duration if duration is not None else max(end - start, 1e-9)
    return MetricsSummary(
        completed=len(records),
        duration=span,
        throughput=len(records) / span,
        avg_latency=sum(latencies) / len(latencies),
        p50_latency=_percentile(latencies, 0.50),
        p99_latency=_percentile(latencies, 0.99),
    )


@dataclass(frozen=True)
class RetainedStateSample:
    """One snapshot of the deployment's retained-state gauges.

    ``committed_batches`` records the cumulative work done when the sample was
    taken, so a series can distinguish *flat* retained state (bounded by the
    checkpoint interval plus in-flight work) from state that grows with total
    committed work -- the signature of a garbage-collection leak.
    """

    time: float
    committed_batches: int
    gauges: dict[str, int]

    def as_row(self) -> dict:
        row: dict = {"time_s": round(self.time, 3), "committed_batches": self.committed_batches}
        row.update(self.gauges)
        return row


#: Minimum sample count for a meaningful half-split flatness verdict: below
#: this, the GC warm-up ramp occupies most of the first half and healthy
#: gauges read as growing (the ``bench_steady_state --intervals 6`` flake).
MIN_FLAT_SAMPLES = 12


@dataclass
class RetainedStateSeries:
    """Periodic samples of retained-state gauges over one sustained run."""

    samples: list[RetainedStateSample] = field(default_factory=list)

    def record(self, time: float, committed_batches: int, gauges: dict[str, int]) -> None:
        self.samples.append(
            RetainedStateSample(time=time, committed_batches=committed_batches, gauges=dict(gauges))
        )

    def values(self, gauge: str) -> list[int]:
        return [sample.gauges.get(gauge, 0) for sample in self.samples]

    def peak(self, gauge: str) -> int:
        return max(self.values(gauge), default=0)

    def final(self, gauge: str) -> int:
        values = self.values(gauge)
        return values[-1] if values else 0

    def growth_ratio(self, gauge: str) -> float:
        """Peak of the second half of the run over peak of the first half.

        A garbage-collected gauge plateaus, so the ratio stays near 1; a
        leaking gauge grows with committed work, so the ratio approaches the
        ratio of work done (about 2 for a constant-rate run, and beyond).
        """
        values = self.values(gauge)
        if len(values) < 4:
            return 1.0
        half = len(values) // 2
        first = max(values[:half])
        second = max(values[half:])
        return second / max(first, 1)

    def is_flat(self, gauge: str, tolerance: float = 1.5, *, min_samples: int = 0) -> bool:
        """Whether ``gauge`` plateaued (its growth ratio stays within ``tolerance``).

        The half-split comparison behind :meth:`growth_ratio` is only
        meaningful when the warm-up ramp (GC reaches steady state after
        roughly two checkpoint intervals) is a small fraction of the series;
        on short runs the first-half peak is mid-ramp and a perfectly healthy
        gauge reads as growing.  Callers that gate a verdict on this method
        should pass ``min_samples`` (:data:`MIN_FLAT_SAMPLES` is a good
        default); a series with fewer samples raises instead of returning an
        unreliable verdict.
        """
        values = self.values(gauge)
        if len(values) < min_samples:
            raise ValueError(
                f"flat-gauge verdict for {gauge!r} over {len(values)} samples is "
                f"unreliable (need >= {min_samples}): the warm-up ramp dominates "
                "the first-half peak on short series"
            )
        return self.growth_ratio(gauge) <= tolerance

    def as_rows(self) -> list[dict]:
        return [sample.as_row() for sample in self.samples]


@dataclass
class ThroughputSeries:
    """Throughput bucketed over time -- used for the view-change experiment (Figure 9)."""

    bucket_seconds: float = 5.0

    def compute(self, records: list[CompletedTransaction], horizon: float) -> list[tuple[float, float]]:
        """Return ``(bucket_start_time, txn_per_second)`` points covering ``[0, horizon]``."""
        buckets: dict[int, int] = {}
        for record in records:
            bucket = int(record.completed_at // self.bucket_seconds)
            buckets[bucket] = buckets.get(bucket, 0) + 1
        series = []
        for bucket in range(int(horizon // self.bucket_seconds) + 1):
            count = buckets.get(bucket, 0)
            series.append((bucket * self.bucket_seconds, count / self.bucket_seconds))
        return series
