"""ASCII rendering of experiment series (terminal-friendly "figures").

The paper's figures are line charts of throughput/latency against a swept
parameter.  This module renders the same series as plain-text charts so that
``ringbft plot <experiment>`` can show a figure's shape directly in the
terminal, without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

_BAR = "#"
_WIDTH = 46


def _format_value(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M"
    if value >= 1_000:
        return f"{value / 1_000:.1f}K"
    return f"{value:.2f}"


def horizontal_bars(
    points: Sequence[tuple[str, float]],
    *,
    title: str = "",
    unit: str = "",
    width: int = _WIDTH,
) -> str:
    """Render ``(label, value)`` pairs as a horizontal bar chart."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)
    peak = max(value for _, value in points) or 1.0
    label_width = max(len(label) for label, _ in points)
    for label, value in points:
        bar = _BAR * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(
            f"  {label.ljust(label_width)} | {bar.ljust(width)} {_format_value(value)}{unit}"
        )
    return "\n".join(lines)


def series_chart(
    rows: list[dict],
    *,
    x_key: str,
    y_key: str,
    group_key: str = "protocol",
    title: str = "",
    unit: str = "",
) -> str:
    """Render experiment rows (one group per protocol) as grouped bar charts.

    ``rows`` is the output of an experiment module: a list of dictionaries
    with a group column (protocol), an x column (the swept parameter), and a
    y column (the measured value).
    """
    groups: dict[str, list[tuple[str, float]]] = {}
    for row in rows:
        if x_key not in row or y_key not in row:
            continue
        group = str(row.get(group_key, ""))
        groups.setdefault(group, []).append((str(row[x_key]), float(row[y_key])))
    blocks: list[str] = []
    if title:
        blocks.append(f"== {title} ==")
    for group, points in groups.items():
        heading = f"{group}  ({y_key} vs {x_key})" if group else f"{y_key} vs {x_key}"
        blocks.append(horizontal_bars(points, title=heading, unit=unit))
    return "\n\n".join(blocks) if blocks else "(no data)"


def figure_chart(experiment: str, rows: list[dict]) -> str:
    """Best-effort chart for a registered experiment's rows.

    Picks the x-axis column the experiment swept (the first column that is
    neither the protocol nor a measurement) and renders one throughput chart
    and, when available, one latency chart.
    """
    if not rows:
        return "(no data)"
    measurement_keys = {"throughput_tps", "latency_s", "bottleneck", "protocol"}
    sample = rows[0]
    x_key = next((key for key in sample if key not in measurement_keys), None)
    if x_key is None or "throughput_tps" not in sample:
        return series_chart(rows, x_key=list(sample)[0], y_key=list(sample)[-1], title=experiment)
    charts = [
        series_chart(rows, x_key=x_key, y_key="throughput_tps", title=f"{experiment}: throughput", unit=" tps")
    ]
    if "latency_s" in sample:
        charts.append(
            series_chart(rows, x_key=x_key, y_key="latency_s", title=f"{experiment}: latency", unit=" s")
        )
    return "\n\n".join(charts)
