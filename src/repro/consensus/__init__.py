"""Consensus protocols: intra-shard PBFT and the directory shared by all nodes."""

from repro.consensus.directory import Directory
from repro.consensus.pbft.replica import PbftReplica
from repro.consensus.pbft.client import Client

__all__ = ["Directory", "PbftReplica", "Client"]
