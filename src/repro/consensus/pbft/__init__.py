"""Intra-shard PBFT: three-phase consensus, checkpointing, and view changes."""

from repro.consensus.pbft.log import ConsensusLog, SlotState
from repro.consensus.pbft.replica import PbftReplica
from repro.consensus.pbft.client import Client

__all__ = ["ConsensusLog", "SlotState", "PbftReplica", "Client"]
