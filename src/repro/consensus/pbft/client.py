"""Client node: submits transactions and waits for ``f + 1`` matching replies.

Clients sign their requests (non-repudiation, attack A1 in the paper), send
them to the primary of the first involved shard in ring order, and start a
timer.  If the timer fires before ``f + 1`` identical responses arrive, the
client broadcasts the request to *every* replica of that shard, which forces
either a reply (already executed) or a view change (primary withholding the
request).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import codec
from repro.common.crypto import KeyStore, SignatureScheme
from repro.common.messages import ClientRequest, ClientResponse, Message
from repro.config import TimerConfig
from repro.consensus.directory import Directory
from repro.sim.network import Network
from repro.sim.node import Node
from repro.txn.transaction import Transaction


@dataclass
class CompletedTransaction:
    """Latency record for one completed transaction."""

    txn_id: str
    submitted_at: float
    completed_at: float
    cross_shard: bool

    @property
    def latency(self) -> float:
        return self.completed_at - self.submitted_at


@dataclass
class _InFlight:
    request: ClientRequest
    target_shard: int
    submitted_at: float
    responders: set[str] = field(default_factory=set)
    retransmissions: int = 0


class Client(Node):
    """An open-loop client driving one or more transactions at a time."""

    def __init__(
        self,
        client_id: str,
        directory: Directory,
        network: Network,
        keystore: KeyStore,
        *,
        region: str = "local",
        timers: TimerConfig | None = None,
    ) -> None:
        super().__init__(client_id, region, network)
        self.client_id = client_id
        self.directory = directory
        self.timers_config = timers or directory.config.timers
        self.signer = SignatureScheme(keystore)
        self._signing_key = keystore.signing_key(client_id)
        self._in_flight: dict[str, _InFlight] = {}
        self.completed: list[CompletedTransaction] = []

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def target_shard_for(self, txn: Transaction) -> int:
        """The shard a request is addressed to: first involved shard in ring order."""
        return self.directory.ring.first_in_ring_order(txn.involved_shards)

    def submit(self, txn: Transaction) -> ClientRequest:
        """Sign and send ``txn`` to the primary of its initiator shard."""
        request = ClientRequest(sender=self.client_id, transaction=txn)
        payload = request.payload_bytes()
        signature = self.signer.sign(self.client_id, payload, self._signing_key)
        request = ClientRequest(sender=self.client_id, transaction=txn, signature=signature)
        # The signature is excluded from the request's own payload fields, so
        # the signed bytes are also the rebuilt request's canonical payload.
        codec.prime_payload(request, payload)
        target_shard = self.target_shard_for(txn)
        self._in_flight[txn.txn_id] = _InFlight(
            request=request, target_shard=target_shard, submitted_at=self.now
        )
        primary = self.directory.primary_of(target_shard, view=0)
        self.send(primary, request)
        self._arm_retransmission_timer(txn.txn_id)
        return request

    def _arm_retransmission_timer(self, txn_id: str, attempt: int = 0) -> None:
        # Exponential backoff: repeated broadcasts of an unanswered request
        # would otherwise flood a recovering shard with duplicates.
        delay = self.timers_config.client_timeout * (2 ** min(attempt, 4))
        self.set_timer(
            f"client-{txn_id}",
            delay,
            lambda: self._on_timeout(txn_id),
        )

    def _on_timeout(self, txn_id: str) -> None:
        entry = self._in_flight.get(txn_id)
        if entry is None:
            return
        # Broadcast to every replica of the target shard (attack A1 recovery).
        entry.retransmissions += 1
        replicas = self.directory.replicas_of(entry.target_shard)
        self.broadcast(list(replicas), entry.request)
        self._arm_retransmission_timer(txn_id, attempt=entry.retransmissions)

    # ------------------------------------------------------------------
    # responses
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if not isinstance(message, ClientResponse):
            return
        entry = self._in_flight.get(message.txn_id)
        if entry is None:
            return
        entry.responders.add(str(message.sender))
        needed = self.directory.quorum(entry.target_shard).weak_quorum
        if len(entry.responders) >= needed:
            self._complete(message.txn_id, entry)

    def _complete(self, txn_id: str, entry: _InFlight) -> None:
        del self._in_flight[txn_id]
        self.cancel_timer(f"client-{txn_id}")
        self.completed.append(
            CompletedTransaction(
                txn_id=txn_id,
                submitted_at=entry.submitted_at,
                completed_at=self.now,
                cross_shard=entry.request.transaction.is_cross_shard,
            )
        )

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._in_flight)

    @property
    def completed_count(self) -> int:
        return len(self.completed)

    def latencies(self) -> list[float]:
        return [record.latency for record in self.completed]
