"""PBFT replica: the intra-shard consensus engine every protocol builds on.

RingBFT is a *meta* protocol -- inside each shard it runs an ordinary
primary-backup BFT protocol, and the paper (like this reproduction) uses PBFT.
The replica implemented here provides:

* the three normal-case phases (PrePrepare -> Prepare -> Commit) over request
  batches, with out-of-order consensus but in-order execution;
* request batching at the primary;
* periodic checkpoints for log truncation and dark-replica catch-up;
* the PBFT view-change / new-view sub-protocol to replace a faulty primary;
* per-shard ledger, key-value store, and execution engine.

Subclasses (RingBFT, AHL, Sharper) override a small set of hooks --
:meth:`_should_sign_commit`, :meth:`_on_batch_committed`, and
:meth:`_accepts_client_request` -- to layer their cross-shard machinery on top
without touching the intra-shard core.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.common import codec
from repro.common.batching import Batcher
from repro.common.crypto import KeyStore, MacAuthenticator, SignatureScheme
from repro.common.crypto import sha256
from repro.common.messages import (
    Checkpoint,
    ClientRequest,
    ClientResponse,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    StateTransferReply,
    StateTransferRequest,
    Message,
    ViewChange,
    batch_digest,
)
from repro.common.types import ReplicaId
from repro.config import PipelineConfig, TimerConfig
from repro.consensus.directory import Directory
from repro.consensus.pbft.log import ConsensusLog, SlotState
from repro.consensus.pbft.pacing import SlotOccupancyController
from repro.sim.network import Network
from repro.sim.node import Node
from repro.storage.checkpoint import CheckpointStore
from repro.storage.executor import ExecutionEngine
from repro.storage.kvstore import KeyValueStore
from repro.storage.ledger import Ledger
from repro.storage.locks import LockManager
from repro.txn.transaction import Transaction

#: Delay after which a primary proposes a partially filled batch rather than
#: waiting for it to fill completely.
BATCH_FLUSH_DELAY = 0.05


class PbftReplica(Node):
    """One replica of one shard running PBFT."""

    def __init__(
        self,
        replica_id: ReplicaId,
        directory: Directory,
        network: Network,
        keystore: KeyStore,
        *,
        timers: TimerConfig | None = None,
        batch_size: int | None = None,
        initial_records: dict[str, str] | None = None,
    ) -> None:
        region = directory.region_of(replica_id.shard)
        super().__init__(replica_id, region, network)
        self.replica_id = replica_id
        self.shard_id = replica_id.shard
        self.directory = directory
        self.quorum = directory.quorum(self.shard_id)
        self.timers_config = timers or directory.config.timers
        self.keystore = keystore
        self.signer = SignatureScheme(keystore)
        self.mac = MacAuthenticator(owner=str(replica_id), keystore=keystore)
        self._signing_key = keystore.signing_key(str(replica_id))

        # Broadcast authentication (intra-shard MACs, Section 3) -----------
        #: Label under which this replica looks up its own tag in a received
        #: message's MAC vector.
        self.auth_label = f"peer:{replica_id}"
        self.auth_tags_created = 0
        self.auth_verifications = 0
        self.auth_rejections = 0

        # Consensus state -------------------------------------------------
        self.view = 0
        self.next_sequence = 1
        self.log = ConsensusLog()
        self.batcher = Batcher(batch_size or directory.config.workload.batch_size)
        #: Proposal pipelining (PBFT's multiple-sequences-in-flight window).
        #: depth=1 reproduces the classic propose-on-fill behaviour exactly.
        self.pipeline: PipelineConfig = (
            getattr(directory.config, "pipeline", None) or PipelineConfig()
        )
        #: Sequences this replica proposed that have not committed or been
        #: abandoned yet -- the occupied part of the proposal window.
        self._open_slots: set[int] = set()
        self.peak_open_slots = 0
        #: Rate-shaped pump state: EWMA load/latency estimates and the
        #: occupancy gauge.  Only fed on the depth>1 paths, so the depth=1
        #: legacy code path stays byte-identical.
        self.pacing = SlotOccupancyController(
            depth=self.pipeline.depth,
            min_batch=self.pipeline.min_batch_size,
            max_batch=self.pipeline.max_batch_size or self.batcher.batch_size,
            ewma_alpha=self.pipeline.ewma_alpha,
            latency_prior_s=self.pipeline.latency_prior_s,
            sustain_threshold=self.pipeline.sustain_threshold,
        )
        #: Batches proposed by the shaped rules vs the eager fallback.
        self.shaped_batch_count = 0
        self.fallback_batch_count = 0
        #: txn_id -> stage time at this primary, consumed at proposal time to
        #: derive the per-batch queue delay (time a request waited for its
        #: batch to open a slot).
        self._enqueue_times: dict[str, float] = {}
        self.queue_delay_total = 0.0
        self.proposed_batch_count = 0
        #: Requests proposed across all batches (includes forwarded
        #: cross-shard requests that never queued at this primary).
        self.proposed_txn_count = 0
        #: Requests with a recorded queue delay (staged at this primary).
        self.proposed_request_count = 0
        self.batches: dict[bytes, tuple[ClientRequest, ...]] = {}
        self.last_executed = 0
        self._pending_execution: dict[int, bytes] = {}
        self._ledger_pending: dict[int, bytes] = {}
        self._ledger_appended = 0
        self._pending_client_requests: dict[str, ClientRequest] = {}
        self._committed_sequences: set[int] = set()
        self._committed_txn_ids: set[str] = set()
        self._abandoned_sequences: set[int] = set()
        #: Transactions this replica (as primary) has already batched/proposed
        #: and that have not executed yet -- prevents client retransmissions
        #: from being ordered twice.
        self._enqueued_txns: set[str] = set()

        # View change state -------------------------------------------------
        self._view_change_votes: dict[int, dict[ReplicaId, ViewChange]] = {}
        self._view_change_target: int | None = None
        self.view_changes_completed = 0
        self._future_pre_prepares: list[PrePrepare] = []
        self._future_votes: list[Prepare | Commit] = []
        self._last_view_install_time = float("-inf")

        # Storage -----------------------------------------------------------
        self.store = KeyValueStore(self.shard_id)
        if initial_records:
            self.store.load(initial_records)
        self.executor = ExecutionEngine(self.shard_id, self.store)
        self.ledger = Ledger(self.shard_id)
        self.locks = LockManager(self.shard_id)
        self.checkpoints = CheckpointStore(self.timers_config.checkpoint_interval)

        # Lock-ordered continuations (shared by the sharded protocol subclasses).
        self._lock_continuations: dict[str, object] = {}

        # State transfer (dark-replica catch-up) ------------------------------
        self._state_transfer_in_flight = False
        self._state_replies: dict[bytes, dict[ReplicaId, StateTransferReply]] = {}
        self.state_transfers_completed = 0

        # Byzantine behaviour knobs used by the fault injector ---------------
        self.byzantine_silent = False
        self.dark_targets: set[ReplicaId] = set()

        # Metrics -------------------------------------------------------------
        self.executed_txn_count = 0
        self.committed_batch_count = 0

        # Garbage collection ---------------------------------------------------
        #: When True (default), a stable checkpoint truncates the consensus
        #: log, the batch payloads, and subclass-specific records below the
        #: safe watermark.  Disabled only by diagnostics (bench_steady_state
        #: measures the growth this prevents).
        self.gc_enabled = True
        self.gc_runs = 0
        self.gc_watermark = 0

    # ------------------------------------------------------------------
    # membership helpers
    # ------------------------------------------------------------------

    @property
    def shard_peers(self) -> tuple[ReplicaId, ...]:
        """All replicas of this shard (including self)."""
        return self.directory.replicas_of(self.shard_id)

    @property
    def primary(self) -> ReplicaId:
        """The primary of this shard in the replica's current view."""
        return self.directory.primary_of(self.shard_id, self.view)

    @property
    def is_primary(self) -> bool:
        return self.primary == self.replica_id

    def _broadcast_shard(self, message: Message, include_self: bool = True) -> None:
        """Broadcast to every replica of this shard, honouring dark-target attacks."""
        targets = [r for r in self.shard_peers if r not in self.dark_targets]
        self._authenticate_for_audience(message, [r for r in targets if r != self.replica_id])
        self.broadcast(targets, message, include_self=include_self)

    # ------------------------------------------------------------------
    # broadcast authentication (pairwise MAC vector, one payload resolve)
    # ------------------------------------------------------------------

    def _authenticate_for_audience(self, message: Message, peers: Sequence[ReplicaId]) -> None:
        """Attach the PBFT authenticator (per-peer MAC vector) for a broadcast.

        The key structure stays pairwise -- a shared audience key would let a
        Byzantine shard member forge the primary's messages -- so the fast
        path optimises the bytes *under* the tags: the memoised payload is
        resolved once and shared by all ``n`` HMACs, and retransmissions of
        the same object to the same peers mint no new tags.  In the
        benchmark-only legacy mode every tag re-serialises the payload, which
        reproduces the pre-codec cost profile.
        """
        if codec.LEGACY.enabled:
            for peer in peers:
                message.attach_auth(
                    f"peer:{peer}", self.mac.tag(str(peer), message.payload_bytes())
                )
            self.auth_tags_created += len(peers)
            return
        missing = [peer for peer in peers if message.auth_tag(f"peer:{peer}") is None]
        if not missing:
            return
        vector = self.mac.tag_vector([str(peer) for peer in missing], message.payload_bytes())
        for peer in missing:
            message.attach_auth(f"peer:{peer}", vector[str(peer)])
        self.auth_tags_created += len(missing)

    def _authenticate_cross_shard_broadcast(self, message: Message, shards: Iterable[int]) -> None:
        """Authenticate a broadcast spanning several shards (AHL's 2PC and
        Sharper's global rounds fan one message out to every replica of every
        involved shard): one pairwise tag per receiving replica, all over the
        same memoised payload."""
        peers = [
            r
            for shard in sorted(shards)
            for r in self.directory.replicas_of(shard)
            if r != self.replica_id
        ]
        self._authenticate_for_audience(message, peers)

    #: Message types that are always sent with a MAC vector and therefore
    #: MUST carry a valid tag for the receiver -- a sender cannot opt out of
    #: authentication by omitting the tag.  State transfer is included: its
    #: f+1 agreement counts *distinct senders*, which only means anything if
    #: the sender fields are authenticated.  Every other type is covered by
    #: its own mechanism (client signatures on requests, subclass-specific
    #: certificates) or is client traffic; subclasses extend this set with
    #: their own always-tagged broadcast types.
    _MAC_REQUIRED_TYPES = (
        PrePrepare,
        Prepare,
        Commit,
        Checkpoint,
        ViewChange,
        NewView,
        StateTransferRequest,
        StateTransferReply,
    )

    def _verify_broadcast_auth(self, message: Message) -> bool:
        """Check the MAC vector riding on a delivered message.

        The receiver verifies *its own* pairwise tag against the claimed
        sender's key -- one HMAC over the memoised payload.  The verdict is
        never cached on the shared object, so no other receiver (honest or
        Byzantine) can vouch for it.  The sender field earns no trust here --
        a received message claiming *this* replica as sender is checked like
        any other (genuine loopbacks bypass the gate via
        :meth:`deliver_loopback` and never reach it).
        """
        tag = message.auth_tag(self.auth_label)
        if tag is None:
            if isinstance(message, self._MAC_REQUIRED_TYPES):
                self.auth_rejections += 1
                return False
            return True
        ok = self.mac.verify(str(message.sender), message.payload_bytes(), tag)
        self.auth_verifications += 1
        if not ok:
            self.auth_rejections += 1
        return ok

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if not self._verify_broadcast_auth(message):
            return
        self._dispatch(message)

    def deliver_loopback(self, message: Message) -> None:
        """This replica's own broadcast looping back: no network hop, no MAC
        gate (the gate would otherwise reject it -- a sender does not tag
        itself, and a *received* message naming us as sender is spoofable)."""
        if self.crashed:
            return
        self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        if isinstance(message, ClientRequest):
            self._handle_client_request(message)
        elif isinstance(message, PrePrepare):
            self._handle_pre_prepare(message)
        elif isinstance(message, Prepare):
            self._handle_prepare(message)
        elif isinstance(message, Commit):
            self._handle_commit(message)
        elif isinstance(message, Checkpoint):
            self._handle_checkpoint(message)
        elif isinstance(message, ViewChange):
            self._handle_view_change(message)
        elif isinstance(message, NewView):
            self._handle_new_view(message)
        elif isinstance(message, StateTransferRequest):
            self._handle_state_request(message)
        elif isinstance(message, StateTransferReply):
            self._handle_state_reply(message)
        else:
            self._handle_protocol_message(message)

    def _handle_protocol_message(self, message: Message) -> None:
        """Hook for subclass-specific messages (Forward, Execute, 2PC votes, ...)."""

    # ------------------------------------------------------------------
    # client requests and batching
    # ------------------------------------------------------------------

    def _accepts_client_request(self, request: ClientRequest) -> bool:
        """Whether this shard should order ``request``.

        The base (fully intra-shard) protocol accepts any request touching
        this shard; RingBFT narrows this to requests for which this shard is
        first in ring order.
        """
        return self.shard_id in request.transaction.involved_shards

    def _handle_client_request(self, request: ClientRequest) -> None:
        txn = request.transaction
        if self.executor.already_executed(txn.txn_id):
            # Retransmission of an executed request: reply with the stored result.
            self._reply_to_client(request, self._sequence_of_txn(txn.txn_id))
            return
        if txn.txn_id in self._committed_txn_ids:
            # Already ordered locally; it executes (and is answered) as soon as
            # earlier transactions release their locks.  Re-ordering it would
            # both duplicate work and needlessly trigger view changes.
            return
        if not self._accepts_client_request(request):
            self._redirect_client_request(request)
            return
        self._pending_client_requests[txn.txn_id] = request
        if self.is_primary:
            if self.byzantine_silent:
                return
            self._enqueue_for_proposal(request)
        else:
            # A non-primary replica relays the request to its primary and
            # expects consensus to start before its local timer fires (A1).
            self.send(self.primary, request)
            self._start_request_timer(txn.txn_id)

    def _redirect_client_request(self, request: ClientRequest) -> None:
        """Hook: base protocol drops requests for other shards."""

    def _enqueue_for_proposal(self, request: ClientRequest, *, fresh: bool = True) -> None:
        txn_id = request.transaction.txn_id
        if (
            txn_id in self._enqueued_txns
            or txn_id in self._committed_txn_ids
            or self.executor.already_executed(txn_id)
        ):
            # Retransmission of a transaction that is already being ordered,
            # already ordered (committed but not yet executed), or finished.
            # The committed check matters after a view change: a new primary
            # that lagged behind the old view's commits re-stages its pending
            # backlog, and ordering an already-committed transaction a second
            # time would duplicate it in the chain.
            return
        self._enqueued_txns.add(txn_id)
        self._enqueue_times[txn_id] = self.now
        if self.pipeline.depth <= 1:
            # Classic propose-on-fill: one batch in flight per fill/flush.
            batch = self.batcher.add(request)
            if batch is not None:
                self._propose(tuple(batch))
            elif not self.has_timer("batch-flush"):
                self.set_timer("batch-flush", BATCH_FLUSH_DELAY, self._flush_batches)
            return
        if fresh:
            # Re-staged requests (a new primary resubmitting the old view's
            # backlog) are not offered load: thousands of same-instant
            # zero gaps would collapse the interarrival EWMA and pin the
            # rate estimate at infinity for the rest of the run.
            self.pacing.note_arrival(self.now)
        self.batcher.stage(request)
        self._pump_pipeline("arrival")

    def _flush_batches(self) -> None:
        if self.pipeline.depth <= 1:
            for batch in self.batcher.flush():
                self._propose(tuple(batch))
            return
        # The flush timer forces staged requests out even below the shaped
        # ceiling / min_batch_size; sizing still goes through the adaptive
        # rule, so a deep queue is never emitted as one-request crumbs.
        self._pump_pipeline("flush")

    # ------------------------------------------------------------------
    # pipelined proposal window (depth > 1)
    # ------------------------------------------------------------------

    def _max_adaptive_batch(self) -> int:
        return self.pipeline.max_batch_size or self.batcher.batch_size

    def _adaptive_batch_size(self, pending: int) -> int:
        """Batch size chosen from the pending-queue depth.

        The queue is split into the *fewest* even chunks that respect
        ``max_batch``: a shallow queue ships whole (one slot, immediately), a
        deep one splits into balanced full-size batches that overlap in the
        window.  Splitting further just to occupy free slots would add
        consensus rounds without helping latency -- execution is in sequence
        order regardless.
        """
        max_batch = self._max_adaptive_batch()
        chunks = -(-pending // max_batch)
        size = -(-pending // chunks)
        return max(self.pipeline.min_batch_size, min(size, max_batch))

    def _pump_pipeline(self, reason: str = "slot") -> None:
        """Open proposal slots up to the window depth, rate-shaped.

        ``reason`` names the event that triggered the pump: ``"arrival"`` (a
        request was staged), ``"slot"`` (a slot left the window), or
        ``"flush"`` (the queue-delay timer fired).

        Two regimes, chosen by the occupancy controller's measured in-flight
        demand (:meth:`SlotOccupancyController.window_sustainable`):

        * **shaped** -- arrivals can keep the window busy, so every slot is
          worth a real batch: the pump proposes only ceiling-sized batches
          (:meth:`~SlotOccupancyController.batch_ceiling` targets ``depth``
          concurrently-busy slots) and otherwise lets requests accumulate.
          No 1-txn crumbs while the window has headroom, no whole-queue
          mega-batch starving slots 2..k.
        * **eager fallback** -- arrivals are slower than consensus rounds
          (the controller cannot keep even one slot busy), so holding buys
          nothing: ship immediately when the window is idle, and while a
          round is in flight let it act as the batching clock.  This is the
          pre-shaping pump, byte-for-byte, and the k=1-style mega-batching it
          degrades to under a deep queue is the proven closed-loop behaviour.

        Either way the flush timer re-armed below bounds how long a staged
        request can wait, and flush-triggered pumps size batches through the
        adaptive even-split rule so they never emit crumbs from a deep queue.
        """
        shaped = self.pacing.window_sustainable()
        while len(self._open_slots) < self.pipeline.depth:
            pending = self.batcher.pending
            if pending == 0:
                break
            if shaped and reason != "flush":
                size = self.pacing.batch_ceiling()
                if pending < size:
                    break
            elif reason == "arrival":
                if pending < self.pipeline.min_batch_size:
                    break
                if self._open_slots and pending < self._max_adaptive_batch():
                    break
                size = self._adaptive_batch_size(pending)
            else:
                size = self._adaptive_batch_size(pending)
            batch = self.batcher.take(size)
            if not batch:
                break
            if shaped and reason != "flush":
                self.shaped_batch_count += 1
            else:
                self.fallback_batch_count += 1
            self._propose(tuple(batch))
        if self.batcher.pending and not self.has_timer("batch-flush"):
            self.set_timer(
                "batch-flush", self.pipeline.target_queue_delay, self._flush_batches
            )

    def _record_proposed_batch(self, sequence: int, batch: tuple[ClientRequest, ...]) -> None:
        """Track window occupancy and queue delay for a freshly proposed batch."""
        self._open_slots.add(sequence)
        if len(self._open_slots) > self.peak_open_slots:
            self.peak_open_slots = len(self._open_slots)
        if self.pipeline.depth > 1:
            self.pacing.note_propose(self.now, sequence)
        self.proposed_batch_count += 1
        self.proposed_txn_count += len(batch)
        now = self.now
        for request in batch:
            staged_at = self._enqueue_times.pop(request.transaction.txn_id, None)
            if staged_at is not None:
                self.queue_delay_total += now - staged_at
                self.proposed_request_count += 1

    def _close_slot(self, sequence: int, *, committed: bool = True) -> None:
        """A slot left the window (committed or abandoned): refill it."""
        if sequence in self._open_slots:
            self._open_slots.discard(sequence)
            if self.pipeline.depth > 1:
                self.pacing.note_close(self.now, sequence, committed=committed)
                self._pump_pipeline("slot")

    @property
    def open_slot_count(self) -> int:
        """Number of this replica's proposals currently in flight."""
        return len(self._open_slots)

    @property
    def avg_queue_delay(self) -> float:
        """Mean time a request waited at this primary before being proposed."""
        if not self.proposed_request_count:
            return 0.0
        return self.queue_delay_total / self.proposed_request_count

    @property
    def pacing_stats(self) -> dict[str, float | int]:
        """Occupancy-controller gauge readings (empty when not pipelined)."""
        if self.pipeline.depth <= 1:
            return {}
        return self.pacing.snapshot(self.now)

    def _local_timeout(self) -> float:
        """Local timeout with exponential backoff over successive views.

        PBFT doubles its view-change timer each view so that a burst of
        timeouts during recovery does not cascade into further view changes.
        """
        return self.timers_config.local_timeout * (2 ** min(self.view, 4))

    def _start_request_timer(self, txn_id: str) -> None:
        armed_view = self.view
        self.set_timer(
            f"request-{txn_id}",
            self._local_timeout(),
            lambda: self._on_request_timeout(txn_id, armed_view),
        )

    def _on_request_timeout(self, txn_id: str, armed_view: int) -> None:
        if txn_id not in self._pending_client_requests:
            return
        if armed_view != self.view:
            # A view change already happened; give the new primary a fresh timeout.
            self._start_request_timer(txn_id)
            return
        self._initiate_view_change()

    # ------------------------------------------------------------------
    # normal-case phases
    # ------------------------------------------------------------------

    def _propose(self, batch: tuple[ClientRequest, ...]) -> None:
        """Primary-only: assign a sequence number and broadcast a PrePrepare."""
        # Last-line exactly-once guard: a request staged before a view change
        # can commit (via the new view's re-proposals) while it still sits in
        # the batcher queue.  Healthy runs never hit this filter, so the
        # proposal stream -- and the depth=1 chain identity -- is unchanged.
        batch = tuple(
            request
            for request in batch
            if request.transaction.txn_id not in self._committed_txn_ids
            and not self.executor.already_executed(request.transaction.txn_id)
        )
        if not batch:
            return
        digest = batch_digest(batch)
        sequence = self.next_sequence
        self.next_sequence += 1
        self._record_proposed_batch(sequence, batch)
        message = PrePrepare(
            sender=self.replica_id,
            view=self.view,
            sequence=sequence,
            batch_digest=digest,
            requests=batch,
        )
        self._broadcast_shard(message)

    def _handle_pre_prepare(self, message: PrePrepare) -> None:
        if message.view > self.view:
            # Proposal from a view we have not installed yet (the NewView is
            # still in flight); buffer it and replay once the view installs.
            self._future_pre_prepares.append(message)
            return
        if message.view != self.view:
            return
        if message.sender != self.directory.primary_of(self.shard_id, message.view):
            return
        if batch_digest(message.requests) != message.batch_digest:
            return
        if self.log.has_accepted(message.view, message.sequence):
            if self.log.accepted_digest(message.view, message.sequence) != message.batch_digest:
                # Equivocating primary: refuse the second proposal.
                return
        self.log.accept(message.view, message.sequence, message.batch_digest)
        slot = self.log.slot(message.view, message.sequence)
        slot.record_pre_prepare(message)
        self.batches[message.batch_digest] = message.requests
        self._start_slot_timer(message.sequence)
        prepare = Prepare(
            sender=self.replica_id,
            view=message.view,
            sequence=message.sequence,
            batch_digest=message.batch_digest,
        )
        self._broadcast_shard(prepare)
        self._check_prepared(message.view, message.sequence, message.batch_digest)

    def _start_slot_timer(self, sequence: int) -> None:
        armed_view = self.view
        self.set_timer(
            f"slot-{sequence}",
            self._local_timeout(),
            lambda: self._on_slot_timeout(sequence, armed_view),
        )

    def _on_slot_timeout(self, sequence: int, armed_view: int) -> None:
        if sequence in self._committed_sequences or sequence in self._abandoned_sequences:
            return
        if armed_view != self.view:
            # The slot belongs to an old view; the new view's re-proposals or
            # abandonments supersede it.
            return
        self._initiate_view_change()

    def _handle_prepare(self, message: Prepare) -> None:
        if message.view > self.view:
            # Vote from a view whose NewView has not reached us yet: replicas
            # install a new view at slightly different times, so early votes
            # must be buffered rather than lost (they are replayed on install).
            self._future_votes.append(message)
            return
        if message.view != self.view:
            return
        slot = self.log.slot(message.view, message.sequence)
        slot.record_prepare(message)
        self._check_prepared(message.view, message.sequence, message.batch_digest)

    def _check_prepared(self, view: int, sequence: int, digest: bytes) -> None:
        slot = self.log.slot(view, sequence)
        if slot.state not in (SlotState.PRE_PREPARED, SlotState.EMPTY):
            return
        if not self.log.is_prepared(view, sequence, digest, self.quorum.commit_quorum):
            return
        self.log.mark(view, sequence, SlotState.PREPARED)
        commit = self._make_commit(view, sequence, digest)
        self._broadcast_shard(commit)
        self._check_committed(view, sequence, digest)

    def _make_commit(self, view: int, sequence: int, digest: bytes) -> Commit:
        commit = Commit(sender=self.replica_id, view=view, sequence=sequence, batch_digest=digest)
        if self._should_sign_commit(digest):
            signature = self.signer.sign(str(self.replica_id), commit.signed_payload(), self._signing_key)
            commit = Commit(
                sender=self.replica_id,
                view=view,
                sequence=sequence,
                batch_digest=digest,
                signature=signature,
            )
        return commit

    def _should_sign_commit(self, digest: bytes) -> bool:
        """Whether Commit votes for this batch need digital signatures.

        The base protocol never needs non-repudiation; RingBFT signs commits
        of cross-shard batches so the next shard can verify the certificate.
        """
        return False

    def _handle_commit(self, message: Commit) -> None:
        if message.view > self.view:
            self._future_votes.append(message)
            return
        if message.view != self.view:
            return
        slot = self.log.slot(message.view, message.sequence)
        slot.record_commit(message)
        self._check_committed(message.view, message.sequence, message.batch_digest)

    def _check_committed(self, view: int, sequence: int, digest: bytes) -> None:
        slot = self.log.slot(view, sequence)
        if slot.state in (SlotState.COMMITTED, SlotState.EXECUTED):
            return
        if sequence in self._committed_sequences:
            # Already committed under an earlier view (re-proposal after a view change).
            return
        if not self.log.is_committed(view, sequence, digest, self.quorum.commit_quorum):
            return
        self.log.mark(view, sequence, SlotState.COMMITTED)
        self._committed_sequences.add(sequence)
        self.committed_batch_count += 1
        self.cancel_timer(f"slot-{sequence}")
        batch = self.batches.get(digest, ())
        for request in batch:
            self._committed_txn_ids.add(request.transaction.txn_id)
            self._pending_client_requests.pop(request.transaction.txn_id, None)
            self.cancel_timer(f"request-{request.transaction.txn_id}")
        self._ledger_pending[sequence] = digest
        self._drain_ledger()
        if self.pipeline.depth > 1:
            self.pacing.note_commit(self.now, sequence)
        if not self._defer_slot_release(sequence, digest):
            self._close_slot(sequence)
        self._on_batch_committed(view, sequence, digest, batch)

    def _defer_slot_release(self, sequence: int, digest: bytes) -> bool:
        """Hook: whether a committed slot stays open past local commit.

        The base protocol frees a slot at commit time -- consensus on the
        sequence is over.  A meta protocol may keep it open while the batch
        still has cross-shard work in flight, which turns the proposal window
        into a speculation bound: a primary cannot launch more concurrent
        cross-shard batches than it has slots, so ``depth`` back-pressures the
        ring instead of only the local three-phase pipeline.  A subclass that
        returns True owns the matching :meth:`_close_slot` call.
        """
        return False

    def _drain_ledger(self) -> None:
        """Append committed batches to the ledger strictly in sequence order.

        The block order therefore reflects the shard's commit order (the
        paper's "each k-th block represents a batch committed at sequence
        k") and is identical on every replica, independent of when the
        batches finish executing.
        """
        while True:
            sequence = self._ledger_appended + 1
            if sequence in self._ledger_pending:
                digest = self._ledger_pending.pop(sequence)
                batch = self.batches.get(digest, ())
                transactions = [request.transaction for request in batch]
                if transactions:
                    self.ledger.append_batch(sequence, str(self.primary), transactions)
                self._ledger_appended = sequence
                continue
            if sequence in self._abandoned_sequences:
                self._ledger_appended = sequence
                continue
            break

    # ------------------------------------------------------------------
    # execution (in sequence order)
    # ------------------------------------------------------------------

    def _on_batch_committed(
        self, view: int, sequence: int, digest: bytes, batch: tuple[ClientRequest, ...]
    ) -> None:
        """Base behaviour: queue the batch and execute strictly in sequence order."""
        self._pending_execution[sequence] = digest
        self._execute_ready_batches()

    def _execute_ready_batches(self) -> None:
        while True:
            sequence = self.last_executed + 1
            if sequence in self._pending_execution:
                digest = self._pending_execution.pop(sequence)
                batch = self.batches.get(digest, ())
                self._execute_batch(sequence, digest, batch)
                self.last_executed = sequence
                continue
            if sequence in self._abandoned_sequences:
                # A view change declared this sequence a no-op; skip the gap.
                self.last_executed = sequence
                continue
            break

    def _execute_batch(
        self,
        sequence: int,
        digest: bytes,
        batch: tuple[ClientRequest, ...],
        remote_values: dict[int, dict[str, str]] | None = None,
    ) -> None:
        """Execute every transaction in the batch, append the block, reply to clients."""
        transactions = [request.transaction for request in batch]
        if not transactions:
            return
        self.executor.execute_batch(transactions, remote_values)
        self.executed_txn_count += len(transactions)
        self.log.mark(self.view, sequence, SlotState.EXECUTED)
        for request in batch:
            self._reply_to_client(request, sequence)
        self._maybe_checkpoint(sequence, tuple(transactions))

    def _reply_to_client(self, request: ClientRequest, sequence: int) -> None:
        txn = request.transaction
        if self.executor.already_executed(txn.txn_id):
            result = dict(self.executor.result_for(txn.txn_id).writes)
        else:
            result = {}
        response = ClientResponse(
            sender=self.replica_id,
            txn_id=txn.txn_id,
            sequence=sequence,
            result=result,
            shard=self.shard_id,
        )
        self.send(request.transaction.client_id, response)

    def _sequence_of_txn(self, txn_id: str) -> int:
        # O(1) via the ledger's txn index (retransmitted client requests used
        # to trigger a linear scan over every block ever committed).
        return self.ledger.sequence_of(txn_id)

    # ------------------------------------------------------------------
    # sequence-ordered locking helpers (used by RingBFT, AHL, Sharper)
    # ------------------------------------------------------------------

    def _lock_keys_for(self, batch: tuple[ClientRequest, ...]) -> frozenset[str]:
        """All data items this shard must lock for a batch (reads, writes, local deps)."""
        keys: set[str] = set()
        for request in batch:
            txn = request.transaction
            keys.update(txn.keys_for(self.shard_id))
            for op in txn.operations:
                keys.update(key for shard, key in op.depends_on if shard == self.shard_id)
        return frozenset(keys)

    def _acquire_locks_then(
        self,
        sequence: int,
        digest: bytes,
        batch: tuple[ClientRequest, ...],
        continuation: Callable[[], None],
    ) -> None:
        """Acquire the batch's locks in sequence order, then run ``continuation``.

        The continuation runs immediately when the locks are granted, or later
        when earlier transactions release them (the pending-list ``pi``
        behaviour of Section 4.3.5).
        """
        token = digest.hex()
        self._lock_continuations[token] = continuation
        acquired, unblocked = self.locks.try_lock(sequence, token, self._lock_keys_for(batch))
        if acquired:
            self._run_lock_continuation(token)
        for other in unblocked:
            self._run_lock_continuation(other)

    def _run_lock_continuation(self, token: str) -> None:
        continuation = self._lock_continuations.pop(token, None)
        if continuation is not None:
            continuation()

    def _release_lock_token(self, token: str) -> None:
        """Release a batch's locks and resume any transactions they unblocked."""
        if not self.locks.holds(token):
            return
        for unblocked in self.locks.release(token):
            self._run_lock_continuation(unblocked)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def _maybe_checkpoint(self, sequence: int, transactions: tuple[Transaction, ...]) -> None:
        self.checkpoints.record_batch(sequence, transactions)
        if not self.checkpoints.should_checkpoint(sequence):
            return
        # The rolling root re-digests only buckets touched since the last
        # checkpoint; the O(n) snapshot_digest_input() canonicalization was
        # the dominant per-interval cost at paper-scale partitions.
        digest = self.checkpoints.state_digest(self.store.state_root(), sequence)
        message = Checkpoint(sender=self.replica_id, sequence=sequence, state_digest=digest)
        self._broadcast_shard(message)

    def _handle_checkpoint(self, message: Checkpoint) -> None:
        became_stable = self.checkpoints.add_vote(
            message.sequence,
            str(message.sender),
            self.quorum.commit_quorum,
            message.state_digest,
            # f + 1 backers guarantee at least one correct replica vouches for
            # the digest stamped into the stable record.
            digest_quorum=self.quorum.weak_quorum,
        )
        if became_stable:
            self._on_stable_checkpoint(message.sequence)
        # A replica kept in the dark (attack A3) sees its peers' checkpoints
        # race ahead of its own execution point; it catches up by adopting a
        # quorum-confirmed state snapshot rather than replaying every batch.
        if message.sequence >= self.last_executed + 2 * self.checkpoints.interval:
            self._request_state_transfer()

    # ------------------------------------------------------------------
    # garbage collection (checkpoint-driven log truncation)
    # ------------------------------------------------------------------

    def _on_stable_checkpoint(self, sequence: int) -> None:
        """A checkpoint became stable: truncate everything below the safe watermark."""
        if not self.gc_enabled:
            return
        watermark = self._gc_floor(sequence)
        if watermark <= 0:
            return
        self._truncate_below(watermark)
        self.gc_watermark = max(self.gc_watermark, watermark)
        self.gc_runs += 1

    def _gc_floor(self, stable_sequence: int) -> int:
        """Highest sequence this replica may safely truncate.

        Never beyond the stable checkpoint (view changes restart from it),
        never beyond this replica's own execution and ledger progress (a dark
        replica must keep the evidence it has not applied yet -- it catches up
        via state transfer, after which :meth:`_install_state` re-runs GC).
        Never at or above an open proposal slot: an uncommitted in-flight
        sequence still needs its consensus evidence (the window makes gaps
        below ``next_sequence`` normal, so this is stated explicitly rather
        than relying on open slots trailing ``last_executed``).  Subclasses
        lower the floor further for in-flight cross-shard work.
        """
        floor = min(stable_sequence, self.last_executed, self._ledger_appended)
        if self._open_slots:
            floor = min(floor, min(self._open_slots) - 1)
        return floor

    def _truncate_below(self, watermark: int) -> None:
        releasable = self.log.truncate_below(watermark)
        # A digest may still be awaiting in-order execution or ledger append
        # (RingBFT executes out of band); those payloads must survive.
        still_needed = set(self._pending_execution.values()) | set(self._ledger_pending.values())
        for digest in releasable - still_needed:
            self.batches.pop(digest, None)
        self._committed_sequences = {s for s in self._committed_sequences if s > watermark}
        self._abandoned_sequences = {s for s in self._abandoned_sequences if s > watermark}
        # Executed transactions answer retransmissions through the executor's
        # result store, so their dedup entries here are redundant.
        self._committed_txn_ids = {
            txn_id
            for txn_id in self._committed_txn_ids
            if not self.executor.already_executed(txn_id)
        }
        self._enqueued_txns = {
            txn_id
            for txn_id in self._enqueued_txns
            if not self.executor.already_executed(txn_id)
        }
        for txn_id in [t for t in self._enqueue_times if t not in self._enqueued_txns]:
            del self._enqueue_times[txn_id]

    def retained_state(self) -> dict[str, int]:
        """Gauges of retained consensus state; flat in steady state once GC runs."""
        return {
            "open_slots": len(self._open_slots),
            "log_slots": self.log.slot_count,
            "batches": len(self.batches),
            "pending_execution": len(self._pending_execution),
            "ledger_pending": len(self._ledger_pending),
            "committed_sequences": len(self._committed_sequences),
            "committed_txn_ids": len(self._committed_txn_ids),
            "checkpoint_batches": self.checkpoints.log_size,
            "stable_checkpoints": self.checkpoints.stable_record_count,
            "checkpoint_votes": self.checkpoints.pending_vote_count,
            "locked_keys": self.locks.locked_key_count,
            "lock_pending": len(self.locks.pending_sequences),
        }

    # ------------------------------------------------------------------
    # state transfer (dark-replica / recovered-replica catch-up)
    # ------------------------------------------------------------------

    def _request_state_transfer(self) -> None:
        if self._state_transfer_in_flight:
            return
        self._state_transfer_in_flight = True
        self._state_replies = {}
        request = StateTransferRequest(sender=self.replica_id, last_executed=self.last_executed)
        peers = [r for r in self.shard_peers if r != self.replica_id]
        self._authenticate_for_audience(request, peers)
        self.broadcast(peers, request)
        # Allow another attempt later if this one never completes.
        self.set_timer(
            "state-transfer",
            self.timers_config.remote_timeout,
            self._reset_state_transfer,
        )

    def _reset_state_transfer(self) -> None:
        self._state_transfer_in_flight = False
        self._state_replies = {}

    def _state_snapshot_digest(self, snapshot: dict[str, str], last_executed: int) -> bytes:
        canonical = "|".join(f"{k}={v}" for k, v in sorted(snapshot.items()))
        return sha256(canonical.encode() + last_executed.to_bytes(8, "big"))

    def _handle_state_request(self, message: StateTransferRequest) -> None:
        if message.last_executed >= self.last_executed:
            return  # the requester is not behind us; nothing useful to send
        snapshot = self.store.items()
        reply = StateTransferReply(
            sender=self.replica_id,
            last_executed=self.last_executed,
            state_digest=self._state_snapshot_digest(snapshot, self.last_executed),
            store_snapshot=snapshot,
            executed_txn_ids=self.executor.executed_txn_ids(),
            blocks=self.ledger.blocks()[1:],
        )
        self._authenticate_for_audience(reply, [message.sender])
        self.send(message.sender, reply)

    def _handle_state_reply(self, message: StateTransferReply) -> None:
        if not self._state_transfer_in_flight:
            return
        if message.last_executed <= self.last_executed:
            return
        replies = self._state_replies.setdefault(message.state_digest, {})
        replies[message.sender] = message
        if len(replies) < self.quorum.weak_quorum:
            return
        # f + 1 peers vouch for the same state: at least one of them is
        # non-faulty, so the snapshot is safe to install.
        self._install_state(next(iter(replies.values())))

    def _install_state(self, reply: StateTransferReply) -> None:
        self.cancel_timer("state-transfer")
        self._state_transfer_in_flight = False
        self._state_replies = {}
        self.store.replace(dict(reply.store_snapshot))
        self.executor.mark_executed(reply.executed_txn_ids)
        self.ledger.adopt_blocks(tuple(reply.blocks))
        self.last_executed = max(self.last_executed, reply.last_executed)
        self._ledger_appended = max(self._ledger_appended, self.ledger.head.sequence)
        self._committed_txn_ids.update(reply.executed_txn_ids)
        for sequence in [s for s in self._pending_execution if s <= reply.last_executed]:
            del self._pending_execution[sequence]
        for unblocked in self.locks.fast_forward(reply.last_executed):
            self._run_lock_continuation(unblocked)
        self.state_transfers_completed += 1
        # The adopted snapshot covers everything up to the stable point: the
        # evidence this replica buffered while it lagged can now be released.
        self._on_stable_checkpoint(self.checkpoints.last_stable_sequence)

    # ------------------------------------------------------------------
    # view change
    # ------------------------------------------------------------------

    def _initiate_view_change(self) -> None:
        if self.now - self._last_view_install_time < self._local_timeout():
            # A new view was installed moments ago; give its primary a full
            # timeout period before escalating again (prevents view-change
            # cascades while the backlog from the previous view drains).
            return
        target = self.view + 1
        self._send_view_change(target)

    def _send_view_change(self, target: int) -> None:
        if self._view_change_target is not None and self._view_change_target >= target:
            return
        self._view_change_target = target
        prepared = tuple(
            PreparedProof(
                sequence=seq,
                view=view,
                batch_digest=digest,
                prepares=self.quorum.commit_quorum,
                requests=self.batches.get(digest, ()),
            )
            for view, seq, digest in self.log.prepared_sequences(self.quorum.commit_quorum)
        )
        message = ViewChange(
            sender=self.replica_id,
            new_view=target,
            last_stable_sequence=self.checkpoints.last_stable_sequence,
            prepared=prepared,
        )
        self._broadcast_shard(message)

    def _handle_view_change(self, message: ViewChange) -> None:
        if message.new_view <= self.view:
            return
        votes = self._view_change_votes.setdefault(message.new_view, {})
        votes[message.sender] = message
        # Join a view change supported by at least one non-faulty replica.
        if (
            len(votes) >= self.quorum.weak_quorum
            and (self._view_change_target or 0) < message.new_view
        ):
            self._send_view_change(message.new_view)
        new_primary = self.directory.primary_of(self.shard_id, message.new_view)
        if new_primary == self.replica_id and len(votes) >= self.quorum.view_change_quorum:
            self._install_new_view_as_primary(message.new_view, votes)

    def _install_new_view_as_primary(
        self, new_view: int, votes: dict[ReplicaId, ViewChange]
    ) -> None:
        if self.view >= new_view:
            return
        reproposals, abandoned = self._build_reproposals(new_view, votes)
        message = NewView(
            sender=self.replica_id,
            view=new_view,
            view_change_senders=tuple(str(r) for r in votes),
            reproposals=reproposals,
            abandoned=abandoned,
        )
        self._broadcast_shard(message)

    def _build_reproposals(
        self, new_view: int, votes: dict[ReplicaId, ViewChange]
    ) -> tuple[tuple[PrePrepare, ...], tuple[int, ...]]:
        """Re-propose every prepared request from the votes; abandon the gaps.

        Returns ``(reproposals, abandoned)`` where ``abandoned`` lists the
        sequence numbers below the highest known sequence for which no
        prepared certificate exists -- they are filled with no-ops so that
        in-order execution and sequence-ordered locking never stall.
        """
        prepared: dict[int, tuple[bytes, tuple[ClientRequest, ...]]] = {}
        stable = self.checkpoints.last_stable_sequence
        for vote in votes.values():
            stable = max(stable, vote.last_stable_sequence)
            for proof in vote.prepared:
                requests = proof.requests or self.batches.get(proof.batch_digest, ())
                prepared.setdefault(proof.sequence, (proof.batch_digest, requests))
        highest = max(
            [self.log.highest_sequence(), self.next_sequence - 1, *prepared.keys()], default=0
        )
        reproposals = []
        for sequence, (digest, requests) in sorted(prepared.items()):
            if sequence <= stable or not requests:
                continue
            reproposals.append(
                PrePrepare(
                    sender=self.replica_id,
                    view=new_view,
                    sequence=sequence,
                    batch_digest=digest,
                    requests=tuple(requests),
                )
            )
        abandoned = tuple(
            sequence
            for sequence in range(stable + 1, highest + 1)
            if sequence not in prepared
        )
        return tuple(reproposals), abandoned

    def _handle_new_view(self, message: NewView) -> None:
        if message.view <= self.view:
            return
        if message.sender != self.directory.primary_of(self.shard_id, message.view):
            return
        self.view = message.view
        self._view_change_target = None
        self._view_change_votes = {
            v: votes for v, votes in self._view_change_votes.items() if v > message.view
        }
        self.view_changes_completed += 1
        self._last_view_install_time = self.now
        # The old view's proposal window is void: every in-flight sequence is
        # either re-proposed below (prepared certificate survived) or
        # abandoned as a no-op, so the window restarts empty in the new view.
        self._open_slots.clear()
        self.pacing.note_reset(self.now)
        highest = max(
            [p.sequence for p in message.reproposals]
            + [s for s in message.abandoned]
            + [self.log.highest_sequence()],
            default=0,
        )
        if self.is_primary:
            self.next_sequence = max(self.next_sequence, highest + 1)
        if self.is_primary:
            # The re-proposed requests are already being ordered in this
            # view; without this the pending-backlog re-staging below would
            # order them a second time at a fresh sequence (the re-proposal
            # has not committed yet, so the committed-set guard cannot see
            # them).
            self._enqueued_txns.update(
                request.transaction.txn_id
                for reproposal in message.reproposals
                for request in reproposal.requests
            )
        for sequence in message.abandoned:
            self._abandon_sequence(sequence)
        for reproposal in message.reproposals:
            self._handle_pre_prepare(reproposal)
        # Replay proposals and votes from this view that raced ahead of the NewView.
        buffered, self._future_pre_prepares = self._future_pre_prepares, []
        for pre_prepare in buffered:
            self._handle_pre_prepare(pre_prepare)
        votes, self._future_votes = self._future_votes, []
        for vote in votes:
            if isinstance(vote, Prepare):
                self._handle_prepare(vote)
            else:
                self._handle_commit(vote)
        self._resubmit_pending_requests()

    def _abandon_sequence(self, sequence: int) -> None:
        """Treat ``sequence`` as a committed no-op (view-change gap fill)."""
        if sequence in self._committed_sequences or sequence <= self.last_executed:
            return
        self.cancel_timer(f"slot-{sequence}")
        self._abandoned_sequences.add(sequence)
        self._close_slot(sequence, committed=False)
        self._execute_ready_batches()
        self._drain_ledger()
        for unblocked in self.locks.skip_sequence(sequence):
            self._run_lock_continuation(unblocked)

    def _resubmit_pending_requests(self) -> None:
        """After a view change, push uncommitted client requests to the new primary."""
        for request in list(self._pending_client_requests.values()):
            if self.is_primary:
                if not self.byzantine_silent:
                    self._enqueue_for_proposal(request, fresh=False)
            else:
                self.send(self.primary, request)
                self._start_request_timer(request.transaction.txn_id)
