"""Consensus message log: one slot per (view, sequence) pair.

A slot gathers the PrePrepare proposal and the Prepare/Commit votes received
for it, and exposes the phase transitions PBFT cares about: *pre-prepared*,
*prepared* (nf Prepare votes), and *committed* (nf Commit votes on a prepared
slot).  Slots also retain the signed Commit messages so that RingBFT can
assemble the commit certificate attached to ``Forward`` messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.messages import Commit, CommitCertificate, PrePrepare, Prepare
from repro.common.types import ReplicaId
from repro.errors import ConsensusError


class SlotState(enum.Enum):
    """Lifecycle of a consensus slot."""

    EMPTY = "empty"
    PRE_PREPARED = "pre-prepared"
    PREPARED = "prepared"
    COMMITTED = "committed"
    EXECUTED = "executed"


@dataclass
class Slot:
    """All consensus evidence a replica holds for one (view, sequence)."""

    view: int
    sequence: int
    pre_prepare: PrePrepare | None = None
    prepares: dict[ReplicaId, Prepare] = field(default_factory=dict)
    commits: dict[ReplicaId, Commit] = field(default_factory=dict)
    state: SlotState = SlotState.EMPTY

    def record_pre_prepare(self, message: PrePrepare) -> None:
        if self.pre_prepare is not None and self.pre_prepare.batch_digest != message.batch_digest:
            raise ConsensusError(
                f"conflicting PrePrepare for view {self.view} sequence {self.sequence}"
            )
        self.pre_prepare = message
        if self.state is SlotState.EMPTY:
            self.state = SlotState.PRE_PREPARED

    def record_prepare(self, message: Prepare) -> None:
        self.prepares[message.sender] = message

    def record_commit(self, message: Commit) -> None:
        self.commits[message.sender] = message

    def matching_prepares(self, digest: bytes) -> int:
        return sum(1 for msg in self.prepares.values() if msg.batch_digest == digest)

    def matching_commits(self, digest: bytes) -> int:
        return sum(1 for msg in self.commits.values() if msg.batch_digest == digest)


class ConsensusLog:
    """Per-replica log of consensus slots keyed by (view, sequence)."""

    def __init__(self) -> None:
        self._slots: dict[tuple[int, int], Slot] = {}
        self._accepted_digest: dict[tuple[int, int], bytes] = {}
        self._truncated_below: int = 0

    def slot(self, view: int, sequence: int) -> Slot:
        key = (view, sequence)
        if key not in self._slots:
            self._slots[key] = Slot(view=view, sequence=sequence)
        return self._slots[key]

    def has_accepted(self, view: int, sequence: int) -> bool:
        """Whether this replica already accepted a proposal at (view, sequence)."""
        return (view, sequence) in self._accepted_digest

    def accepted_digest(self, view: int, sequence: int) -> bytes | None:
        return self._accepted_digest.get((view, sequence))

    def accept(self, view: int, sequence: int, digest: bytes) -> None:
        """Bind this replica to supporting ``digest`` at (view, sequence).

        PBFT safety requires a replica to support at most one proposal per
        (view, sequence); accepting a different digest is an error.
        """
        existing = self._accepted_digest.get((view, sequence))
        if existing is not None and existing != digest:
            raise ConsensusError(
                f"already accepted a different proposal at view {view} sequence {sequence}"
            )
        self._accepted_digest[(view, sequence)] = digest

    # -- phase checks -----------------------------------------------------

    def is_prepared(self, view: int, sequence: int, digest: bytes, quorum: int) -> bool:
        slot = self.slot(view, sequence)
        return (
            slot.pre_prepare is not None
            and slot.pre_prepare.batch_digest == digest
            and slot.matching_prepares(digest) >= quorum
        )

    def is_committed(self, view: int, sequence: int, digest: bytes, quorum: int) -> bool:
        return (
            self.is_prepared(view, sequence, digest, quorum)
            and self.slot(view, sequence).matching_commits(digest) >= quorum
        )

    def mark(self, view: int, sequence: int, state: SlotState) -> None:
        self.slot(view, sequence).state = state

    def state(self, view: int, sequence: int) -> SlotState:
        return self.slot(view, sequence).state

    # -- certificates ------------------------------------------------------

    def commit_certificate(
        self, shard: int, view: int, sequence: int, digest: bytes, quorum: int
    ) -> CommitCertificate:
        """Assemble the set ``A`` of nf signed Commit messages for a slot."""
        slot = self.slot(view, sequence)
        signatures = tuple(
            msg.signature
            for msg in slot.commits.values()
            if msg.batch_digest == digest and msg.signature is not None
        )
        if len(signatures) < quorum:
            raise ConsensusError(
                f"only {len(signatures)} signed commits available, need {quorum}"
            )
        return CommitCertificate(
            shard=shard,
            view=view,
            sequence=sequence,
            batch_digest=digest,
            signatures=signatures[:quorum],
        )

    def prepared_sequences(self, quorum: int) -> list[tuple[int, int, bytes]]:
        """Every (view, sequence, digest) this replica saw reach the prepared phase.

        Used to build ViewChange messages: prepared-but-not-committed requests
        must survive into the new view.
        """
        prepared = []
        for (view, sequence), slot in self._slots.items():
            if slot.pre_prepare is None:
                continue
            digest = slot.pre_prepare.batch_digest
            if slot.matching_prepares(digest) >= quorum and slot.state is not SlotState.EXECUTED:
                prepared.append((view, sequence, digest))
        return sorted(prepared, key=lambda item: item[1])

    def pre_prepare_for(self, view: int, sequence: int) -> PrePrepare | None:
        return self.slot(view, sequence).pre_prepare

    def highest_sequence(self) -> int:
        """Highest sequence this log has ever covered.

        Includes the truncation floor: after garbage collection empties the
        log, a new primary must still number fresh proposals *above* the
        truncated history, never reuse executed sequence numbers.
        """
        return max((seq for _, seq in self._slots), default=self._truncated_below)

    # -- garbage collection ------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Number of slots currently retained (a steady-state memory gauge)."""
        return len(self._slots)

    def truncate_below(self, sequence: int) -> set[bytes]:
        """Drop every slot (and accepted-digest binding) at or below ``sequence``.

        This is the log-truncation step of the checkpoint protocol: once a
        checkpoint at ``sequence`` is stable, the consensus evidence for the
        sequences it covers is no longer needed (view changes restart from the
        stable checkpoint, and dark replicas catch up via state transfer).

        Returns the batch digests whose evidence was dropped and that no
        *retained* slot still references, so the caller can release the batch
        payloads as well.  A digest that also appears above the watermark
        (e.g. re-proposed after a view change) is deliberately excluded.
        """
        self._truncated_below = max(self._truncated_below, sequence)
        dropped: set[bytes] = set()
        for key in [k for k in self._slots if k[1] <= sequence]:
            slot = self._slots.pop(key)
            if slot.pre_prepare is not None:
                dropped.add(slot.pre_prepare.batch_digest)
        for key in [k for k in self._accepted_digest if k[1] <= sequence]:
            del self._accepted_digest[key]
        retained = {
            slot.pre_prepare.batch_digest
            for slot in self._slots.values()
            if slot.pre_prepare is not None
        }
        return dropped - retained


#: Alias under the name the checkpoint protocol uses ("replicas truncate
#: their message logs"); the two names refer to the same class.
MessageLog = ConsensusLog
