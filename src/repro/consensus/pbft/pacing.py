"""Slot-occupancy pacing for the pipelined proposal window.

The eager pump that PR 6 shipped refills a free slot the moment anything is
staged, which is the right call exactly once: when arrivals are slower than
consensus rounds, holding a request buys nothing (the closed-loop figure-8
macro lives here -- per-primary arrivals every ~7 ms against ~5 ms local
rounds).  At higher offered rates the same rule shreds the queue into
one-request proposals: every slot close finds one staged request, ships it,
and the window turns over thousands of near-empty consensus rounds.

:class:`SlotOccupancyController` gives the pump the three estimates it needs
to tell these regimes apart, measured online from the primary's own event
stream:

* **commit latency** ``L`` -- EWMA of propose-to-local-commit time per
  sequence: the length of one consensus round, regardless of how long the
  slot stays occupied afterwards;
* **slot-hold time** ``H`` -- EWMA of propose-to-release time per sequence.
  For a single-shard batch ``H == L``; a pipelined cross-shard batch holds
  its slot through the ring rotation (see the RingBFT layer's deferred slot
  release), so ``H`` can run one to two orders of magnitude past ``L``;
* **arrival rate** ``lam`` -- reciprocal of the EWMA interarrival gap.  The
  gap is smoothed directly (zero gaps from same-event bursts included), so a
  burst of N arrivals followed by a quiet period averages out to the
  sustained rate instead of rating the burst against one tiny gap.

``lam * L`` is the *in-flight demand*: how many requests arrive during one
consensus round, i.e. whether the offered load can keep the window busy at
all (Little's law).  ``lam * H`` is the *slot demand*: how many requests
arrive while one slot is actually occupied -- the number a shaped batch must
carry so that ``depth`` slots absorb the load.  Two derived quantities drive
the pump:

* :meth:`window_sustainable` -- ``lam * L >= sustain_threshold`` (default one
  busy slot).  Below it the pump degrades to the proven eager behaviour;
  above it the shaped rules (and the cross-shard slot deferral) engage.
* :meth:`batch_ceiling` -- ``clamp(ceil(lam * H / depth), 2, max_batch)``:
  the per-slot batch size that spreads the slot demand over ``depth``
  concurrently-busy slots.  The floor of 2 is the "no crumbs" rule: a shaped
  batch smaller than two requests is by definition not worth a consensus
  round while the flush timer bounds its wait.  Using ``H`` rather than ``L``
  here is what lets the ceiling track ring back-pressure: when deferred
  cross-shard slots stretch the hold time, each rotation must carry
  proportionally more requests or the ring becomes the bottleneck.

Determinism contract: the controller owns no clock and no randomness -- every
method takes ``now`` from the caller (the replica's scheduler time), so the
same message order reproduces the same EWMA state, mode flips, and ceilings
on any backend and any host.
"""

from __future__ import annotations

import math


class SlotOccupancyController:
    """Online occupancy estimator for one primary's proposal window.

    The replica feeds it four events -- request staged, batch proposed, slot
    closed, window reset -- and reads back the pacing decisions.  All state is
    a pure function of those events and the constructor arguments.
    """

    __slots__ = (
        "depth",
        "min_batch",
        "max_batch",
        "_alpha",
        "_sustain",
        "_warmup",
        "_latency_s",
        "_latency_samples",
        "_hold_s",
        "_gap_s",
        "_rate_samples",
        "_last_arrival_at",
        "_open_since",
        "_busy_slot_s",
        "_observed_from",
        "_last_event_at",
    )

    #: Estimate samples (latency and arrival each) required before the shaped
    #: rules may engage.  A freshly started primary has no evidence about the
    #: load; until both EWMAs have seen this many samples the pump keeps the
    #: proven eager behaviour, so short bursts (a closed-loop window priming
    #: every client at t=0) cannot flip an idle window into holding requests.
    WARMUP_SAMPLES = 8

    def __init__(
        self,
        *,
        depth: int,
        min_batch: int,
        max_batch: int,
        ewma_alpha: float,
        latency_prior_s: float,
        sustain_threshold: float,
    ) -> None:
        self.depth = depth
        self.min_batch = min_batch
        self.max_batch = max(max_batch, min_batch)
        self._alpha = ewma_alpha
        self._sustain = sustain_threshold
        self._warmup = self.WARMUP_SAMPLES
        # EWMA state: seeded from config priors, never from the host.
        self._latency_s = latency_prior_s
        self._latency_samples = 0
        self._hold_s = latency_prior_s
        self._gap_s = 0.0
        self._rate_samples = 0
        self._last_arrival_at: float | None = None
        # Open proposals (sequence -> proposed-at) and the busy-slot
        # time-integral behind the occupancy gauge.
        self._open_since: dict[int, float] = {}
        self._busy_slot_s = 0.0
        self._observed_from: float | None = None
        self._last_event_at = 0.0

    # ------------------------------------------------------------------
    # event feed
    # ------------------------------------------------------------------

    def note_arrival(self, now: float) -> None:
        """A request was staged at ``now``; update the interarrival EWMA.

        The *gap* is smoothed, not the instantaneous rate: zero gaps (bursts
        delivered in one event) enter the average like any other sample, so
        the estimate converges on total-arrivals-over-total-time rather than
        exploding when a burst is followed by one short gap.
        """
        if self._last_arrival_at is None:
            self._last_arrival_at = now
            return
        gap = now - self._last_arrival_at
        if self._rate_samples == 0:
            self._gap_s = gap
        else:
            self._gap_s += self._alpha * (gap - self._gap_s)
        self._rate_samples += 1
        self._last_arrival_at = now

    def note_propose(self, now: float, sequence: int) -> None:
        """A batch was proposed into ``sequence`` at ``now``."""
        if self._observed_from is None:
            self._observed_from = now
            self._last_event_at = now
        self._advance(now)
        self._open_since[sequence] = now

    def note_commit(self, now: float, sequence: int) -> None:
        """``sequence`` reached local commit at ``now``; sample commit latency.

        Fired at the end of the three-phase round, *before* the slot-release
        decision: a deferred cross-shard slot still contributes an honest
        consensus-round sample here, while its (much longer) occupancy is
        measured separately by :meth:`note_close`.
        """
        proposed_at = self._open_since.get(sequence)
        if proposed_at is None:
            return
        sample = now - proposed_at
        if self._latency_samples == 0:
            self._latency_s = sample
        else:
            self._latency_s += self._alpha * (sample - self._latency_s)
        self._latency_samples += 1

    def note_close(self, now: float, sequence: int, *, committed: bool = True) -> None:
        """``sequence`` left the window; sample the slot-hold time if it committed.

        Abandoned slots (view-change gap fills, exhausted Forward
        retransmissions) close without a sample: their propose-to-close time
        measures a fault timeout, not slot economics, and would poison the
        hold estimate.
        """
        self._advance(now)
        proposed_at = self._open_since.pop(sequence, None)
        if proposed_at is None or not committed:
            return
        sample = now - proposed_at
        self._hold_s += self._alpha * (sample - self._hold_s)

    def note_reset(self, now: float) -> None:
        """View change: the old view's window is void; forget open proposals.

        The EWMAs survive -- load and round latency are properties of the
        deployment, not of the view -- but no latency samples are taken from
        proposals the new view discarded.
        """
        self._advance(now)
        self._open_since.clear()

    def _advance(self, now: float) -> None:
        """Accumulate the busy-slot time-integral up to ``now``."""
        if self._observed_from is None:
            return
        elapsed = now - self._last_event_at
        if elapsed > 0.0:
            self._busy_slot_s += len(self._open_since) * elapsed
            self._last_event_at = now

    # ------------------------------------------------------------------
    # estimates
    # ------------------------------------------------------------------

    @property
    def arrival_rate_tps(self) -> float:
        """Smoothed offered load at this primary (staged requests per second).

        Zero while the estimate is unknowable: no two arrivals seen yet, or
        every observed gap was zero (one burst and silence since).
        """
        if self._rate_samples == 0 or self._gap_s <= 0.0:
            return 0.0
        return 1.0 / self._gap_s

    @property
    def commit_latency_s(self) -> float:
        """EWMA propose-to-local-commit latency of one consensus round (seconds)."""
        return self._latency_s

    @property
    def slot_hold_s(self) -> float:
        """EWMA propose-to-release occupancy of one window slot (seconds)."""
        return self._hold_s

    @property
    def inflight_demand(self) -> float:
        """``lam * L``: consensus rounds the offered load can keep busy."""
        return self.arrival_rate_tps * self._latency_s

    @property
    def slot_demand(self) -> float:
        """``lam * H``: requests arriving while one window slot is occupied."""
        return self.arrival_rate_tps * self._hold_s

    def occupancy(self, now: float) -> float:
        """Time-averaged number of busy window slots since the first proposal."""
        if self._observed_from is None:
            return 0.0
        span = now - self._observed_from
        if span <= 0.0:
            return float(len(self._open_since))
        tail = len(self._open_since) * max(now - self._last_event_at, 0.0)
        return (self._busy_slot_s + tail) / span

    # ------------------------------------------------------------------
    # pacing decisions
    # ------------------------------------------------------------------

    def warmed_up(self) -> bool:
        """Both EWMAs have enough samples to trust."""
        return (
            self._latency_samples >= self._warmup
            and self._rate_samples >= self._warmup
        )

    def window_sustainable(self) -> bool:
        """Whether the offered load can keep the window busy at all.

        True once the measured in-flight demand reaches ``sustain_threshold``
        busy slots (and both estimates are warmed up).  Below the threshold
        arrivals are slower than rounds: holding a request could not fill a
        batch before its slot would have gone idle, so the pump keeps the
        proven eager behaviour.
        """
        return self.warmed_up() and self.inflight_demand >= self._sustain

    def batch_ceiling(self) -> int:
        """Per-slot batch size that spreads the slot demand over ``depth`` slots.

        ``ceil(lam * H / depth)`` requests arrive per slot-hold per slot;
        batching to that ceiling keeps ``depth`` slots concurrently busy
        instead of letting one mega-batch starve slots 2..k, and scales with
        the hold time so deferred cross-shard slots (held through the ring
        rotation) carry rotation-sized batches.  Clamped to
        ``[max(min_batch, 2), max_batch]`` -- the floor of 2 is the no-crumbs
        rule, the cap is the replica's configured batch limit.
        """
        target = math.ceil(self.slot_demand / self.depth)
        floor = max(self.min_batch, 2)
        return max(floor, min(target, self.max_batch))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def snapshot(self, now: float) -> dict[str, float | int]:
        """Gauge readings for the metrics collector / CLI."""
        return {
            "slot_occupancy": round(self.occupancy(now), 2),
            "batch_ceiling": self.batch_ceiling(),
            "ewma_commit_latency_s": round(self._latency_s, 6),
            "ewma_slot_hold_s": round(self._hold_s, 6),
            "ewma_arrival_rate_tps": round(self.arrival_rate_tps, 1),
            "inflight_demand": round(self.inflight_demand, 2),
        }
