"""Static deployment directory shared (read-only) by every node.

Permissioned blockchains know the full membership up front; the directory
captures that knowledge: which replicas form each shard, which region each
shard lives in, the ring order, and the quorum thresholds.  Nodes never
mutate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.quorum import QuorumSpec
from repro.common.types import ReplicaId
from repro.config import SystemConfig
from repro.errors import ConfigurationError
from repro.txn.ring import RingTopology


@dataclass(frozen=True)
class Directory:
    """Immutable membership and topology information for one deployment."""

    config: SystemConfig
    ring: RingTopology
    replicas_by_shard: dict[int, tuple[ReplicaId, ...]] = field(default_factory=dict)
    regions_by_shard: dict[int, str] = field(default_factory=dict)

    @classmethod
    def from_config(cls, config: SystemConfig) -> "Directory":
        replicas = {
            shard.shard_id: tuple(
                ReplicaId(shard=shard.shard_id, index=i) for i in range(shard.num_replicas)
            )
            for shard in config.shards
        }
        regions = {shard.shard_id: shard.region for shard in config.shards}
        return cls(
            config=config,
            ring=config.ring(),
            replicas_by_shard=replicas,
            regions_by_shard=regions,
        )

    # -- membership ------------------------------------------------------

    def shard_ids(self) -> tuple[int, ...]:
        return tuple(self.replicas_by_shard)

    def replicas_of(self, shard_id: int) -> tuple[ReplicaId, ...]:
        if shard_id not in self.replicas_by_shard:
            raise ConfigurationError(f"unknown shard {shard_id}")
        return self.replicas_by_shard[shard_id]

    def all_replicas(self) -> tuple[ReplicaId, ...]:
        return tuple(r for shard in sorted(self.replicas_by_shard) for r in self.replicas_by_shard[shard])

    def shard_size(self, shard_id: int) -> int:
        return len(self.replicas_of(shard_id))

    def quorum(self, shard_id: int) -> QuorumSpec:
        return QuorumSpec.for_replicas(self.shard_size(shard_id))

    def region_of(self, shard_id: int) -> str:
        return self.regions_by_shard.get(shard_id, "local")

    def primary_of(self, shard_id: int, view: int = 0) -> ReplicaId:
        """The replica acting as primary of ``shard_id`` in ``view``."""
        members = self.replicas_of(shard_id)
        return members[view % len(members)]

    def peer_with_index(self, shard_id: int, index: int) -> ReplicaId:
        """Replica of ``shard_id`` with local index ``index`` (wrapping).

        The linear communication primitive pairs replica ``i`` of one shard
        with replica ``i`` of the next; when shards have different sizes the
        index wraps around, preserving the property that at least ``f + 1``
        non-faulty senders reach ``f + 1`` distinct non-faulty receivers.
        """
        members = self.replicas_of(shard_id)
        return members[index % len(members)]
