"""Fault injector: schedules the attacks the paper analyses in Section 5.

Attacks are expressed against a :class:`repro.engine.Deployment` and scheduled
on its backend scheduler so experiments can fail components at precise
protocol times (e.g. Figure 9 fails the primaries of three shards at
t = 10 s); the injector works on either execution backend.

Supported attacks:

* **crash_primary** -- fail-stop the current primary of a shard (A2);
* **silence_primary** -- Byzantine primary that ignores client requests (A2);
* **dark_attack** -- Byzantine primary that keeps up to ``f`` replicas in the
  dark by excluding them from its broadcasts (A3);
* **drop_forwards** -- replicas of a shard stop sending Forward messages,
  producing the *no communication* / *partial communication* cross-shard
  attacks (C1/C2);
* **partition / message_loss** -- network-level unreliability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.replica import RingBftReplica
from repro.engine.deployment import Deployment


@dataclass
class FaultInjector:
    """Schedules faults against a running deployment (any backend)."""

    cluster: Deployment
    log: list[tuple[float, str]] = field(default_factory=list)

    def _record(self, description: str) -> None:
        self.log.append((self.cluster.scheduler.now, description))

    # ------------------------------------------------------------------
    # crash & Byzantine primaries
    # ------------------------------------------------------------------

    def crash_primary(self, shard: int, at: float | None = None, view: int = 0) -> None:
        """Fail-stop the primary of ``shard`` (immediately or at virtual time ``at``)."""

        def _crash() -> None:
            primary = self.cluster.primary_of(shard, view)
            primary.crash()
            self._record(f"crashed primary {primary.replica_id} of shard {shard}")

        self._schedule(_crash, at)

    def crash_replica(self, shard: int, index: int, at: float | None = None) -> None:
        """Fail-stop an arbitrary replica of ``shard``."""

        def _crash() -> None:
            replica = self.cluster.replica(shard, index)
            replica.crash()
            self._record(f"crashed replica {replica.replica_id}")

        self._schedule(_crash, at)

    def silence_primary(self, shard: int, at: float | None = None, view: int = 0) -> None:
        """Byzantine primary that stops proposing client requests (attack A2)."""

        def _silence() -> None:
            primary = self.cluster.primary_of(shard, view)
            primary.byzantine_silent = True
            self._record(f"silenced primary {primary.replica_id} of shard {shard}")

        self._schedule(_silence, at)

    def dark_attack(self, shard: int, victims: int | None = None, at: float | None = None) -> None:
        """Byzantine primary keeps up to ``f`` replicas in the dark (attack A3)."""

        def _dark() -> None:
            primary = self.cluster.primary_of(shard, 0)
            f = self.cluster.directory.quorum(shard).f
            count = min(victims if victims is not None else f, f)
            members = [r for r in self.cluster.directory.replicas_of(shard) if r != primary.replica_id]
            primary.dark_targets = set(members[-count:]) if count else set()
            self._record(f"primary of shard {shard} keeps {count} replicas in the dark")

        self._schedule(_dark, at)

    # ------------------------------------------------------------------
    # cross-shard communication attacks (C1 / C2)
    # ------------------------------------------------------------------

    def drop_forwards(self, shard: int, replicas: int | None = None, at: float | None = None) -> None:
        """Make replicas of ``shard`` drop their outgoing Forward messages.

        Dropping on more than ``n - (f + 1)`` replicas creates the *partial
        communication* attack: the next shard cannot collect ``f + 1``
        matching Forwards and must fall back to its remote timer.
        """

        def _drop() -> None:
            members = self.cluster.shard_replicas(shard)
            count = len(members) if replicas is None else min(replicas, len(members))
            dropped = 0
            for replica in members[:count]:
                if isinstance(replica, RingBftReplica):
                    replica.drop_forwards = True
                    dropped += 1
            self._record(f"{dropped} replicas of shard {shard} drop Forward messages")

        self._schedule(_drop, at)

    def block_cross_shard_link(self, src_shard: int, dst_shard: int, at: float | None = None) -> None:
        """Block every network link from ``src_shard`` to ``dst_shard`` (attack C1)."""

        def _block() -> None:
            conditions = self.cluster.transport.conditions
            for src in self.cluster.directory.replicas_of(src_shard):
                for dst in self.cluster.directory.replicas_of(dst_shard):
                    conditions.block_link(src, dst)
            self._record(f"blocked links shard {src_shard} -> shard {dst_shard}")

        self._schedule(_block, at)

    def heal_cross_shard_link(self, src_shard: int, dst_shard: int, at: float | None = None) -> None:
        """Remove a previously installed shard-to-shard block."""

        def _heal() -> None:
            conditions = self.cluster.transport.conditions
            for src in self.cluster.directory.replicas_of(src_shard):
                for dst in self.cluster.directory.replicas_of(dst_shard):
                    conditions.unblock_link(src, dst)
            self._record(f"healed links shard {src_shard} -> shard {dst_shard}")

        self._schedule(_heal, at)

    # ------------------------------------------------------------------
    # network-level unreliability
    # ------------------------------------------------------------------

    def set_message_loss(self, probability: float, at: float | None = None) -> None:
        """Drop every message independently with the given probability."""

        def _set() -> None:
            self.cluster.transport.conditions.drop_probability = probability
            self._record(f"message loss probability set to {probability}")

        self._schedule(_set, at)

    def recover_replica(self, shard: int, index: int, at: float | None = None) -> None:
        """Bring a crashed replica back (it rejoins with its pre-crash state)."""

        def _recover() -> None:
            replica = self.cluster.replica(shard, index)
            replica.recover()
            self._record(f"recovered replica {replica.replica_id}")

        self._schedule(_recover, at)

    # ------------------------------------------------------------------

    def _schedule(self, action, at: float | None) -> None:
        if at is None:
            action()
        else:
            self.cluster.scheduler.schedule_at(at, action)
