"""Fault injection: crash, Byzantine, and network attacks from Section 5."""

from repro.faults.injector import FaultInjector

__all__ = ["FaultInjector"]
