"""Deprecated real-time harness; use :class:`repro.engine.Deployment`.

``RealTimeCluster`` predates the pluggable execution engine and duplicated
the simulator harness's wiring over asyncio.  The unified harness now lives
in :mod:`repro.engine.deployment`::

    # old                                  # new
    RealTimeCluster(config, ...)           Deployment.build(config, backend="realtime", ...)
    cluster.run_workload(txns, timeout)    deployment.run_workload(txns, timeout)

``RealTimeCluster`` remains as a thin shim over a realtime-backed
:class:`Deployment`; ``run_workload`` keeps its historical wall-clock
``timeout`` semantics, and :class:`WorkloadResult` is now an alias of the
unified :class:`repro.engine.RunResult`.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.consensus.pbft.client import Client
from repro.consensus.pbft.replica import PbftReplica
from repro.common.types import ReplicaId
from repro.core.replica import RingBftReplica
from repro.engine.backends import RealTimeBackend
from repro.engine.deployment import Deployment, RunResult
from repro.txn.transaction import Transaction

#: Backwards-compatible alias: real-time runs return the unified result type.
WorkloadResult = RunResult

__all__ = ["RealTimeCluster", "WorkloadResult"]


class RealTimeCluster:
    """Deprecated: a sharded deployment executed on the asyncio backend."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        replica_class: type[PbftReplica] = RingBftReplica,
        num_clients: int = 1,
        batch_size: int | None = None,
        time_scale: float = 0.05,
        latency_scale: float = 0.05,
        seed: int = 2022,
    ) -> None:
        self.config = config
        self.time_scale = time_scale
        self.latency_scale = latency_scale
        self.deployment = Deployment.build(
            config,
            backend=RealTimeBackend(
                seed=seed, time_scale=time_scale, latency_scale=latency_scale
            ),
            replica_class=replica_class,
            num_clients=num_clients,
            batch_size=batch_size,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # legacy accessors delegating to the deployment
    # ------------------------------------------------------------------

    @property
    def directory(self):
        return self.deployment.directory

    @property
    def keystore(self):
        return self.deployment.keystore

    @property
    def table(self):
        return self.deployment.table

    @property
    def scheduler(self):
        return self.deployment.scheduler

    @property
    def network(self):
        return self.deployment.transport

    @property
    def replicas(self) -> dict[ReplicaId, PbftReplica]:
        return self.deployment.replicas

    @property
    def clients(self) -> dict[str, Client]:
        return self.deployment.clients

    # ------------------------------------------------------------------
    # driving workloads
    # ------------------------------------------------------------------

    def run_workload(
        self, transactions: list[Transaction], timeout: float = 30.0
    ) -> RunResult:
        """Submit ``transactions`` and await completion.

        ``timeout`` keeps its historical *wall-clock* meaning here; it is
        converted to the protocol-time timeout the unified harness expects.
        """
        return self.deployment.run_workload(
            transactions, timeout=timeout / self.time_scale
        )

    def close(self) -> None:
        self.deployment.close()

    # ------------------------------------------------------------------
    # introspection (valid after a run)
    # ------------------------------------------------------------------

    def shard_replicas(self, shard: int) -> list[PbftReplica]:
        return self.deployment.shard_replicas(shard)

    def ledgers_consistent(self, shard: int) -> bool:
        return self.deployment.ledgers_consistent(shard)

    def message_counts(self) -> dict[str, int]:
        return self.deployment.message_counts()
