"""Real-time cluster runtime: run a deployment on an asyncio event loop.

``RealTimeCluster`` mirrors :class:`repro.cluster.Cluster` but executes the
replicas in *real* time: protocol timers are asyncio timers and message
delays are real delays (optionally compressed with ``time_scale`` /
``latency_scale`` so that a WAN-sized deployment finishes a demo workload in
a couple of wall-clock seconds).

Typical use::

    cluster = RealTimeCluster(SystemConfig.uniform(3, 4), time_scale=0.05)
    result = cluster.run_workload(transactions, timeout=10.0)
    print(result.completed, result.avg_latency)

The same replica classes as the simulator are used unmodified, so anything
validated in protocol mode (ordering, locking, view changes) behaves the same
here -- only the clock is real.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.common.crypto import KeyStore
from repro.common.types import ReplicaId
from repro.config import SystemConfig
from repro.consensus.directory import Directory
from repro.consensus.pbft.client import Client
from repro.consensus.pbft.replica import PbftReplica
from repro.core.replica import RingBftReplica
from repro.rt.transport import AsyncNetwork, RealTimeScheduler
from repro.sim.network import NetworkConditions
from repro.sim.regions import LatencyModel
from repro.storage.kvstore import ShardedKeyValueStore
from repro.txn.transaction import Transaction


@dataclass
class WorkloadResult:
    """Outcome of one real-time workload run."""

    submitted: int
    completed: int
    wall_clock_seconds: float
    latencies: list[float] = field(default_factory=list)

    @property
    def all_completed(self) -> bool:
        return self.completed == self.submitted

    @property
    def avg_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def throughput_tps(self) -> float:
        return self.completed / self.wall_clock_seconds if self.wall_clock_seconds else 0.0


class RealTimeCluster:
    """A sharded deployment executed on asyncio instead of the simulator."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        replica_class: type[PbftReplica] = RingBftReplica,
        num_clients: int = 1,
        batch_size: int | None = None,
        time_scale: float = 0.05,
        latency_scale: float = 0.05,
        seed: int = 2022,
    ) -> None:
        self.config = config
        self.replica_class = replica_class
        self.num_clients = num_clients
        self.batch_size = batch_size or 1
        self.time_scale = time_scale
        self.latency_scale = latency_scale
        self.seed = seed

        self.directory = Directory.from_config(config)
        self.table = ShardedKeyValueStore(config.shard_ids, config.workload.num_records)
        self.keystore = KeyStore()

        # Populated by _start() once an event loop is running.
        self.scheduler: RealTimeScheduler | None = None
        self.network: AsyncNetwork | None = None
        self.replicas: dict[ReplicaId, PbftReplica] = {}
        self.clients: dict[str, Client] = {}

    # ------------------------------------------------------------------
    # construction (inside a running loop)
    # ------------------------------------------------------------------

    def _start(self) -> None:
        loop = asyncio.get_event_loop()
        self.scheduler = RealTimeScheduler(loop, seed=self.seed, time_scale=self.time_scale)
        self.network = AsyncNetwork(
            self.scheduler,
            latency=LatencyModel(),
            conditions=NetworkConditions(),
            latency_scale=self.latency_scale,
        )
        self.replicas = {}
        for shard in self.config.shards:
            partition = self.table.build_partition(shard.shard_id)
            for replica_id in self.directory.replicas_of(shard.shard_id):
                self.replicas[replica_id] = self.replica_class(
                    replica_id,
                    self.directory,
                    self.network,
                    self.keystore,
                    batch_size=self.batch_size,
                    initial_records=partition,
                )
        self.clients = {}
        for i in range(self.num_clients):
            client_id = f"client-{i}"
            self.clients[client_id] = Client(
                client_id, self.directory, self.network, self.keystore
            )

    # ------------------------------------------------------------------
    # driving workloads
    # ------------------------------------------------------------------

    async def run_workload_async(
        self, transactions: list[Transaction], timeout: float = 30.0
    ) -> WorkloadResult:
        """Submit ``transactions`` and await their completion (async variant)."""
        if self.scheduler is None:
            self._start()
        loop = asyncio.get_event_loop()
        started = loop.time()
        client_ids = list(self.clients)
        for i, txn in enumerate(transactions):
            client = self.clients[client_ids[i % len(client_ids)]]
            client.submit(txn)

        deadline = started + timeout
        while loop.time() < deadline:
            if all(client.outstanding == 0 for client in self.clients.values()):
                break
            await asyncio.sleep(0.01)

        latencies = [
            record.latency for client in self.clients.values() for record in client.completed
        ]
        return WorkloadResult(
            submitted=len(transactions),
            completed=sum(client.completed_count for client in self.clients.values()),
            wall_clock_seconds=loop.time() - started,
            latencies=latencies,
        )

    def run_workload(self, transactions: list[Transaction], timeout: float = 30.0) -> WorkloadResult:
        """Blocking wrapper around :meth:`run_workload_async` (creates a loop)."""
        return asyncio.run(self.run_workload_async(transactions, timeout))

    # ------------------------------------------------------------------
    # introspection (valid after a run)
    # ------------------------------------------------------------------

    def shard_replicas(self, shard: int) -> list[PbftReplica]:
        return [self.replicas[r] for r in self.directory.replicas_of(shard)]

    def ledgers_consistent(self, shard: int) -> bool:
        chains = [
            [block.block_hash() for block in replica.ledger.blocks()]
            for replica in self.shard_replicas(shard)
            if not replica.crashed
        ]
        for a in chains:
            for b in chains:
                prefix = min(len(a), len(b))
                if a[:prefix] != b[:prefix]:
                    return False
        return True

    def message_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for node in self.replicas.values():
            for name, count in node.stats.sent_count.items():
                totals[name] = totals.get(name, 0) + count
        return totals
