"""Real-time (asyncio) runtime: run the same protocol code outside the simulator."""

from repro.rt.transport import AsyncNetwork, RealTimeScheduler
from repro.rt.runtime import RealTimeCluster, WorkloadResult

__all__ = ["AsyncNetwork", "RealTimeScheduler", "RealTimeCluster", "WorkloadResult"]
