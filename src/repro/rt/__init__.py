"""Real-time (asyncio) runtime: run the same protocol code outside the simulator."""

from repro.rt.transport import AsyncNetwork, RealTimeScheduler

__all__ = ["AsyncNetwork", "RealTimeScheduler", "RealTimeCluster", "WorkloadResult"]


def __getattr__(name: str):
    # The deprecated RealTimeCluster shim builds on repro.engine, which itself
    # imports this package for the transport; resolve it lazily (PEP 562) to
    # keep the import graph acyclic.
    if name in ("RealTimeCluster", "WorkloadResult"):
        from repro.rt import runtime

        return getattr(runtime, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
