"""Real-time transport: the simulator interfaces re-implemented over asyncio.

The protocol classes (``PbftReplica``, ``RingBftReplica``, the baselines, and
``Client``) only interact with their environment through two narrow
interfaces: a *scheduler* (``now``, ``schedule``, ``rng``) and a *network*
(``register``, ``send``, ``conditions``).  In the default configuration those
are provided by the deterministic discrete-event simulator; this module
provides drop-in replacements backed by a running asyncio event loop, so the
exact same replica code can be executed in real time -- messages become
``call_later`` callbacks with real delays, timers become real timers.

This is the "it actually runs on a clock" mode: useful for demos and for
sanity-checking that protocol timings hold under real scheduling jitter.
The genuine networked deployment exists too -- :mod:`repro.net` replaces
:class:`AsyncNetwork` with a real TCP :class:`~repro.net.transport.SocketTransport`
(reusing :class:`RealTimeScheduler` for timers), and the multi-process
launcher behind ``ringbft deploy-local`` runs one OS process per replica
over it.  Neither real-time mode regenerates the paper's figures -- the
calibrated analytical model and the simulator are far better suited for that.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.errors import NetworkError, SimulationError
from repro.sim.network import NetworkConditions
from repro.sim.regions import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.messages import Message
    from repro.sim.node import Node


class _AsyncTimerHandle:
    """Cancellable handle compatible with the simulator's ``TimerHandle``."""

    def __init__(self, handle: asyncio.TimerHandle, fire_time: float) -> None:
        self._handle = handle
        self._fire_time = fire_time
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fire_time(self) -> float:
        return self._fire_time


class RealTimeScheduler:
    """Scheduler facade over a running asyncio event loop.

    Exposes the subset of :class:`repro.sim.kernel.Simulator` the nodes use:
    ``now``, ``schedule``, ``schedule_at``, and ``rng``.  ``time_scale``
    compresses (or stretches) every delay, which keeps demos snappy while
    preserving relative timer ordering.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None, *, seed: int = 2022,
                 time_scale: float = 1.0) -> None:
        self._loop = loop or asyncio.get_event_loop()
        self._rng = random.Random(seed)
        if time_scale <= 0:
            raise SimulationError("time_scale must be positive")
        self._time_scale = time_scale
        self._origin = self._loop.time()
        self._scheduled = 0

    @property
    def now(self) -> float:
        """Elapsed (unscaled) protocol time since the scheduler was created."""
        return (self._loop.time() - self._origin) / self._time_scale

    @property
    def rng(self) -> random.Random:
        return self._rng

    @property
    def scheduled_callbacks(self) -> int:
        return self._scheduled

    def schedule(self, delay: float, callback) -> _AsyncTimerHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._scheduled += 1
        handle = self._loop.call_later(delay * self._time_scale, callback)
        return _AsyncTimerHandle(handle, self.now + delay)

    def schedule_at(self, time: float, callback) -> _AsyncTimerHandle:
        return self.schedule(max(0.0, time - self.now), callback)


@dataclass
class _AsyncDeliveryStats:
    delivered: int = 0
    dropped: int = 0
    bytes_delivered: int = 0
    #: Fan-out operations served by the multicast fast path (counted once
    #: per multicast, independent of audience size).
    multicasts: int = 0


class AsyncNetwork:
    """Message fabric over asyncio: API-compatible with ``repro.sim.network.Network``."""

    def __init__(
        self,
        scheduler: RealTimeScheduler,
        latency: LatencyModel | None = None,
        conditions: NetworkConditions | None = None,
        *,
        latency_scale: float = 1.0,
    ) -> None:
        self._scheduler = scheduler
        self._latency = latency or LatencyModel()
        self._latency_scale = latency_scale
        self.conditions = conditions or NetworkConditions()
        self._nodes: dict[Hashable, "Node"] = {}
        self._regions: dict[Hashable, str] = {}
        self.stats = _AsyncDeliveryStats()

    # The node base class accesses ``network.simulator`` for time and timers.
    @property
    def simulator(self) -> RealTimeScheduler:
        return self._scheduler

    @property
    def latency_model(self) -> LatencyModel:
        return self._latency

    def register(self, node: "Node") -> None:
        if node.address in self._nodes:
            raise NetworkError(f"address {node.address!r} is already registered")
        self._nodes[node.address] = node
        self._regions[node.address] = node.region

    def node(self, address: Hashable) -> "Node":
        if address not in self._nodes:
            raise NetworkError(f"unknown node address {address!r}")
        return self._nodes[address]

    def known_addresses(self) -> tuple[Hashable, ...]:
        return tuple(self._nodes)

    def send(self, src: Hashable, dst: Hashable, message: "Message") -> None:
        self._send_one(src, dst, message, message.wire_size(), self._regions.get(src, "local"))

    def _send_one(
        self, src: Hashable, dst: Hashable, message: "Message", size: int, src_region: str
    ) -> None:
        if dst not in self._nodes:
            raise NetworkError(f"cannot deliver to unknown address {dst!r}")
        coin = self._scheduler.rng.random()
        if not self.conditions.allows(src, dst, coin):
            self.stats.dropped += 1
            return
        delay = self._latency.message_delay(src_region, self._regions[dst], size)
        delay *= self._latency_scale
        jitter = delay * self._latency.jitter_fraction * self._scheduler.rng.random()
        receiver = self._nodes[dst]

        def _deliver() -> None:
            self.stats.delivered += 1
            self.stats.bytes_delivered += size
            receiver.deliver(message)

        self._scheduler.schedule(delay + jitter, _deliver)

    def multicast(self, src: Hashable, dsts, message: "Message") -> None:
        """Fan-out fast path mirroring ``sim.network.Network.multicast``:
        wire size and source region resolved once, one shared payload."""
        if not dsts:
            return
        size = message.wire_size()
        src_region = self._regions.get(src, "local")
        self.stats.multicasts += 1
        for dst in dsts:
            self._send_one(src, dst, message, size, src_region)
