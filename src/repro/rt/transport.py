"""Real-time transport: the simulator interfaces re-implemented over asyncio.

The protocol classes (``PbftReplica``, ``RingBftReplica``, the baselines, and
``Client``) only interact with their environment through two narrow
interfaces: a *scheduler* (``now``, ``schedule``, ``rng``) and a *network*
(``register``, ``send``, ``conditions``).  In the default configuration those
are provided by the deterministic discrete-event simulator; this module
provides drop-in replacements backed by a running asyncio event loop, so the
exact same replica code can be executed in real time -- messages become
``call_later`` callbacks with real delays, timers become real timers.

Link behaviour (WAN delay, jitter, loss, faults) comes from the same
:class:`~repro.netem.LinkEmulator` the simulator uses, so a given seed
produces the identical per-link delay/loss decisions on both clocks; the
only real-time addition is ``latency_scale``, which compresses the decided
delays so WAN-sized runs finish in wall-clock seconds.

This is the "it actually runs on a clock" mode: useful for demos and for
sanity-checking that protocol timings hold under real scheduling jitter.
The genuine networked deployment exists too -- :mod:`repro.net` replaces
:class:`AsyncNetwork` with a real TCP :class:`~repro.net.transport.SocketTransport`
(reusing :class:`RealTimeScheduler` for timers), and the multi-process
launcher behind ``ringbft deploy-local`` runs one OS process per replica
over it.  Neither real-time mode regenerates the paper's figures -- the
calibrated analytical model and the simulator are far better suited for that.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.errors import ConfigurationError, NetworkError, SimulationError
from repro.netem.conditions import NetworkConditions
from repro.netem.emulator import LinkEmulator
from repro.netem.policy import NetemPolicy
from repro.netem.regions import LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.messages import Message
    from repro.sim.node import Node


class _AsyncTimerHandle:
    """Cancellable handle compatible with the simulator's ``TimerHandle``."""

    def __init__(self, handle: asyncio.TimerHandle, fire_time: float) -> None:
        self._handle = handle
        self._fire_time = fire_time
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fire_time(self) -> float:
        return self._fire_time


class RealTimeScheduler:
    """Scheduler facade over a running asyncio event loop.

    Exposes the subset of :class:`repro.sim.kernel.Simulator` the nodes use:
    ``now``, ``schedule``, ``schedule_at``, and ``rng``.  ``time_scale``
    compresses (or stretches) every delay, which keeps demos snappy while
    preserving relative timer ordering.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None, *, seed: int = 2022,
                 time_scale: float = 1.0) -> None:
        self._loop = loop or asyncio.get_event_loop()
        self._rng = random.Random(seed)
        self.seed = seed
        if time_scale <= 0:
            raise SimulationError("time_scale must be positive")
        self._time_scale = time_scale
        self._origin = self._loop.time()
        self._scheduled = 0

    @property
    def now(self) -> float:
        """Elapsed (unscaled) protocol time since the scheduler was created."""
        return (self._loop.time() - self._origin) / self._time_scale

    @property
    def rng(self) -> random.Random:
        return self._rng

    @property
    def scheduled_callbacks(self) -> int:
        return self._scheduled

    def schedule(self, delay: float, callback, *args) -> _AsyncTimerHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._scheduled += 1
        handle = self._loop.call_later(delay * self._time_scale, callback, *args)
        return _AsyncTimerHandle(handle, self.now + delay)

    def schedule_at(self, time: float, callback, *args) -> _AsyncTimerHandle:
        return self.schedule(max(0.0, time - self.now), callback, *args)


@dataclass
class _AsyncDeliveryStats:
    delivered: int = 0
    dropped: int = 0
    bytes_delivered: int = 0
    #: Fan-out operations served by the multicast fast path (counted once
    #: per multicast, independent of audience size).
    multicasts: int = 0


class AsyncNetwork:
    """Message fabric over asyncio: API-compatible with ``repro.sim.network.Network``."""

    def __init__(
        self,
        scheduler: RealTimeScheduler,
        latency: LatencyModel | None = None,
        conditions: NetworkConditions | None = None,
        emulator: LinkEmulator | None = None,
        *,
        latency_scale: float = 1.0,
    ) -> None:
        self._scheduler = scheduler
        if emulator is None:
            emulator = LinkEmulator(
                NetemPolicy(latency=latency or LatencyModel()),
                conditions,
                seed=scheduler.seed,
            )
        elif latency is not None or conditions is not None:
            # Mirror sim.network.Network: an emulator owns its policy and
            # conditions, so the standalone arguments must not coexist.
            raise ConfigurationError(
                "pass either an emulator or latency/conditions, not both"
            )
        self._emulator = emulator
        self._latency_scale = latency_scale
        self._nodes: dict[Hashable, "Node"] = {}
        self.stats = _AsyncDeliveryStats()

    # The node base class accesses ``network.simulator`` for time and timers.
    @property
    def simulator(self) -> RealTimeScheduler:
        return self._scheduler

    @property
    def emulator(self) -> LinkEmulator:
        return self._emulator

    @property
    def conditions(self) -> NetworkConditions:
        return self._emulator.conditions

    @property
    def latency_model(self) -> LatencyModel:
        policy = self._emulator.policy
        return policy.latency if policy is not None else LatencyModel()

    def register(self, node: "Node") -> None:
        if node.address in self._nodes:
            raise NetworkError(f"address {node.address!r} is already registered")
        self._nodes[node.address] = node
        self._emulator.assign_region(node.address, node.region)

    def node(self, address: Hashable) -> "Node":
        if address not in self._nodes:
            raise NetworkError(f"unknown node address {address!r}")
        return self._nodes[address]

    def known_addresses(self) -> tuple[Hashable, ...]:
        return tuple(self._nodes)

    def send(self, src: Hashable, dst: Hashable, message: "Message") -> None:
        self._send_one(src, dst, message, message.wire_size())

    def _send_one(self, src: Hashable, dst: Hashable, message: "Message", size: int) -> None:
        if dst not in self._nodes:
            raise NetworkError(f"cannot deliver to unknown address {dst!r}")
        deliver, delay = self._emulator.decide(src, dst, size)
        if not deliver:
            self.stats.dropped += 1
            return
        self._scheduler.schedule(
            delay * self._latency_scale, self._deliver_event, self._nodes[dst], message, size
        )

    def _deliver_event(self, receiver: "Node", message: "Message", size: int) -> None:
        self.stats.delivered += 1
        self.stats.bytes_delivered += size
        receiver.deliver(message)

    def multicast(self, src: Hashable, dsts, message: "Message") -> None:
        """Fan-out fast path mirroring ``sim.network.Network.multicast``:
        wire size resolved once, one shared payload."""
        if not dsts:
            return
        size = message.wire_size()
        self.stats.multicasts += 1
        for dst in dsts:
            self._send_one(src, dst, message, size)
