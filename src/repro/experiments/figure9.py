"""Figure 9: throughput under primary failure and view change.

This experiment runs in **protocol mode** (the message-level simulator): a
nine-shard RingBFT deployment processes a 30% cross-shard workload while the
primaries of the first three shards fail at a configurable virtual time.  The
replicas detect the failure through their local timers, run the view-change
protocol, and the new primaries resume the pending work; the throughput time
series shows the dip and the recovery, which is the shape Figure 9 reports
(failure at t=10s, view change around t=20-30s, throughput recovered by
t≈55s in the paper's timer configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import Cluster
from repro.config import SystemConfig, TimerConfig, WorkloadConfig
from repro.core.replica import RingBftReplica
from repro.faults.injector import FaultInjector
from repro.metrics.collector import ThroughputSeries
from repro.workloads.ycsb import YcsbWorkloadGenerator


@dataclass(frozen=True)
class Figure9Config:
    """Scaled-down protocol-mode configuration of the Figure 9 experiment."""

    num_shards: int = 9
    replicas_per_shard: int = 4
    failed_shards: int = 3
    failure_time: float = 10.0
    horizon: float = 60.0
    submit_rate_per_s: float = 6.0
    cross_shard_fraction: float = 0.30
    bucket_seconds: float = 5.0
    seed: int = 2022


def run(config: Figure9Config | None = None) -> list[dict]:
    """Run the primary-failure experiment; one row per time bucket."""
    config = config or Figure9Config()
    timers = TimerConfig(
        local_timeout=4.0,
        remote_timeout=8.0,
        transmit_timeout=12.0,
        client_timeout=6.0,
    )
    workload_config = WorkloadConfig(
        num_records=3_000,
        cross_shard_fraction=config.cross_shard_fraction,
        involved_shards=3,
        batch_size=1,
        num_clients=8,
        seed=config.seed,
    )
    system = SystemConfig.uniform(
        config.num_shards,
        config.replicas_per_shard,
        timers=timers,
        workload=workload_config,
    )
    cluster = Cluster.build(
        system,
        replica_class=RingBftReplica,
        num_clients=8,
        batch_size=1,
        seed=config.seed,
    )
    generator = YcsbWorkloadGenerator(
        cluster.table, cluster.directory.ring, workload_config, seed=config.seed
    )

    # Open-loop submission spread over the clients for the whole horizon.
    client_ids = list(cluster.clients)
    total = int(config.submit_rate_per_s * config.horizon)
    interval = 1.0 / config.submit_rate_per_s
    for i in range(total):
        client_id = client_ids[i % len(client_ids)]

        def _submit(client_id: str = client_id) -> None:
            txn = generator.generate(1, client_id)[0]
            cluster.submit(txn, client_id)

        cluster.simulator.schedule(i * interval, _submit)

    # Fail the primaries of the first ``failed_shards`` shards.
    injector = FaultInjector(cluster)
    for shard in range(config.failed_shards):
        injector.crash_primary(shard, at=config.failure_time)

    cluster.run(duration=config.horizon + 20.0, max_events=5_000_000)

    records = []
    for client in cluster.clients.values():
        records.extend(client.completed)
    series = ThroughputSeries(bucket_seconds=config.bucket_seconds).compute(
        records, horizon=config.horizon
    )
    view_changes = sum(
        1 for replica in cluster.replicas.values() if replica.view_changes_completed > 0
    )
    rows = [
        {
            "time_s": time,
            "throughput_tps": round(tput, 2),
            "failure_injected": time >= config.failure_time,
        }
        for time, tput in series
    ]
    rows.append(
        {
            "time_s": "summary",
            "throughput_tps": round(len(records) / config.horizon, 2),
            "failure_injected": True,
            "replicas_that_changed_view": view_changes,
            "completed_transactions": len(records),
        }
    )
    return rows
