"""Figure 9: throughput under primary failure and view change.

This experiment runs in **protocol mode** (the message-level simulator): a
nine-shard RingBFT deployment processes a 30% cross-shard workload while the
primaries of the first three shards fail at a configurable virtual time.  The
replicas detect the failure through their local timers, run the view-change
protocol, and the new primaries resume the pending work; the throughput time
series shows the dip and the recovery, which is the shape Figure 9 reports
(failure at t=10s, view change around t=20-30s, throughput recovered by
t≈55s in the paper's timer configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, TimerConfig, WorkloadConfig
from repro.core.replica import RingBftReplica
from repro.engine.deployment import Deployment
from repro.faults.injector import FaultInjector
from repro.metrics.collector import ThroughputSeries
from repro.workloads.ycsb import YcsbWorkloadGenerator


@dataclass(frozen=True)
class Figure9Config:
    """Scaled-down protocol-mode configuration of the Figure 9 experiment."""

    num_shards: int = 9
    replicas_per_shard: int = 4
    failed_shards: int = 3
    failure_time: float = 10.0
    horizon: float = 60.0
    submit_rate_per_s: float = 6.0
    cross_shard_fraction: float = 0.30
    bucket_seconds: float = 5.0
    seed: int = 2022


def run(
    config: Figure9Config | None = None,
    *,
    backend: str = "sim",
    time_scale: float = 0.05,
) -> list[dict]:
    """Run the primary-failure experiment; one row per time bucket.

    ``backend`` selects the execution engine: ``"sim"`` (deterministic, the
    default used by the benchmarks) or ``"realtime"`` (asyncio, delays
    compressed by ``time_scale``).
    """
    config = config or Figure9Config()
    timers = TimerConfig(
        local_timeout=4.0,
        remote_timeout=8.0,
        transmit_timeout=12.0,
        client_timeout=6.0,
    )
    workload_config = WorkloadConfig(
        num_records=3_000,
        cross_shard_fraction=config.cross_shard_fraction,
        involved_shards=3,
        batch_size=1,
        num_clients=8,
        seed=config.seed,
    )
    system = SystemConfig.uniform(
        config.num_shards,
        config.replicas_per_shard,
        timers=timers,
        workload=workload_config,
    )
    deployment = Deployment.build(
        system,
        backend=backend,
        replica_class=RingBftReplica,
        num_clients=8,
        batch_size=1,
        seed=config.seed,
        time_scale=time_scale,
    )
    try:
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, workload_config, seed=config.seed
        )

        # Open-loop submission spread over the clients for the whole horizon.
        client_ids = list(deployment.clients)
        total = int(config.submit_rate_per_s * config.horizon)
        interval = 1.0 / config.submit_rate_per_s
        for i in range(total):
            client_id = client_ids[i % len(client_ids)]

            def _submit(client_id: str = client_id) -> None:
                txn = generator.generate(1, client_id)[0]
                deployment.submit(txn, client_id)

            deployment.scheduler.schedule(i * interval, _submit)

        # Fail the primaries of the first ``failed_shards`` shards.
        injector = FaultInjector(deployment)
        for shard in range(config.failed_shards):
            injector.crash_primary(shard, at=config.failure_time)

        deployment.run(duration=config.horizon + 20.0, max_events=5_000_000)

        records = []
        for client in deployment.clients.values():
            records.extend(client.completed)
        view_changes = sum(
            1 for replica in deployment.replicas.values() if replica.view_changes_completed > 0
        )
    finally:
        deployment.close()
    series = ThroughputSeries(bucket_seconds=config.bucket_seconds).compute(
        records, horizon=config.horizon
    )
    rows = [
        {
            "time_s": time,
            "throughput_tps": round(tput, 2),
            "failure_injected": time >= config.failure_time,
        }
        for time, tput in series
    ]
    rows.append(
        {
            "time_s": "summary",
            "throughput_tps": round(len(records) / config.horizon, 2),
            "failure_injected": True,
            "replicas_that_changed_view": view_changes,
            "completed_transactions": len(records),
            "backend": backend,
        }
    )
    return rows


#: Scaled-down scenario for cross-backend smoke validation (one failed shard).
SMOKE_CONFIG = Figure9Config(
    num_shards=3,
    replicas_per_shard=4,
    failed_shards=1,
    failure_time=6.0,
    horizon=24.0,
    submit_rate_per_s=2.0,
    bucket_seconds=6.0,
)


def run_protocol(backend: str = "sim", config: Figure9Config | None = None) -> list[dict]:
    """Protocol-mode smoke run of the failure experiment on either backend."""
    return run(config or SMOKE_CONFIG, backend=backend, time_scale=0.05)
