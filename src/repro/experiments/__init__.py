"""Experiment harness: one module per paper figure, plus a registry/runner."""

from repro.experiments.runner import EXPERIMENTS, format_table, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment", "format_table"]
