"""Figure 8: the six throughput/latency sweeps of the main evaluation.

Each function regenerates one pair of sub-figures (throughput + latency) for
the three sharding protocols -- RingBFT, Sharper, AHL -- using the analytical
model at the paper's full scale (420 replicas, 50K clients).  The standard
settings follow Section 8: 15 shards of 28 replicas, 30% cross-shard
transactions touching all shards, batches of 100.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analytical import DeploymentSpec, estimate, model_by_name
from repro.config import SystemConfig, WorkloadConfig
from repro.engine.driver import run_protocol_workload

#: The three sharding protocols compared throughout Figure 8.
PROTOCOLS: tuple[str, ...] = ("RingBFT", "Sharper", "AHL")

#: Standard settings of Section 8.
STANDARD = DeploymentSpec()


def _sweep(specs: Iterable[tuple[str, DeploymentSpec]], x_name: str) -> list[dict]:
    rows: list[dict] = []
    for x_value, spec in specs:
        for protocol in PROTOCOLS:
            result = estimate(model_by_name(protocol), spec)
            rows.append(
                {
                    "protocol": protocol,
                    x_name: x_value,
                    "throughput_tps": round(result.throughput_tps, 1),
                    "latency_s": round(result.latency_s, 3),
                    "bottleneck": result.bottleneck,
                }
            )
    return rows


def impact_of_shards(shard_counts: tuple[int, ...] = (3, 5, 7, 9, 11, 15)) -> list[dict]:
    """Figure 8 (I)-(II): vary the number of shards, csts touch all of them."""
    return _sweep(
        ((s, STANDARD.with_(num_shards=s)) for s in shard_counts),
        x_name="num_shards",
    )


def impact_of_replicas(replica_counts: tuple[int, ...] = (10, 16, 22, 28)) -> list[dict]:
    """Figure 8 (III)-(IV): vary the number of replicas per shard."""
    return _sweep(
        ((n, STANDARD.with_(replicas_per_shard=n)) for n in replica_counts),
        x_name="replicas_per_shard",
    )


def impact_of_cross_shard_rate(
    rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.30, 0.60, 1.0)
) -> list[dict]:
    """Figure 8 (V)-(VI): vary the fraction of cross-shard transactions."""
    return _sweep(
        ((rate, STANDARD.with_(cross_shard_fraction=rate)) for rate in rates),
        x_name="cross_shard_fraction",
    )


def impact_of_batch_size(
    batch_sizes: tuple[int, ...] = (10, 50, 100, 500, 1000, 1500, 5000)
) -> list[dict]:
    """Figure 8 (VII)-(VIII): vary the consensus batch size."""
    return _sweep(
        ((b, STANDARD.with_(batch_size=b)) for b in batch_sizes),
        x_name="batch_size",
    )


def impact_of_involved_shards(
    involved_counts: tuple[int, ...] = (1, 3, 6, 9, 15)
) -> list[dict]:
    """Figure 8 (IX)-(X): vary how many shards each cross-shard transaction touches.

    ``involved = 1`` degenerates to a single-shard workload, which is how the
    paper's leftmost point behaves (all protocols coincide there).
    """
    def spec_for(involved: int) -> DeploymentSpec:
        if involved <= 1:
            return STANDARD.with_(cross_shard_fraction=0.0, involved_shards=1)
        return STANDARD.with_(involved_shards=involved)

    return _sweep(
        ((i, spec_for(i)) for i in involved_counts),
        x_name="involved_shards",
    )


def impact_of_clients(
    client_counts: tuple[int, ...] = (3_000, 5_000, 10_000, 15_000, 20_000)
) -> list[dict]:
    """Figure 8 (XI)-(XII): vary the number of clients submitting transactions."""
    return _sweep(
        ((c, STANDARD.with_(num_clients=c)) for c in client_counts),
        x_name="num_clients",
    )


def run_protocol(
    backend: str = "sim",
    shard_counts: tuple[int, ...] = (2, 3),
    transactions: int = 12,
    cross_shard_fraction: float = 0.30,
    seed: int = 2022,
) -> list[dict]:
    """Protocol-mode smoke validation of the Figure 8 shard sweep.

    Runs the standard 30% cross-shard workload at message level on the chosen
    execution backend (scaled down from 15x28 so realtime finishes in
    seconds) and reports the unified run metrics per shard count.
    """
    rows: list[dict] = []
    for num_shards in shard_counts:
        workload = WorkloadConfig(
            num_records=400,
            cross_shard_fraction=cross_shard_fraction,
            batch_size=1,
            num_clients=2,
            seed=seed,
        )
        config = SystemConfig.uniform(num_shards, 4, workload=workload)
        result = run_protocol_workload(
            config, backend=backend, total=transactions, seed=seed
        )
        rows.append({"protocol": "RingBFT", "num_shards": num_shards, **result.as_row()})
    return rows
