"""Experiment registry and table formatting used by the CLI and the benchmarks."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ExperimentError
from repro.experiments import figure1, figure8, figure9, figure10, wan

#: Registry mapping experiment identifiers to the callables that regenerate them.
EXPERIMENTS: dict[str, Callable[[], list[dict]]] = {
    "figure1": figure1.run,
    "figure8-shards": figure8.impact_of_shards,
    "figure8-replicas": figure8.impact_of_replicas,
    "figure8-crossshard": figure8.impact_of_cross_shard_rate,
    "figure8-batch": figure8.impact_of_batch_size,
    "figure8-involved": figure8.impact_of_involved_shards,
    "figure8-clients": figure8.impact_of_clients,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "wan-backends": wan.run,
}

#: Protocol-mode validations, one per figure module: the same scenario executed
#: at message level through ``Deployment`` on a chosen execution backend.
PROTOCOL_VALIDATIONS: dict[str, Callable[..., list[dict]]] = {
    "figure1": figure1.run_protocol,
    "figure8": figure8.run_protocol,
    "figure9": figure9.run_protocol,
    "figure10": figure10.run_protocol,
    "wan": wan.run_protocol,
}


def run_experiment(name: str, backend: str | None = None) -> list[dict]:
    """Run one registered experiment and return its rows.

    With ``backend=None`` the experiment regenerates its figure the usual way
    (analytical model or simulator, depending on the figure).  With
    ``backend="sim"`` / ``"realtime"`` the figure module's protocol-mode
    validation runs through :class:`repro.engine.Deployment` on that backend
    instead, producing unified run metrics.
    """
    if name not in EXPERIMENTS:
        raise ExperimentError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    if backend is None:
        return EXPERIMENTS[name]()
    module = name.split("-")[0]
    return PROTOCOL_VALIDATIONS[module](backend=backend)


def format_table(rows: list[dict]) -> str:
    """Render experiment rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(column), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
