"""WAN experiment: one geo workload, three execution backends, side by side.

The paper's headline results are geo-scale (one shard per GCP region); this
experiment expresses a geo deployment once -- a :mod:`repro.netem` profile
plus a seeded workload -- and runs it unchanged on the deterministic
simulator, the asyncio real-time stack, and the TCP socket backend.  A single
shared :class:`~repro.netem.NetemPolicy` object drives the link behaviour of
all three runs, so the only thing that differs between rows is the clock and
the wire.

Registered as ``wan-backends`` in the experiment registry::

    ringbft run wan-backends            # all three backends
    ringbft run wan-backends --backend socket   # just one
"""

from __future__ import annotations

from repro.engine.deployment import Deployment, RunResult
from repro.net.launcher import build_system_config, build_workload
from repro.netem import NetemPolicy

#: Backends compared by the default run, in reporting order.
BACKENDS: tuple[str, ...] = ("sim", "realtime", "socket")

#: Scaled-down standard settings (the full 15x28 paper scale belongs to the
#: analytical model; this is a protocol-level experiment).
DEFAULTS = dict(
    geo="wan3",
    shards=2,
    replicas_per_shard=4,
    transactions=12,
    num_clients=2,
    cross_shard=0.3,
    seed=2022,
    #: Real-time backend only: delay/timer compression factor.
    time_scale=0.05,
    timeout=120.0,
)


def _row(backend: str, geo: str, result: RunResult) -> dict:
    return {
        "backend": backend,
        "geo": geo,
        "completed": f"{result.completed}/{result.submitted}",
        "throughput_tps": round(result.throughput_tps, 1),
        "avg_latency_ms": round(result.avg_latency * 1000.0, 1),
        "p99_latency_ms": round(result.p99_latency * 1000.0, 1),
        "wall_clock_s": round(result.wall_clock_s, 3),
        "consistent": bool(result.ledgers_consistent),
    }


def run_one(
    backend: str,
    *,
    policy: NetemPolicy | None = None,
    **overrides,
) -> tuple[RunResult, Deployment | None]:
    """Run the geo workload on one backend; returns the unified result.

    ``policy`` lets several calls share one :class:`NetemPolicy` object (the
    cross-backend comparison does); by default one is built for the profile.
    The deployment is closed before returning (the second tuple element is
    kept ``None``; it exists so tests monkeypatching this function can expose
    internals).
    """
    params = {**DEFAULTS, **overrides}
    geo = params["geo"]
    if policy is None and geo:
        policy = NetemPolicy.for_profile(geo)
    config = build_system_config(
        shards=params["shards"],
        replicas_per_shard=params["replicas_per_shard"],
        cross_shard=params["cross_shard"],
        seed=params["seed"],
        num_clients=params["num_clients"],
        geo=geo,
    )
    deployment = Deployment.build(
        config,
        backend=backend,
        num_clients=params["num_clients"],
        batch_size=1,
        seed=params["seed"],
        netem=policy,
        time_scale=params["time_scale"],
        latency_scale=params["time_scale"],
    )
    try:
        workload = build_workload(
            config, list(deployment.clients), params["transactions"], params["seed"]
        )
        result = deployment.run_workload(workload, timeout=params["timeout"])
    finally:
        deployment.close()
    return result, None


def run_protocol(backend: str = "sim", **overrides) -> list[dict]:
    """Single-backend protocol validation (the ``--backend`` entry point)."""
    params = {**DEFAULTS, **overrides}
    result, _ = run_one(backend, **params)
    return [_row(backend, params["geo"], result)]


def run(backends: tuple[str, ...] = BACKENDS, **overrides) -> list[dict]:
    """The cross-backend comparison: one shared policy, one seeded workload.

    Every backend consumes the *same* :class:`NetemPolicy` instance and the
    same transaction list, so differences between rows are attributable to
    the execution substrate alone.
    """
    params = {**DEFAULTS, **overrides}
    policy = NetemPolicy.for_profile(params["geo"])
    rows = []
    for backend in backends:
        result, _ = run_one(backend, policy=policy, **params)
        rows.append(_row(backend, params["geo"], result))
    return rows
