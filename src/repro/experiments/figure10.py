"""Figure 10: complex cross-shard transactions with remote-read dependencies.

The paper's final experiment keeps the standard 15-shard deployment and gives
every cross-shard transaction 0-64 remote-read dependencies distributed over
the involved shards, turning it into a *complex* transaction whose execution
needs the write sets carried by second-rotation ``Execute`` messages.  Only
RingBFT is reported -- the paper argues neither AHL nor Sharper supports
complex transactions (Section 8.8).

Two modes are provided: the analytical sweep at paper scale (``run``) and a
small protocol-mode validation (``run_protocol_validation``) that executes a
complex transaction end-to-end in the simulator and checks that the
dependencies were resolved from the remote write sets.
"""

from __future__ import annotations

from repro.analytical import DeploymentSpec, estimate, model_by_name
from repro.config import SystemConfig, WorkloadConfig
from repro.core.replica import RingBftReplica
from repro.engine.deployment import Deployment
from repro.workloads.ycsb import YcsbWorkloadGenerator

#: Remote-read counts on the x-axis of Figure 10.
REMOTE_READS: tuple[int, ...] = (0, 8, 16, 32, 48, 64)


def run(remote_reads: tuple[int, ...] = REMOTE_READS) -> list[dict]:
    """Regenerate the Figure 10 series (RingBFT only, paper scale)."""
    rows: list[dict] = []
    model = model_by_name("RingBFT")
    for count in remote_reads:
        spec = DeploymentSpec(remote_reads=count)
        result = estimate(model, spec)
        rows.append(
            {
                "protocol": "RingBFT",
                "remote_reads": count,
                "throughput_tps": round(result.throughput_tps, 1),
                "latency_s": round(result.latency_s, 3),
            }
        )
    return rows


def run_protocol_validation(
    num_shards: int = 4,
    remote_reads: int = 6,
    seed: int = 7,
    *,
    backend: str = "sim",
    time_scale: float = 0.02,
) -> dict:
    """Execute one complex cross-shard transaction on the chosen backend.

    Returns a summary stating whether the transaction completed and whether
    the dependent writes observed the remote values (i.e. the write contains
    the ``shard:key=value`` suffixes resolved from the Execute write sets).
    """
    workload = WorkloadConfig(
        num_records=400,
        cross_shard_fraction=1.0,
        remote_reads=remote_reads,
        batch_size=1,
        num_clients=1,
        seed=seed,
    )
    system = SystemConfig.uniform(num_shards, 4, workload=workload)
    deployment = Deployment.build(
        system,
        backend=backend,
        replica_class=RingBftReplica,
        num_clients=1,
        batch_size=1,
        time_scale=time_scale,
    )
    try:
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, workload, seed=seed
        )
        txn = generator.cross_shard_transaction("client-0", involved=list(range(num_shards)))
        deployment.submit(txn)
        completed = deployment.run_until_clients_done(timeout=120.0)

        resolved_dependencies = 0
        expected_dependencies = txn.remote_read_count
        for op in txn.operations:
            if not op.depends_on:
                continue
            replica = deployment.replica(op.shard, 0)
            if replica.executor.already_executed(txn.txn_id):
                written = replica.executor.result_for(txn.txn_id).writes.get(op.key, "")
                resolved_dependencies += sum(
                    1
                    for dep_shard, dep_key in op.depends_on
                    if f"{dep_shard}:{dep_key}=" in written
                )
        latencies = deployment.latencies()
        return {
            "backend": backend,
            "completed": completed,
            "transaction": txn.txn_id,
            "is_complex": txn.is_complex,
            "expected_dependencies": expected_dependencies,
            "resolved_dependencies": resolved_dependencies,
            "latency_s": round(latencies[0], 3) if latencies else None,
        }
    finally:
        deployment.close()


def run_protocol(backend: str = "sim") -> list[dict]:
    """Protocol-mode smoke validation of Figure 10 on either backend."""
    return [run_protocol_validation(num_shards=3, remote_reads=4, backend=backend)]
