"""Figure 1: scalability comparison of BFT protocol families.

The introduction's headline figure compares the throughput of single-primary
(Pbft, Zyzzyva, Sbft, PoE), multi-primary (Rcc), chained (HotStuff), and
sharded (RingBFT) protocols while varying the number of replicas per group
(4, 16, 32).  RingBFT runs 9 shards with that many replicas *per shard* and is
shown both without cross-shard transactions (``RingBFT``) and with 15%
cross-shard transactions (``RingBFT_X``); the fully-replicated protocols run a
single group of that many replicas spread over the same regions.
"""

from __future__ import annotations

from repro.analytical import DeploymentSpec, estimate, model_by_name
from repro.config import SystemConfig, WorkloadConfig
from repro.engine.driver import run_protocol_workload

#: Replica counts on the x-axis of Figure 1.
NODE_COUNTS: tuple[int, ...] = (4, 16, 32)

#: Fully-replicated protocols shown alongside RingBFT.
FULLY_REPLICATED: tuple[str, ...] = ("Pbft", "Sbft", "HotStuff", "Rcc", "PoE", "Zyzzyva")

#: RingBFT runs 9 shards in Figure 1.
RINGBFT_SHARDS = 9
#: RingBFT_X adds 15% cross-shard transactions.
CROSS_SHARD_FRACTION_X = 0.15


def run(node_counts: tuple[int, ...] = NODE_COUNTS) -> list[dict]:
    """Regenerate the Figure 1 series; one row per (protocol, node count)."""
    rows: list[dict] = []
    for nodes in node_counts:
        ring_spec = DeploymentSpec(
            num_shards=RINGBFT_SHARDS,
            replicas_per_shard=nodes,
            cross_shard_fraction=0.0,
        )
        ring = estimate(model_by_name("RingBFT"), ring_spec)
        rows.append(
            {
                "protocol": "RingBFT",
                "nodes_per_group": nodes,
                "total_nodes": RINGBFT_SHARDS * nodes,
                "throughput_tps": round(ring.throughput_tps, 1),
            }
        )
        ring_x = estimate(
            model_by_name("RingBFT"),
            ring_spec.with_(cross_shard_fraction=CROSS_SHARD_FRACTION_X),
        )
        rows.append(
            {
                "protocol": "RingBFT_X",
                "nodes_per_group": nodes,
                "total_nodes": RINGBFT_SHARDS * nodes,
                "throughput_tps": round(ring_x.throughput_tps, 1),
            }
        )
        for protocol in FULLY_REPLICATED:
            spec = DeploymentSpec(
                num_shards=1,
                replicas_per_shard=max(nodes, 4),
                cross_shard_fraction=0.0,
            )
            result = estimate(model_by_name(protocol), spec)
            rows.append(
                {
                    "protocol": protocol,
                    "nodes_per_group": nodes,
                    "total_nodes": nodes,
                    "throughput_tps": round(result.throughput_tps, 1),
                }
            )
    return rows


def run_protocol(
    backend: str = "sim",
    node_counts: tuple[int, ...] = (4,),
    transactions: int = 10,
    seed: int = 2022,
) -> list[dict]:
    """Protocol-mode smoke validation of the Figure 1 series on either backend.

    Runs RingBFT with 15% cross-shard transactions (the ``RingBFT_X`` series)
    at message level -- two shards instead of the paper's nine so both
    backends finish in seconds -- and reports the unified run metrics.
    """
    rows: list[dict] = []
    for nodes in node_counts:
        workload = WorkloadConfig(
            num_records=400,
            cross_shard_fraction=CROSS_SHARD_FRACTION_X,
            batch_size=1,
            num_clients=2,
            seed=seed,
        )
        config = SystemConfig.uniform(2, nodes, workload=workload)
        result = run_protocol_workload(
            config, backend=backend, total=transactions, seed=seed
        )
        rows.append(
            {"protocol": "RingBFT_X", "nodes_per_group": nodes, **result.as_row()}
        )
    return rows
