"""Exception hierarchy for the RingBFT reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a system, shard, or workload configuration is invalid."""


class CryptoError(ReproError):
    """Raised when message authentication or signature verification fails."""


class MalformedMessageError(ReproError):
    """Raised when a protocol message fails well-formedness validation."""


class QuorumError(ReproError):
    """Raised when quorum arithmetic is requested for an impossible setting."""


class LockError(ReproError):
    """Raised on illegal lock-manager transitions (double release, etc.)."""


class LedgerError(ReproError):
    """Raised when a block violates chain integrity (bad parent hash, ...)."""


class StorageError(ReproError):
    """Raised by the partitioned key-value store on invalid access."""


class SimulationError(ReproError):
    """Raised by the discrete-event kernel on scheduling misuse."""


class NetworkError(ReproError):
    """Raised by the simulated network layer on invalid routing."""


class ConsensusError(ReproError):
    """Raised when a consensus state machine reaches an illegal state."""


class ViewChangeError(ConsensusError):
    """Raised when view-change bookkeeping is violated."""


class WorkloadError(ReproError):
    """Raised by workload generators on invalid parameters."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for unknown or invalid experiments."""
