"""Per-batch bookkeeping for cross-shard transactions travelling the ring."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.messages import ClientRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.messages import Forward


@dataclass
class CrossShardRecord:
    """Everything one replica knows about one cross-shard batch.

    The record is keyed by the batch digest ``Delta``, which is identical at
    every involved shard because it is computed over the client-signed
    requests themselves (not over any shard-local sequence number).
    """

    batch_digest: bytes
    involved_shards: frozenset[int]
    requests: tuple[ClientRequest, ...] = ()

    #: Local consensus progress.
    sequence: int | None = None
    commit_view: int = 0
    consensus_started: bool = False

    #: Rotation progress on this replica.
    locked: bool = False
    executed: bool = False
    replied: bool = False
    forwarded: bool = False
    execute_sent: bool = False
    rotation_complete: bool = False

    #: Forward/Execute vote tracking: origin shard -> distinct original senders.
    forward_senders: dict[int, set[str]] = field(default_factory=dict)
    execute_senders: dict[int, set[str]] = field(default_factory=dict)
    remote_view_senders: dict[int, set[str]] = field(default_factory=dict)

    #: Accumulated write sets (the Sigma of the paper), per shard.
    write_sets: dict[int, dict[str, str]] = field(default_factory=dict)
    #: Bumped whenever ``write_sets`` *content* changes.  The outbound Forward
    #: is rebuilt only when this moved, so retransmissions reuse one frozen
    #: message object -- its payload memo, MAC vector, and wire encoding all
    #: amortise across the whole retransmission burst.
    write_sets_version: int = 0
    cached_forward: "Forward | None" = None
    cached_forward_version: int = -1

    #: True when an Execute quorum arrived before the local lock was acquired.
    execute_ready: bool = False

    #: Retransmission counter for the transmit timer.
    retransmissions: int = 0
    #: True once the transmit timer gave up re-sending Forward messages (the
    #: per-record cap was reached; see ``TimerConfig.max_forward_retransmissions``).
    retransmissions_exhausted: bool = False

    def record_forward(self, origin_shard: int, sender: str) -> int:
        """Count a Forward message; returns the number of distinct senders so far."""
        senders = self.forward_senders.setdefault(origin_shard, set())
        senders.add(sender)
        return len(senders)

    def record_execute(self, origin_shard: int, sender: str) -> int:
        senders = self.execute_senders.setdefault(origin_shard, set())
        senders.add(sender)
        return len(senders)

    def record_remote_view(self, origin_shard: int, sender: str) -> int:
        senders = self.remote_view_senders.setdefault(origin_shard, set())
        senders.add(sender)
        return len(senders)

    def merge_write_sets(self, incoming: dict[int, dict[str, str]]) -> None:
        changed = False
        for shard, writes in incoming.items():
            target = self.write_sets.setdefault(shard, {})
            for key, value in writes.items():
                if target.get(key) != value:
                    target[key] = value
                    changed = True
        if changed:
            self.write_sets_version += 1

    def add_local_writes(self, shard: int, values: dict[str, str]) -> None:
        """Record this shard's own read/write values (version-tracked)."""
        self.merge_write_sets({shard: values})

    @property
    def txn_ids(self) -> tuple[str, ...]:
        return tuple(req.transaction.txn_id for req in self.requests)

    def settled(self, is_initiator: bool) -> bool:
        """Whether this replica needs nothing further from the record.

        A settled record is eligible for checkpoint-driven retirement: the
        fragment executed locally and -- on the initiator shard -- the client
        has been answered.  An unsettled record pins the garbage-collection
        watermark below its sequence so that an in-flight rotation is never
        dropped mid-ring.
        """
        if not self.executed or self.sequence is None:
            return False
        if is_initiator:
            return self.replied
        return self.execute_sent
