"""RingBFT: the paper's primary contribution (cross-shard consensus over a ring)."""

from repro.core.records import CrossShardRecord
from repro.core.replica import RingBftReplica

__all__ = ["CrossShardRecord", "RingBftReplica"]
