"""RingBFT replica: cross-shard consensus over a sharded ring topology.

This class layers the paper's cross-shard machinery (Sections 4.2-5.1) on top
of the intra-shard PBFT engine:

* **Process** -- the initiator shard (first involved shard in ring order) runs
  local PBFT on the cross-shard batch and locks its data fragments in
  sequence order (pending list ``pi`` handled by the lock manager).
* **Forward** -- once locked, every replica sends a ``Forward`` message to the
  replica with the *same index* in the next involved shard (the linear
  communication primitive), carrying the commit certificate ``A`` of nf signed
  Commit messages; receivers locally share the message and act once ``f + 1``
  matching Forwards from distinct senders arrive.
* **Execute / second rotation** -- when the rotation wraps back to the
  initiator, its fragments are locked everywhere; the initiator executes,
  releases its locks, and starts the Execute rotation carrying the
  accumulated write sets ``Sigma`` that resolve complex-transaction
  dependencies.  When Execute wraps back to the initiator it replies to the
  client.
* **Re-transmit** -- a transmit timer re-sends Forward messages; a remote
  timer detects partial communication and triggers a *remote view change* in
  the previous shard (Figure 6).
"""

from __future__ import annotations

from repro.common.crypto import verify_certificate
from repro.common.messages import (
    ClientRequest,
    Execute,
    Forward,
    RemoteView,
    batch_digest,
)
from repro.core.records import CrossShardRecord
from repro.consensus.pbft.log import SlotState
from repro.consensus.pbft.replica import PbftReplica
from repro.errors import ConfigurationError


class RingBftReplica(PbftReplica):
    """A replica of one shard participating in RingBFT."""

    #: Cross-shard messages are tagged by their original sender for *every*
    #: replica of the destination shard (not just the unicast counterpart),
    #: so local relays stay verifiable and the tag is mandatory: the f+1
    #: distinct-sender counts on Forward/Execute/RemoteView must count
    #: authenticated senders, not spoofable sender fields.
    _MAC_REQUIRED_TYPES = PbftReplica._MAC_REQUIRED_TYPES + (Forward, Execute, RemoteView)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ring = self.directory.ring
        self._cross_records: dict[bytes, CrossShardRecord] = {}
        #: Local-relay dedup, keyed by batch digest so retirement can drop a
        #: record's relay history with it: digest -> {(type_name, sender)}.
        self._relayed: dict[bytes, set[tuple[str, str]]] = {}
        #: Digests of records retired by checkpoint GC, mapped to the GC
        #: watermark that retired them.  Late Forward/Execute retransmissions
        #: for these digests are dropped instead of resurrecting the record;
        #: entries older than two checkpoint windows are pruned, so the map is
        #: bounded by the retirement rate of two intervals.
        self._retired_digests: dict[bytes, int] = {}
        self.cross_records_retired = 0
        #: Forward rotations abandoned after exhausting the retransmission cap.
        self.forward_give_ups = 0
        #: Byzantine knob: drop outgoing Forward messages (partial communication attack).
        self.drop_forwards = False

    # ------------------------------------------------------------------
    # client request routing (Figure 5, lines 4-9)
    # ------------------------------------------------------------------

    def _accepts_client_request(self, request: ClientRequest) -> bool:
        involved = request.transaction.involved_shards
        if self.shard_id not in involved:
            return False
        try:
            return self.ring.first_in_ring_order(involved) == self.shard_id
        except ConfigurationError:
            # The transaction also names shards outside the ring; it cannot be
            # ordered anywhere.  _redirect_client_request records the drop.
            return False

    def _redirect_client_request(self, request: ClientRequest) -> None:
        """A primary that is not first in ring order relays the request onward."""
        involved = request.transaction.involved_shards
        if self.shard_id in involved and not self.is_primary:
            # Non-primary replicas of non-initiator shards ignore client traffic.
            return
        try:
            initiator = self.ring.first_in_ring_order(involved)
        except ConfigurationError:
            # Ring lookup failed: the transaction involves shards that are not
            # part of this deployment's ring.  Count the drop instead of
            # silently swallowing it so operators can see misrouted traffic.
            self.stats.record_dropped_request("unroutable")
            return
        if initiator == self.shard_id:
            return
        self.send(self.directory.primary_of(initiator, view=0), request)

    # ------------------------------------------------------------------
    # commit hooks
    # ------------------------------------------------------------------

    def _should_sign_commit(self, digest: bytes) -> bool:
        """Sign Commit votes of cross-shard batches so Forward certificates verify."""
        batch = self.batches.get(digest, ())
        if not batch:
            return False
        return batch[0].transaction.is_cross_shard

    def _defer_slot_release(self, sequence: int, digest: bytes) -> bool:
        """Keep a pipelined cross-shard batch's slot open until its fragment
        executes.

        A cross-shard batch is still speculative after local commit: its locks
        are held through the Forward/Execute rotations, and a primary that
        keeps proposing into freed slots floods the ring with singleton
        rotations.  Holding the slot makes ``PipelineConfig.depth`` the bound
        on concurrent cross-shard batches in flight from this primary -- the
        rate-shaped pump then sees the true (rotation-length) slot latency and
        sizes batches for it.  The matching close is in
        :meth:`_execute_cross_fragment` (success) and
        :meth:`_on_transmit_timeout` (forward retransmissions exhausted);
        a view change clears the window wholesale.
        """
        if self.pipeline.depth <= 1 or sequence not in self._open_slots:
            return False
        if not self.pacing.window_sustainable():
            # Below the sustain threshold the window is latency-bound, not
            # throughput-bound: holding a slot through a ~100 ms rotation
            # would only stall the (mostly idle) pipeline.  Eager release is
            # the proven regime there -- same rule as the pump's fallback.
            return False
        batch = self.batches.get(digest, ())
        return bool(batch) and batch[0].transaction.is_cross_shard

    def _on_batch_committed(self, view, sequence, digest, batch) -> None:
        """Lock data fragments in sequence order, then execute or forward."""
        if not batch:
            return
        self._acquire_locks_then(
            sequence, digest, batch, lambda: self._on_locks_acquired(view, sequence, digest)
        )

    def _on_locks_acquired(self, view: int, sequence: int, digest: bytes) -> None:
        batch = self.batches.get(digest, ())
        if not batch:
            return
        involved = batch[0].transaction.involved_shards
        if len(involved) <= 1:
            self._execute_single_shard(sequence, digest, batch)
            return
        record = self._record_for(digest, involved, batch)
        record.sequence = sequence
        record.commit_view = view
        record.locked = True
        # Attach this shard's current read set (the committed values of the
        # data items the batch accesses here) so that complex transactions can
        # resolve cross-shard dependencies from the accumulated Sigma.
        local_reads = {
            key: self.store.read(key)
            for key in self._lock_keys_for(batch)
            if key in self.store
        }
        record.add_local_writes(self.shard_id, local_reads)
        self._send_forward(record)
        if record.execute_ready:
            # An Execute quorum arrived while we were still locking.
            self._execute_cross_fragment(record)

    # ------------------------------------------------------------------
    # single-shard path
    # ------------------------------------------------------------------

    def _execute_single_shard(self, sequence: int, digest: bytes, batch) -> None:
        self._execute_batch(sequence, digest, batch)
        self.last_executed = max(self.last_executed, sequence)
        self._release_lock_token(digest.hex())

    # ------------------------------------------------------------------
    # cross-shard records
    # ------------------------------------------------------------------

    def _record_for(
        self,
        digest: bytes,
        involved: frozenset[int],
        requests: tuple[ClientRequest, ...] = (),
    ) -> CrossShardRecord:
        record = self._cross_records.get(digest)
        if record is None:
            record = CrossShardRecord(batch_digest=digest, involved_shards=involved)
            self._cross_records[digest] = record
        if requests and not record.requests:
            record.requests = tuple(requests)
        if involved and not record.involved_shards:
            record.involved_shards = involved
        return record

    def cross_record(self, digest: bytes) -> CrossShardRecord | None:
        """Public accessor used by tests and the fault injector."""
        return self._cross_records.get(digest)

    # ------------------------------------------------------------------
    # Forward: process & forward (Figure 5, lines 15-31)
    # ------------------------------------------------------------------

    def _next_shard_for(self, record: CrossShardRecord) -> int:
        return self.ring.next_in_ring_order(self.shard_id, record.involved_shards)

    def _prev_shard_for(self, record: CrossShardRecord) -> int:
        return self.ring.prev_in_ring_order(self.shard_id, record.involved_shards)

    def _counterpart(self, shard_id: int):
        """The replica of ``shard_id`` paired with this one by the linear primitive."""
        return self.directory.peer_with_index(shard_id, self.replica_id.index)

    def _send_forward(self, record: CrossShardRecord) -> None:
        if record.sequence is None or self.drop_forwards:
            return
        # Reuse the Forward across retransmissions: rebuilding it every time
        # minted a fresh frozen object whose payload memo, MAC vector, and
        # wire encoding all started cold.  Rebuild only when the accumulated
        # read sets actually changed since the cached copy was built.
        message = record.cached_forward
        if message is None or record.cached_forward_version != record.write_sets_version:
            certificate = self.log.commit_certificate(
                self.shard_id,
                record.commit_view,
                record.sequence,
                record.batch_digest,
                self.quorum.commit_quorum,
            )
            message = Forward(
                sender=self.replica_id,
                requests=record.requests,
                certificate=certificate,
                batch_digest=record.batch_digest,
                origin_shard=self.shard_id,
                read_sets={shard: dict(values) for shard, values in record.write_sets.items()},
            )
            record.cached_forward = message
            record.cached_forward_version = record.write_sets_version
        next_shard = self._next_shard_for(record)
        # Tag every replica of the destination shard even though only the
        # counterpart receives the unicast: the local relay (Figure 5, lines
        # 29-30) forwards this same object, so the whole shard can verify the
        # original sender's MAC vector.
        self._authenticate_cross_shard_broadcast(message, (next_shard,))
        self.send(self._counterpart(next_shard), message)
        record.forwarded = True
        self._arm_transmit_timer(record)

    def _arm_transmit_timer(self, record: CrossShardRecord) -> None:
        digest = record.batch_digest
        self.set_timer(
            f"transmit-{digest.hex()}",
            self.timers_config.transmit_timeout,
            lambda: self._on_transmit_timeout(digest),
        )

    def _on_transmit_timeout(self, digest: bytes) -> None:
        """Re-transmit the Forward message until the rotation completes (5.1.1).

        Retransmissions are capped (``TimerConfig.max_forward_retransmissions``)
        so that a permanently unreachable next shard cannot spin this timer
        forever; giving up is surfaced in the replica's stats, and the record
        stays pending (``pending_cross_shard``) for the operator to see.
        """
        record = self._cross_records.get(digest)
        if record is None or record.executed or not record.locked:
            return
        if record.retransmissions >= self.timers_config.max_forward_retransmissions:
            if not record.retransmissions_exhausted:
                record.retransmissions_exhausted = True
                self.forward_give_ups += 1
                self.stats.record_dropped_request("forward-retransmissions-exhausted")
                if record.sequence is not None:
                    # Give the abandoned rotation's window slot back so the
                    # primary is not wedged below depth forever (the record
                    # itself stays pending for the operator).
                    self._close_slot(record.sequence, committed=False)
            return
        record.retransmissions += 1
        self._send_forward(record)

    def _handle_protocol_message(self, message) -> None:
        if isinstance(message, Forward):
            self._handle_forward(message)
        elif isinstance(message, Execute):
            self._handle_execute(message)
        elif isinstance(message, RemoteView):
            self._handle_remote_view(message)

    def _relay_locally(self, message, digest: bytes) -> None:
        """Local sharing of cross-shard messages (Figure 5, lines 29-30).

        Only the designated recipient (same replica index as the sender)
        relays, and each (type, digest, original sender) is relayed once.
        """
        sender = message.sender
        if getattr(sender, "shard", self.shard_id) == self.shard_id:
            return
        if sender.index != self.replica_id.index:
            return
        seen = self._relayed.setdefault(digest, set())
        key = (message.type_name, str(sender))
        if key in seen:
            return
        seen.add(key)
        peers = [r for r in self.shard_peers if r != self.replica_id]
        # The relayed message keeps its *original* cross-shard sender, and it
        # already carries that sender's MAC vector for every replica of this
        # shard (minted at _send_forward/_send_execute time), so each peer
        # verifies the original sender directly -- the relayer adds nothing.
        self.broadcast(peers, message)

    def _verify_forward(self, message: Forward) -> bool:
        """Well-formedness of a Forward: digest matches and the certificate verifies."""
        if batch_digest(message.requests) != message.batch_digest:
            return False
        certificate = message.certificate
        if certificate.batch_digest != message.batch_digest:
            return False
        origin_quorum = self.directory.quorum(message.origin_shard).commit_quorum
        return verify_certificate(
            self.signer,
            certificate.signed_payload(),
            certificate.signatures,
            origin_quorum,
        )

    def _handle_forward(self, message: Forward) -> None:
        if message.batch_digest in self._retired_digests:
            # Late retransmission for a rotation this replica already completed
            # and garbage-collected; resurrecting the record would re-propose
            # an executed batch.
            return
        if not self._verify_forward(message):
            return
        digest = message.batch_digest
        involved = message.requests[0].transaction.involved_shards
        if self.shard_id not in involved:
            return
        self._relay_locally(message, digest)
        record = self._record_for(digest, involved, message.requests)
        record.merge_write_sets(message.read_sets)
        origin = message.origin_shard
        count = record.record_forward(origin, str(message.sender))
        origin_weak = self.directory.quorum(origin).weak_quorum
        if count == 1 and not record.locked:
            self._arm_remote_timer(record, origin)
        if count < origin_weak:
            return
        self.cancel_timer(f"remote-{digest.hex()}")
        if record.locked:
            # The rotation wrapped back to us (we are the initiator, or a
            # retransmission arrived): start the execution rotation once.
            if not record.rotation_complete:
                record.rotation_complete = True
                self._begin_execution_rotation(record)
            return
        if not record.consensus_started:
            record.consensus_started = True
            if self.is_primary and not self.byzantine_silent:
                self._propose(message.requests)
            elif not self.is_primary:
                # Expect our primary to propose the forwarded batch; otherwise
                # view-change (attack A2 applied to forwarded requests).
                self.set_timer(
                    f"forwarded-{digest.hex()}",
                    self._local_timeout(),
                    lambda: self._on_forwarded_timeout(digest),
                )

    def _on_forwarded_timeout(self, digest: bytes) -> None:
        record = self._cross_records.get(digest)
        if record is not None and not record.locked:
            self._initiate_view_change()

    def _arm_remote_timer(self, record: CrossShardRecord, origin: int) -> None:
        digest = record.batch_digest
        self.set_timer(
            f"remote-{digest.hex()}",
            self.timers_config.remote_timeout,
            lambda: self._on_remote_timeout(digest, origin),
        )

    def _on_remote_timeout(self, digest: bytes, origin: int) -> None:
        """Partial-communication attack detected: ask the previous shard to view-change."""
        record = self._cross_records.get(digest)
        if record is None:
            return
        origin_weak = self.directory.quorum(origin).weak_quorum
        if len(record.forward_senders.get(origin, set())) >= origin_weak:
            return
        message = RemoteView(
            sender=self.replica_id,
            batch_digest=digest,
            target_shard=origin,
        )
        self._authenticate_cross_shard_broadcast(message, (origin,))
        self.send(self._counterpart(origin), message)

    # ------------------------------------------------------------------
    # Execution rotation (Figure 5, lines 32-44)
    # ------------------------------------------------------------------

    def _begin_execution_rotation(self, record: CrossShardRecord) -> None:
        """The initiator executes its fragment and starts the Execute rotation."""
        self._execute_cross_fragment(record)

    def _execute_cross_fragment(self, record: CrossShardRecord) -> None:
        if record.executed or record.sequence is None:
            return
        transactions = [req.transaction for req in record.requests]
        results = self.executor.execute_batch(transactions, record.write_sets)
        self.executed_txn_count += len(transactions)
        local_writes: dict[str, str] = {}
        for result in results:
            local_writes.update(result.writes)
        record.add_local_writes(self.shard_id, local_writes)
        record.executed = True
        self.last_executed = max(self.last_executed, record.sequence)
        self.log.mark(record.commit_view, record.sequence, SlotState.EXECUTED)
        self.cancel_timer(f"transmit-{record.batch_digest.hex()}")
        self._release_lock_token(record.batch_digest.hex())
        # The deferred window slot (see _defer_slot_release): this shard's
        # speculative cross-shard work is done, the slot can take new work.
        self._close_slot(record.sequence)
        self._maybe_checkpoint(record.sequence, tuple(transactions))
        self._send_execute(record)
        self._maybe_retire_record(record)

    def _send_execute(self, record: CrossShardRecord) -> None:
        if record.execute_sent:
            return
        record.execute_sent = True
        message = Execute(
            sender=self.replica_id,
            batch_digest=record.batch_digest,
            txn_ids=record.txn_ids,
            write_sets={shard: dict(w) for shard, w in record.write_sets.items()},
            origin_shard=self.shard_id,
        )
        next_shard = self._next_shard_for(record)
        # Same pattern as _send_forward: the vector covers the whole
        # destination shard so the local relay stays verifiable.
        self._authenticate_cross_shard_broadcast(message, (next_shard,))
        self.send(self._counterpart(next_shard), message)

    def _handle_execute(self, message: Execute) -> None:
        digest = message.batch_digest
        if digest in self._retired_digests:
            return
        record = self._cross_records.get(digest)
        if record is None:
            # Execute for a batch we have not locked yet; remember the writes.
            record = self._record_for(digest, frozenset())
        self._relay_locally(message, digest)
        origin = message.origin_shard
        count = record.record_execute(origin, str(message.sender))
        record.merge_write_sets(message.write_sets)
        origin_weak = self.directory.quorum(origin).weak_quorum
        if count < origin_weak:
            return
        if record.executed:
            # We are the initiator and the Execute rotation wrapped back:
            # every shard has executed, reply to the client (Figure 5, 41-42).
            self._reply_for_record(record)
            return
        if record.locked:
            self._execute_cross_fragment(record)
        else:
            record.execute_ready = True

    def _reply_for_record(self, record: CrossShardRecord) -> None:
        if record.replied or record.sequence is None:
            return
        is_initiator = self.ring.first_in_ring_order(record.involved_shards) == self.shard_id
        if not is_initiator:
            return
        record.replied = True
        for request in record.requests:
            self._reply_to_client(request, record.sequence)
        self._maybe_retire_record(record)

    # ------------------------------------------------------------------
    # Remote view change (Figure 6)
    # ------------------------------------------------------------------

    def _handle_remote_view(self, message: RemoteView) -> None:
        if message.target_shard != self.shard_id:
            return
        digest = message.batch_digest
        if digest in self._retired_digests:
            # The rotation completed here before GC retired it; a view change
            # on its behalf would be pure churn.
            return
        record = self._record_for(digest, frozenset())
        self._relay_locally(message, digest)
        sender = message.sender
        sender_shard = getattr(sender, "shard", None)
        if sender_shard is None or sender_shard == self.shard_id:
            return
        count = record.record_remote_view(sender_shard, str(sender))
        if count >= self.directory.quorum(sender_shard).weak_quorum:
            self._initiate_view_change()

    # ------------------------------------------------------------------
    # state-transfer integration
    # ------------------------------------------------------------------

    def _install_state(self, reply) -> None:
        """Also retire rotations the adopted snapshot already covers.

        A replica that missed a rotation's Forward/Execute quorums never
        executes the record locally -- its effects arrive wholesale with the
        snapshot.  Left in place, that permanently unsettled record would pin
        the GC floor below its sequence and this replica would never truncate
        again, so it is retired here and the truncation sweep re-run.
        """
        super()._install_state(reply)
        stale = [
            digest
            for digest, record in self._cross_records.items()
            if record.requests
            and all(self.executor.already_executed(txn_id) for txn_id in record.txn_ids)
            and not record.settled(self._is_initiator(record))
        ]
        for digest in stale:
            self._retire_record(digest, self.last_executed)
        if stale:
            self._on_stable_checkpoint(self.checkpoints.last_stable_sequence)

    # ------------------------------------------------------------------
    # view-change integration
    # ------------------------------------------------------------------

    def _resubmit_pending_requests(self) -> None:
        """After a view change, also re-drive cross-shard batches that stalled.

        A batch whose Forward quorum arrived under the previous primary may
        never have been proposed locally (that primary was faulty), so the new
        primary re-proposes every known cross-shard batch that has not locked
        its data yet.
        """
        super()._resubmit_pending_requests()
        for record in self._cross_records.values():
            if not record.requests or record.locked:
                continue
            if self.is_primary and not self.byzantine_silent:
                record.consensus_started = True
                self._propose(record.requests)
            elif not self.is_primary and record.consensus_started:
                # Give the new primary a chance before escalating again.
                self.set_timer(
                    f"forwarded-{record.batch_digest.hex()}",
                    self._local_timeout(),
                    lambda digest=record.batch_digest: self._on_forwarded_timeout(digest),
                )

    # ------------------------------------------------------------------
    # garbage collection (checkpoint-driven record retirement)
    # ------------------------------------------------------------------

    def _is_initiator(self, record: CrossShardRecord) -> bool:
        if not record.involved_shards:
            return False
        return self.ring.first_in_ring_order(record.involved_shards) == self.shard_id

    def _gc_floor(self, stable_sequence: int) -> int:
        """Never truncate at or above an unsettled cross-shard record.

        An in-flight rotation still needs its consensus slot (the commit
        certificate inside retransmitted Forward messages is assembled from
        the slot's signed Commit votes), so the watermark stays strictly below
        the earliest unsettled record.  A record whose retransmission cap was
        exhausted no longer pins the floor: nothing will re-send its Forward,
        so keeping its evidence would silently re-disable GC for the rest of
        the run; the record itself stays (small, and visible to operators via
        ``pending_cross_shard``).
        """
        floor = super()._gc_floor(stable_sequence)
        for record in self._cross_records.values():
            if record.sequence is None or record.retransmissions_exhausted:
                continue
            if not record.settled(self._is_initiator(record)):
                floor = min(floor, record.sequence - 1)
        return floor

    def _retire_record(self, digest: bytes, retired_at: int) -> None:
        del self._cross_records[digest]
        self._relayed.pop(digest, None)
        self._retired_digests[digest] = retired_at
        self.cancel_timer(f"transmit-{digest.hex()}")
        self.cancel_timer(f"forwarded-{digest.hex()}")
        self.cancel_timer(f"remote-{digest.hex()}")
        self.cross_records_retired += 1

    def _maybe_retire_record(self, record: CrossShardRecord) -> None:
        """Retire a record the moment it settles below the stable checkpoint.

        Most records settle *after* the checkpoint covering them stabilises
        (execution trails consensus), so the checkpoint-time sweep would hold
        them for one extra interval; retiring eagerly keeps the retained set
        tight to the genuinely in-flight rotations.
        """
        if not self.gc_enabled or record.sequence is None:
            return
        if record.sequence > self.checkpoints.last_stable_sequence:
            return
        if not record.settled(self._is_initiator(record)):
            return
        if record.batch_digest in self._cross_records:
            # Stamp the *current* stable sequence, not the record's own (it
            # may lie far below after a long stall): the dedup entry must
            # survive two checkpoint windows from now to absorb stragglers.
            self._retire_record(record.batch_digest, self.checkpoints.last_stable_sequence)

    def _truncate_below(self, watermark: int) -> None:
        retired = [
            digest
            for digest, record in self._cross_records.items()
            if record.sequence is not None
            and record.sequence <= watermark
            and record.settled(self._is_initiator(record))
        ]
        for digest in retired:
            self._retire_record(digest, watermark)
        # The retirement dedup map only needs to outlive straggling
        # retransmissions; two checkpoint windows is ample.
        horizon = watermark - 2 * self.checkpoints.interval
        for digest in [d for d, seq in self._retired_digests.items() if seq <= horizon]:
            del self._retired_digests[digest]
        super()._truncate_below(watermark)

    def retained_state(self) -> dict[str, int]:
        gauges = super().retained_state()
        gauges["cross_records"] = len(self._cross_records)
        gauges["relayed_keys"] = sum(len(keys) for keys in self._relayed.values())
        gauges["retired_digests"] = len(self._retired_digests)
        return gauges

    # ------------------------------------------------------------------
    # introspection helpers used by tests and experiments
    # ------------------------------------------------------------------

    def committed_cross_shard_count(self) -> int:
        return sum(1 for record in self._cross_records.values() if record.executed)

    def pending_cross_shard(self) -> tuple[str, ...]:
        return tuple(
            record.txn_ids[0] if record.txn_ids else record.batch_digest.hex()[:8]
            for record in self._cross_records.values()
            if not record.executed
        )
