"""Deterministic transaction execution against a replica's partition.

Execution happens after consensus: every non-faulty replica applies the same
fragments in the same order, so all copies of a partition stay identical
(non-divergence).  For *complex* cross-shard transactions a fragment may
depend on values owned by other shards; those values arrive in the ``Sigma``
write-sets carried by second-rotation ``Execute`` messages and are passed in
via ``remote_values``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.storage.kvstore import KeyValueStore
from repro.txn.transaction import OpType, Transaction


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one transaction's fragment on one shard."""

    txn_id: str
    shard_id: int
    reads: dict[str, str]
    writes: dict[str, str]
    missing_dependencies: frozenset[tuple[int, str]] = frozenset()

    @property
    def complete(self) -> bool:
        """True when every cross-shard dependency was satisfied."""
        return not self.missing_dependencies


@dataclass
class ExecutionEngine:
    """Executes transaction fragments for one replica."""

    shard_id: int
    store: KeyValueStore
    _executed: dict[str, ExecutionResult] = field(default_factory=dict)

    def already_executed(self, txn_id: str) -> bool:
        return txn_id in self._executed

    def executed_txn_ids(self) -> tuple[str, ...]:
        """Identifiers of every transaction this replica has executed."""
        return tuple(self._executed)

    def mark_executed(self, txn_ids: tuple[str, ...] | list[str]) -> None:
        """Adopt execution results received via state transfer.

        The actual values already live in the store snapshot; recording the
        transaction ids prevents re-execution and lets retransmitted client
        requests be answered from the adopted state.
        """
        for txn_id in txn_ids:
            self._executed.setdefault(
                txn_id,
                ExecutionResult(txn_id=txn_id, shard_id=self.shard_id, reads={}, writes={}),
            )

    def result_for(self, txn_id: str) -> ExecutionResult:
        if txn_id not in self._executed:
            raise StorageError(f"transaction {txn_id!r} has not been executed on shard {self.shard_id}")
        return self._executed[txn_id]

    def execute_fragment(
        self,
        txn: Transaction,
        remote_values: dict[int, dict[str, str]] | None = None,
    ) -> ExecutionResult:
        """Execute the local fragment of ``txn``.

        ``remote_values`` maps shard -> {key -> value} and supplies the values
        needed by operations with cross-shard dependencies.  Execution is
        idempotent: re-executing a transaction returns the stored result,
        which is how replicas answer retransmitted client requests.
        """
        if txn.txn_id in self._executed:
            return self._executed[txn.txn_id]
        remote_values = remote_values or {}
        reads: dict[str, str] = {}
        writes: dict[str, str] = {}
        missing: set[tuple[int, str]] = set()
        for op in txn.fragment_for(self.shard_id):
            if op.op_type is OpType.READ:
                if op.key in self.store:
                    reads[op.key] = self.store.read(op.key)
                else:
                    reads[op.key] = ""
                continue
            # WRITE: resolve dependencies first.
            dependency_suffix = ""
            for dep_shard, dep_key in op.depends_on:
                if dep_shard == self.shard_id:
                    value = self.store.read(dep_key) if dep_key in self.store else ""
                else:
                    value = remote_values.get(dep_shard, {}).get(dep_key)
                    if value is None:
                        missing.add((dep_shard, dep_key))
                        continue
                dependency_suffix += f"|{dep_shard}:{dep_key}={value}"
            new_value = op.value + dependency_suffix
            self.store.write(op.key, new_value)
            writes[op.key] = new_value
        result = ExecutionResult(
            txn_id=txn.txn_id,
            shard_id=self.shard_id,
            reads=reads,
            writes=writes,
            missing_dependencies=frozenset(missing),
        )
        self._executed[txn.txn_id] = result
        return result

    def execute_batch(
        self,
        transactions: list[Transaction] | tuple[Transaction, ...],
        remote_values: dict[int, dict[str, str]] | None = None,
    ) -> list[ExecutionResult]:
        """Execute every fragment of a committed batch, in batch order."""
        return [self.execute_fragment(txn, remote_values) for txn in transactions]

    @property
    def executed_count(self) -> int:
        return len(self._executed)
