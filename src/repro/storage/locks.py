"""Per-shard data-item lock manager with sequence-ordered acquisition.

RingBFT's deadlock-freedom argument (Theorem 6.2) rests on two rules enforced
here:

1. Replicas may run the Prepare/Commit phases of many transactions
   out of order, but **locks are acquired in transactional sequence order**:
   a transaction at sequence ``k`` may only lock once every transaction up to
   ``k - 1`` has locked (tracked by ``k_max``).
2. A committed transaction that cannot lock because a data item is still held
   waits in the pending list ``pi`` and is retried when locks are released.

The lock manager is deliberately conservative: a transaction locks *all* of
the keys it accesses in this shard (reads and writes), exactly as the paper
describes ("lock all the read-write sets that transaction T_I needs to access
in shard S").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LockError


@dataclass
class _PendingEntry:
    sequence: int
    txn_id: str
    keys: frozenset[str]


@dataclass
class LockManager:
    """Lock table for a single replica of one shard."""

    shard_id: int
    _held: dict[str, str] = field(default_factory=dict)  # key -> txn_id
    _txn_keys: dict[str, frozenset[str]] = field(default_factory=dict)
    _k_max: int = 0
    _pending: dict[int, _PendingEntry] = field(default_factory=dict)
    _skipped: set[int] = field(default_factory=set)

    @property
    def k_max(self) -> int:
        """Sequence number of the last transaction that acquired its locks."""
        return self._k_max

    @property
    def pending_sequences(self) -> tuple[int, ...]:
        """Sequences currently waiting in the pending list ``pi``."""
        return tuple(sorted(self._pending))

    def holder_of(self, key: str) -> str | None:
        """The transaction currently holding ``key``, if any."""
        return self._held.get(key)

    def holds(self, txn_id: str) -> bool:
        return txn_id in self._txn_keys

    def is_free(self, keys: frozenset[str]) -> bool:
        """True when none of ``keys`` is currently locked."""
        return all(key not in self._held for key in keys)

    def _acquire(self, txn_id: str, keys: frozenset[str]) -> None:
        for key in keys:
            holder = self._held.get(key)
            if holder is not None and holder != txn_id:
                raise LockError(
                    f"key {key!r} already locked by {holder!r}; cannot grant to {txn_id!r}"
                )
        for key in keys:
            self._held[key] = txn_id
        self._txn_keys[txn_id] = keys

    def try_lock(self, sequence: int, txn_id: str, keys: frozenset[str]) -> tuple[bool, list[str]]:
        """Attempt to lock ``keys`` for the transaction committed at ``sequence``.

        Returns ``(acquired, unblocked)`` where ``acquired`` states whether
        *this* transaction got its locks now, and ``unblocked`` is the ordered
        list of previously pending transaction ids that were subsequently able
        to lock (the "gradually release transactions in pi" step of
        Section 4.3.5).  If the transaction must wait -- either because its
        sequence is ahead of ``k_max + 1`` or because a key is held -- it is
        stored in the pending list and ``acquired`` is ``False``.
        """
        if sequence <= 0:
            raise LockError("sequence numbers start at 1")
        if txn_id in self._txn_keys:
            return True, []
        if sequence <= self._k_max:
            raise LockError(
                f"sequence {sequence} was already processed (k_max={self._k_max})"
            )
        if sequence != self._k_max + 1 or not self.is_free(keys):
            self._pending[sequence] = _PendingEntry(sequence=sequence, txn_id=txn_id, keys=keys)
            # Even the head-of-line transaction waits when its data is locked;
            # it will be retried by release().
            return False, []
        self._acquire(txn_id, keys)
        self._k_max = sequence
        return True, self._drain_pending()

    def fast_forward(self, sequence: int) -> list[str]:
        """Advance ``k_max`` to ``sequence`` (state transfer install).

        Used when a lagging replica adopts a peer's state: every sequence up
        to the peer's execution point is considered handled.  Pending
        transactions at or below the new ``k_max`` are dropped (their effects
        are already part of the adopted snapshot); later ones may now unblock.
        """
        if sequence <= self._k_max:
            return []
        for seq in [s for s in self._pending if s <= sequence]:
            del self._pending[seq]
        self._skipped = {s for s in self._skipped if s > sequence}
        self._k_max = sequence
        return self._drain_pending()

    def skip_sequence(self, sequence: int) -> list[str]:
        """Mark ``sequence`` as a no-op that will never acquire locks.

        View changes can abandon sequence numbers (the primary that assigned
        them failed before the request prepared anywhere); skipping them keeps
        the strictly ordered lock acquisition from stalling on the gap.
        Returns the transactions unblocked by closing the gap.
        """
        if sequence <= self._k_max:
            return []
        self._skipped.add(sequence)
        return self._drain_pending()

    def _drain_pending(self) -> list[str]:
        """Grant locks to pending transactions in sequence order until one blocks."""
        unblocked: list[str] = []
        while True:
            if self._k_max + 1 in self._skipped:
                self._skipped.discard(self._k_max + 1)
                self._k_max += 1
                continue
            nxt = self._pending.get(self._k_max + 1)
            if nxt is None:
                break
            if not self.is_free(nxt.keys):
                break
            del self._pending[nxt.sequence]
            self._acquire(nxt.txn_id, nxt.keys)
            self._k_max = nxt.sequence
            unblocked.append(nxt.txn_id)
        return unblocked

    def release(self, txn_id: str) -> list[str]:
        """Release all locks held by ``txn_id``; returns newly unblocked txn ids."""
        keys = self._txn_keys.pop(txn_id, None)
        if keys is None:
            raise LockError(f"transaction {txn_id!r} holds no locks in shard {self.shard_id}")
        for key in keys:
            if self._held.get(key) == txn_id:
                del self._held[key]
        return self._drain_pending()

    def held_keys(self, txn_id: str) -> frozenset[str]:
        return self._txn_keys.get(txn_id, frozenset())

    @property
    def locked_key_count(self) -> int:
        return len(self._held)
