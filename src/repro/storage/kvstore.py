"""YCSB-style partitioned key-value store.

The paper's evaluation uses a YCSB table with an active set of 600k records;
each shard manages a unique partition of the data and every replica of a
shard keeps an identical copy of that partition (Section 3, Section 8).

Keys are strings of the form ``"user<N>"``; partitioning is by key range so
that the owner shard of any key can be computed locally by any replica
(needed for deterministic transactions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.merkle import BucketedDigest
from repro.errors import StorageError


def ycsb_key(index: int) -> str:
    """Canonical YCSB record name for row ``index``."""
    return f"user{index}"


@dataclass
class KeyValueStore:
    """One replica's copy of its shard's partition."""

    shard_id: int
    _data: dict[str, str] = field(default_factory=dict)
    _version: dict[str, int] = field(default_factory=dict)
    _rolling: BucketedDigest = field(default_factory=BucketedDigest, repr=False)

    def _track(self, key: str) -> None:
        self._rolling.update(
            key, f"{key}={self._data[key]}#{self._version.get(key, 0)}".encode()
        )

    def load(self, records: dict[str, str]) -> None:
        """Bulk-load the initial table contents (identical on every replica)."""
        self._data.update(records)
        for key in records:
            self._version.setdefault(key, 0)
            self._track(key)

    def replace(self, records: dict[str, str]) -> None:
        """Replace the whole partition with ``records`` (state transfer install).

        Versions are reset: after a state transfer the replica adopts the
        peer's values wholesale, and subsequent writes restart versioning.
        """
        self._data = dict(records)
        self._version = {key: 0 for key in records}
        self._rolling.reset()
        for key in records:
            self._track(key)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def read(self, key: str) -> str:
        if key not in self._data:
            raise StorageError(f"key {key!r} is not stored in shard {self.shard_id}")
        return self._data[key]

    def write(self, key: str, value: str) -> None:
        if key not in self._data:
            # Blind inserts are allowed: YCSB's insert operation creates rows.
            self._version[key] = 0
        self._data[key] = value
        self._version[key] = self._version.get(key, 0) + 1
        self._track(key)

    def version(self, key: str) -> int:
        """Number of committed writes applied to ``key`` (0 for never-written)."""
        return self._version.get(key, 0)

    def snapshot_digest_input(self) -> bytes:
        """Stable byte representation of the full state (O(n) re-canonicalization).

        Kept for tools and tests; the checkpoint hot path uses
        :meth:`state_root` instead.
        """
        parts = [f"{k}={v}#{self._version.get(k, 0)}" for k, v in sorted(self._data.items())]
        return "|".join(parts).encode()

    def state_root(self) -> bytes:
        """Rolling merkleized digest of the full state.

        Incrementally maintained by :meth:`write`/:meth:`load`/:meth:`replace`;
        a root request re-digests only the buckets touched since the last call,
        so periodic checkpoints stop re-canonicalizing the whole partition.
        """
        return self._rolling.root()

    @property
    def dirty_digest_buckets(self) -> int:
        """Buckets awaiting re-digest (instrumentation for benchmarks)."""
        return self._rolling.dirty_buckets

    def items(self) -> dict[str, str]:
        return dict(self._data)


class ShardedKeyValueStore:
    """Global view of the partitioned table: maps keys to owner shards.

    This object is *logical* -- it never holds data itself.  It is used by
    workload generators and clients to build deterministic transactions whose
    operations carry the correct owner shard, and by the harness to build each
    replica's initial partition.
    """

    def __init__(self, shard_ids: tuple[int, ...] | list[int], num_records: int) -> None:
        if not shard_ids:
            raise StorageError("at least one shard is required")
        if num_records <= 0:
            raise StorageError("num_records must be positive")
        self._shard_ids = tuple(shard_ids)
        self._num_records = num_records

    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def num_shards(self) -> int:
        return len(self._shard_ids)

    def owner_of(self, record_index: int) -> int:
        """Owner shard of record ``record_index`` (range partitioning)."""
        if not 0 <= record_index < self._num_records:
            raise StorageError(f"record index {record_index} outside [0, {self._num_records})")
        per_shard = self._records_per_shard()
        position = min(record_index // per_shard, self.num_shards - 1)
        return self._shard_ids[position]

    def owner_of_key(self, key: str) -> int:
        if not key.startswith("user"):
            raise StorageError(f"not a YCSB key: {key!r}")
        return self.owner_of(int(key[len("user"):]))

    def _records_per_shard(self) -> int:
        return max(1, self._num_records // self.num_shards)

    def records_for(self, shard_id: int) -> range:
        """Range of record indices owned by ``shard_id``."""
        if shard_id not in self._shard_ids:
            raise StorageError(f"unknown shard {shard_id}")
        position = self._shard_ids.index(shard_id)
        per_shard = self._records_per_shard()
        start = position * per_shard
        if position == self.num_shards - 1:
            end = self._num_records
        else:
            end = min(self._num_records, (position + 1) * per_shard)
        return range(start, end)

    def local_record(self, shard_id: int, offset: int) -> str:
        """The ``offset``-th key owned by ``shard_id`` (wraps around)."""
        records = self.records_for(shard_id)
        if len(records) == 0:
            raise StorageError(f"shard {shard_id} owns no records")
        return ycsb_key(records[offset % len(records)])

    def build_partition(self, shard_id: int, initial_value: str = "init") -> dict[str, str]:
        """Initial contents of ``shard_id``'s partition, identical on every replica."""
        return {ycsb_key(i): initial_value for i in self.records_for(shard_id)}
