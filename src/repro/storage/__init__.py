"""Per-shard storage substrates: KV store, lock manager, ledger, execution, checkpoints."""

from repro.storage.kvstore import KeyValueStore, ShardedKeyValueStore
from repro.storage.locks import LockManager
from repro.storage.ledger import Block, Ledger
from repro.storage.executor import ExecutionEngine, ExecutionResult
from repro.storage.checkpoint import CheckpointStore

__all__ = [
    "KeyValueStore",
    "ShardedKeyValueStore",
    "LockManager",
    "Block",
    "Ledger",
    "ExecutionEngine",
    "ExecutionResult",
    "CheckpointStore",
]
