"""Per-shard partial blockchain (Section 7, *Blockchain*).

Each shard maintains its own append-only ledger; a block ``B_k = {k, Delta,
p_S, H(B_{k-1})}`` records the batch committed at sequence ``k`` under primary
``p_S`` and chains to its predecessor by hash.  Cross-shard blocks are
appended to the ledger of *every* involved shard; the union of the per-shard
ledgers is the complete system state (equation 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import codec
from repro.common.codec import register_wire_type
from repro.common.crypto import sha256
from repro.common.merkle import MerkleTree
from repro.errors import LedgerError
from repro.txn.transaction import Transaction

GENESIS_DIGEST = sha256(b"ringbft-genesis")


@register_wire_type
@dataclass(frozen=True)
class Block:
    """One block of a shard's partial blockchain."""

    height: int
    sequence: int
    shard_id: int
    primary: str
    merkle_root: bytes
    previous_hash: bytes
    txn_ids: tuple[str, ...]
    involved_shards: frozenset[int]

    def _header_fields(self) -> dict:
        return {
            "height": self.height,
            "sequence": self.sequence,
            "shard": self.shard_id,
            "primary": self.primary,
            "root": self.merkle_root,
            "prev": self.previous_hash,
            "txns": list(self.txn_ids),
        }

    def header_bytes(self) -> bytes:
        return codec.memoized_payload(self, self._header_fields)

    def block_hash(self) -> bytes:
        """Hash of the immutable header, computed at most once per object.

        Chain validation, ledger appends (parent hash), and the deployment's
        consistency sweeps all re-ask for block hashes; memoisation turns the
        repeated header re-serialisations into dictionary lookups.
        """
        return codec.memoized_digest(self, self._header_fields)

    @property
    def is_cross_shard(self) -> bool:
        return len(self.involved_shards) > 1


def genesis_block(shard_id: int) -> Block:
    """The agreed-upon dummy block every replica starts its ledger with."""
    return Block(
        height=0,
        sequence=0,
        shard_id=shard_id,
        primary="genesis",
        merkle_root=GENESIS_DIGEST,
        previous_hash=b"\x00" * 32,
        txn_ids=(),
        involved_shards=frozenset({shard_id}),
    )


@dataclass
class Ledger:
    """Append-only, hash-chained ledger held by every replica of a shard."""

    shard_id: int
    _blocks: list[Block] = field(default_factory=list)
    #: txn id -> commit sequence, maintained alongside the chain so that
    #: retransmission replies (and ``contains_txn``) cost one dict lookup
    #: instead of a linear scan over every block ever committed.
    _txn_sequence: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._blocks:
            self._blocks.append(genesis_block(self.shard_id))
        for block in self._blocks:
            self._index_block(block)

    def _index_block(self, block: Block) -> None:
        for txn_id in block.txn_ids:
            self._txn_sequence[txn_id] = block.sequence

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def height(self) -> int:
        return self._blocks[-1].height

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    def block_at(self, height: int) -> Block:
        if not 0 <= height < len(self._blocks):
            raise LedgerError(f"no block at height {height} (chain length {len(self._blocks)})")
        return self._blocks[height]

    def append_batch(
        self,
        sequence: int,
        primary: str,
        transactions: list[Transaction] | tuple[Transaction, ...],
    ) -> Block:
        """Create, validate, and append the block for a committed batch."""
        if not transactions:
            raise LedgerError("cannot append an empty batch")
        involved: set[int] = set()
        for txn in transactions:
            involved.update(txn.involved_shards)
        if codec.LEGACY.enabled:
            # Benchmark-only: the pre-codec ledger hashed full envelopes.
            leaves = [txn.payload_bytes() for txn in transactions]
        else:
            # Merkle leaves are the memoised transaction digests, so a block
            # append never re-serialises an envelope some replica already
            # hashed; proofs verify against ``txn.digest()`` as the leaf.
            leaves = [txn.digest() for txn in transactions]
        tree = MerkleTree(leaves)
        block = Block(
            height=self.height + 1,
            sequence=sequence,
            shard_id=self.shard_id,
            primary=primary,
            merkle_root=tree.root,
            previous_hash=self.head.block_hash(),
            txn_ids=tuple(txn.txn_id for txn in transactions),
            involved_shards=frozenset(involved),
        )
        self._append(block)
        return block

    def _append(self, block: Block) -> None:
        if block.height != self.height + 1:
            raise LedgerError(
                f"block height {block.height} does not extend chain at height {self.height}"
            )
        if block.previous_hash != self.head.block_hash():
            raise LedgerError("block parent hash does not match the chain head")
        self._blocks.append(block)
        self._index_block(block)

    def adopt_blocks(self, blocks: tuple[Block, ...] | list[Block]) -> int:
        """Adopt the missing suffix of a peer's chain (state transfer).

        The peer's blocks must agree with the local chain on the common
        prefix; any block extending the local head is appended after the
        usual parent-hash validation.  Returns the number of blocks adopted.
        """
        adopted = 0
        for block in blocks:
            if block.height <= self.height:
                local = self.block_at(block.height)
                if local.block_hash() != block.block_hash():
                    raise LedgerError(
                        f"state-transfer block at height {block.height} conflicts with local chain"
                    )
                continue
            self._append(block)
            adopted += 1
        return adopted

    def verify_chain(self) -> bool:
        """Recompute the whole hash chain; True iff no block was tampered with."""
        for prev, cur in zip(self._blocks, self._blocks[1:]):
            if cur.previous_hash != prev.block_hash():
                return False
            if cur.height != prev.height + 1:
                return False
        return True

    def contains_txn(self, txn_id: str) -> bool:
        return txn_id in self._txn_sequence

    def sequence_of(self, txn_id: str) -> int:
        """Commit sequence of ``txn_id``, or 0 when it was never committed here.

        O(1): replicas answer every retransmitted-but-already-executed client
        request through this lookup, which used to scan the whole chain.
        """
        return self._txn_sequence.get(txn_id, 0)

    def blocks(self) -> tuple[Block, ...]:
        return tuple(self._blocks)

    def cross_shard_blocks(self) -> tuple[Block, ...]:
        return tuple(block for block in self._blocks if block.is_cross_shard)

    def commit_order(self, txn_ids: set[str]) -> list[str]:
        """The order in which the given transactions appear in this ledger."""
        ordered: list[str] = []
        for block in self._blocks:
            ordered.extend(tid for tid in block.txn_ids if tid in txn_ids)
        return ordered
