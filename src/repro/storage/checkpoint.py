"""Periodic checkpointing (Section 5, attack A3).

A malicious primary can keep up to ``f`` non-faulty replicas "in the dark":
they never see enough Commit messages to make progress, yet the shard as a
whole keeps committing.  Checkpoint messages broadcast every
``checkpoint_interval`` sequence numbers carry the state digest (and, in this
implementation, the committed batches since the last checkpoint) so dark
replicas can catch up, and they let all replicas truncate their message logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.crypto import sha256
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class CheckpointRecord:
    """A stable checkpoint: sequence number, state digest, and the batches it covers."""

    sequence: int
    state_digest: bytes
    batches: tuple[tuple[int, tuple[Transaction, ...]], ...]


@dataclass
class CheckpointStore:
    """Checkpoint bookkeeping for one replica."""

    interval: int
    _last_stable: int = 0
    _batches_since: dict[int, tuple[Transaction, ...]] = field(default_factory=dict)
    _votes: dict[int, set[str]] = field(default_factory=dict)
    _stable: dict[int, CheckpointRecord] = field(default_factory=dict)

    @property
    def last_stable_sequence(self) -> int:
        return self._last_stable

    def record_batch(self, sequence: int, transactions: tuple[Transaction, ...]) -> None:
        """Remember a committed batch so it can be shipped to dark replicas."""
        self._batches_since[sequence] = transactions

    def should_checkpoint(self, sequence: int) -> bool:
        """True when committing ``sequence`` must trigger a Checkpoint broadcast."""
        return sequence > 0 and sequence % self.interval == 0

    def state_digest(self, store_digest_input: bytes, sequence: int) -> bytes:
        return sha256(store_digest_input + sequence.to_bytes(8, "big"))

    def add_vote(self, sequence: int, replica: str, quorum: int) -> bool:
        """Record a Checkpoint vote; True when the checkpoint just became stable."""
        votes = self._votes.setdefault(sequence, set())
        votes.add(replica)
        if len(votes) >= quorum and sequence > self._last_stable:
            self._make_stable(sequence)
            return True
        return False

    def _make_stable(self, sequence: int) -> None:
        covered = tuple(
            (seq, txns)
            for seq, txns in sorted(self._batches_since.items())
            if self._last_stable < seq <= sequence
        )
        record = CheckpointRecord(
            sequence=sequence,
            state_digest=sha256(f"stable-{sequence}".encode()),
            batches=covered,
        )
        self._stable[sequence] = record
        self._last_stable = sequence
        # Truncate the log: anything at or below the stable point is garbage-collected.
        for seq in [s for s in self._batches_since if s <= sequence]:
            del self._batches_since[seq]
        for seq in [s for s in self._votes if s <= sequence]:
            del self._votes[seq]

    def stable_record(self, sequence: int) -> CheckpointRecord | None:
        return self._stable.get(sequence)

    def batches_after(self, sequence: int) -> list[tuple[int, tuple[Transaction, ...]]]:
        """Committed batches above ``sequence`` still held in the log."""
        return [(seq, txns) for seq, txns in sorted(self._batches_since.items()) if seq > sequence]

    @property
    def log_size(self) -> int:
        """Number of batches retained since the last stable checkpoint."""
        return len(self._batches_since)
