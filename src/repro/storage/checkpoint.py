"""Periodic checkpointing (Section 5, attack A3).

A malicious primary can keep up to ``f`` non-faulty replicas "in the dark":
they never see enough Commit messages to make progress, yet the shard as a
whole keeps committing.  Checkpoint messages broadcast every
``checkpoint_interval`` sequence numbers carry the state digest (and, in this
implementation, the committed batches since the last checkpoint) so dark
replicas can catch up, and they let all replicas truncate their message logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.crypto import sha256
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class CheckpointRecord:
    """A stable checkpoint: sequence number, state digest, and the batches it covers."""

    sequence: int
    state_digest: bytes
    batches: tuple[tuple[int, tuple[Transaction, ...]], ...]


@dataclass
class CheckpointStore:
    """Checkpoint bookkeeping for one replica.

    The store is the anchor of the stack-wide garbage collection: it keeps at
    most ``keep_stable`` stable records, prunes its own vote and batch logs at
    every stable checkpoint, and reports its retained sizes as gauges so a
    sustained run can assert flat memory.
    """

    interval: int
    #: How many stable checkpoint records to retain (the latest k).  Older
    #: records are only useful to peers that lag more than k intervals, and
    #: those catch up through state transfer instead.
    keep_stable: int = 2
    _last_stable: int = 0
    _batches_since: dict[int, tuple[Transaction, ...]] = field(default_factory=dict)
    _votes: dict[int, dict[bytes, set[str]]] = field(default_factory=dict)
    _stable: dict[int, CheckpointRecord] = field(default_factory=dict)

    @property
    def last_stable_sequence(self) -> int:
        return self._last_stable

    def record_batch(self, sequence: int, transactions: tuple[Transaction, ...]) -> None:
        """Remember a committed batch so it can be shipped to dark replicas."""
        self._batches_since[sequence] = transactions

    def should_checkpoint(self, sequence: int) -> bool:
        """True when committing ``sequence`` must trigger a Checkpoint broadcast."""
        return sequence > 0 and sequence % self.interval == 0

    def state_digest(self, store_digest_input: bytes, sequence: int) -> bytes:
        return sha256(store_digest_input + sequence.to_bytes(8, "big"))

    def add_vote(
        self,
        sequence: int,
        replica: str,
        quorum: int,
        state_digest: bytes | None = None,
        digest_quorum: int = 1,
    ) -> bool:
        """Record a Checkpoint vote; True when the checkpoint just became stable.

        Stability requires ``quorum`` distinct voters for the sequence.  Votes
        are bucketed by digest rather than requiring unanimity because this
        reproduction executes cross-shard fragments out of band: two correct
        replicas can checkpoint sequence N with a different set of later
        rotations already applied, so their digests may legitimately differ
        without either being faulty.  The plurality digest is stamped into the
        stable :class:`CheckpointRecord` -- but only when at least
        ``digest_quorum`` replicas back it (callers pass ``f + 1`` so a lone
        Byzantine digest can never win a tie-break); otherwise the record
        falls back to the sequence-derived placeholder.
        """
        buckets = self._votes.setdefault(sequence, {})
        buckets.setdefault(state_digest or b"", set()).add(replica)
        voters = set().union(*buckets.values())
        if len(voters) >= quorum and sequence > self._last_stable:
            # Plurality digest, ties broken deterministically by digest bytes.
            digest, digest_voters = max(
                buckets.items(), key=lambda item: (len(item[1]), item[0])
            )
            if len(digest_voters) < digest_quorum:
                digest = b""
            self._make_stable(sequence, digest)
            return True
        return False

    def _make_stable(self, sequence: int, state_digest: bytes = b"") -> None:
        if not state_digest:
            # No digest threaded through (legacy callers/tests): fall back to a
            # sequence-derived placeholder so the record is still well-formed.
            state_digest = sha256(f"stable-{sequence}".encode())
        covered = tuple(
            (seq, txns)
            for seq, txns in sorted(self._batches_since.items())
            if self._last_stable < seq <= sequence
        )
        record = CheckpointRecord(
            sequence=sequence,
            state_digest=state_digest,
            batches=covered,
        )
        self._stable[sequence] = record
        self._last_stable = sequence
        # Truncate the log: anything at or below the stable point is garbage-collected.
        for seq in [s for s in self._batches_since if s <= sequence]:
            del self._batches_since[seq]
        for seq in [s for s in self._votes if s <= sequence]:
            del self._votes[seq]
        # Bounded stable history: keep only the latest ``keep_stable`` records.
        if self.keep_stable > 0:
            for seq in sorted(self._stable)[: -self.keep_stable]:
                del self._stable[seq]

    def stable_record(self, sequence: int) -> CheckpointRecord | None:
        return self._stable.get(sequence)

    def batches_after(self, sequence: int) -> list[tuple[int, tuple[Transaction, ...]]]:
        """Committed batches above ``sequence`` still held in the log."""
        return [(seq, txns) for seq, txns in sorted(self._batches_since.items()) if seq > sequence]

    @property
    def log_size(self) -> int:
        """Number of batches retained since the last stable checkpoint."""
        return len(self._batches_since)

    @property
    def stable_record_count(self) -> int:
        """Number of stable checkpoint records retained (at most ``keep_stable``)."""
        return len(self._stable)

    @property
    def pending_vote_count(self) -> int:
        """Outstanding checkpoint votes above the stable point (a memory gauge)."""
        return sum(
            len(voters) for buckets in self._votes.values() for voters in buckets.values()
        )
