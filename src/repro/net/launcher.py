"""Multi-process deployment on loopback TCP: one OS process per replica.

This is the harness behind ``ringbft serve`` and ``ringbft deploy-local``:

* :func:`build_address_book` allocates one loopback port per configured
  replica plus one for the coordinator and records them in an
  :class:`AddressBook` (written to a JSON file every process reads, so all
  processes agree on the topology without any discovery protocol);
* :func:`serve_replica` is the body of one replica process: it rebuilds the
  *same* :class:`~repro.config.SystemConfig` from the same flags, hosts
  exactly one replica on a :class:`~repro.engine.backends.SocketBackend`,
  and answers the coordinator's control plane (``ping`` / ``stats`` /
  ``shutdown``);
* :func:`deploy_local` is the coordinator: it spawns the replica processes,
  waits for every one to answer a ping, drives a cross-shard YCSB workload
  through socket-attached clients, scrapes each process's metrics over the
  control plane, and aggregates everything -- throughput, latencies,
  bytes-on-wire, auth rejections, per-shard commit order -- into one report.

The per-shard commit orders scraped from the replica processes double as a
cross-process ledger-consistency check (the single-process harness compares
ledger objects directly; here the evidence crosses the wire like everything
else).
"""

from __future__ import annotations

import asyncio as _asyncio
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time as _time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.types import ReplicaId
from repro.config import SystemConfig, TimerConfig, WorkloadConfig
from repro.engine.backends import SocketBackend
from repro.engine.deployment import Deployment, RunResult
from repro.errors import ConfigurationError, MalformedMessageError, NetworkError
from repro.net.wire import ControlRequest, control_roundtrip
from repro.netem import netem_policy_for, regions_for

Endpoint = tuple[str, int]

#: How long the coordinator waits for every replica process to answer a ping.
READY_TIMEOUT_S = 30.0
#: Per-control-call timeout (loopback; generous for loaded CI machines).
CONTROL_CALL_TIMEOUT_S = 10.0


# ---------------------------------------------------------------------------
# shared configuration (all processes must agree, so it derives from flags)
# ---------------------------------------------------------------------------


def build_system_config(
    *,
    shards: int,
    replicas_per_shard: int,
    num_records: int = 1_000,
    cross_shard: float = 0.3,
    checkpoint_interval: int = 100,
    seed: int = 2022,
    num_clients: int = 2,
    geo: str | None = None,
) -> SystemConfig:
    """The deployment config, derived purely from launcher flags.

    Both the coordinator and every ``serve`` process call this with the same
    flag values, so the directory, ring order, table partitioning, timers,
    and -- under ``geo`` -- the shard-to-region layout are identical in every
    process without shipping any config object.
    """
    workload = WorkloadConfig(
        num_records=num_records,
        cross_shard_fraction=cross_shard,
        batch_size=1,
        num_clients=num_clients,
        seed=seed,
    )
    timers = TimerConfig(checkpoint_interval=checkpoint_interval)
    return SystemConfig.uniform(
        shards, replicas_per_shard, timers=timers, workload=workload, regions=regions_for(geo)
    )


def build_workload(config: SystemConfig, client_ids: list[str], total: int, seed: int):
    """The deterministic figure-8-style cross-shard YCSB workload of one run.

    Transaction ``i`` is generated for (and carries the id of) the client
    that :meth:`Deployment.run_workload` will submit it through (round-robin),
    so the exact same list -- same ids, same keys, same cross-shard mix --
    can be replayed against any backend for parity checks.
    """
    from repro.storage.kvstore import ShardedKeyValueStore
    from repro.workloads.ycsb import YcsbWorkloadGenerator

    table = ShardedKeyValueStore(config.shard_ids, config.workload.num_records)
    generator = YcsbWorkloadGenerator(table, config.ring(), config.workload, seed=seed)
    return [
        generator.generate(1, client_ids[i % len(client_ids)])[0] for i in range(total)
    ]


# ---------------------------------------------------------------------------
# address book
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AddressBook:
    """Loopback endpoints of every process in one launcher deployment."""

    host: str
    coordinator_port: int
    replica_ports: dict[str, int]  # "shard:index" -> port

    @staticmethod
    def _key(replica_id: ReplicaId) -> str:
        return f"{replica_id.shard}:{replica_id.index}"

    def replica_endpoint(self, replica_id: ReplicaId) -> Endpoint:
        key = self._key(replica_id)
        if key not in self.replica_ports:
            raise ConfigurationError(f"address book has no endpoint for {replica_id}")
        return (self.host, self.replica_ports[key])

    def coordinator_endpoint(self) -> Endpoint:
        return (self.host, self.coordinator_port)

    def endpoint_map(self, config: SystemConfig) -> dict[ReplicaId, Endpoint]:
        """Address map handed to every ``SocketTransport`` of the deployment."""
        return {
            ReplicaId(shard=shard.shard_id, index=index): self.replica_endpoint(
                ReplicaId(shard=shard.shard_id, index=index)
            )
            for shard in config.shards
            for index in range(shard.num_replicas)
        }

    def write(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(
                {
                    "host": self.host,
                    "coordinator_port": self.coordinator_port,
                    "replica_ports": self.replica_ports,
                },
                indent=2,
            )
        )

    @classmethod
    def read(cls, path: str | Path) -> "AddressBook":
        data = json.loads(Path(path).read_text())
        return cls(
            host=data["host"],
            coordinator_port=data["coordinator_port"],
            replica_ports=dict(data["replica_ports"]),
        )


def allocate_loopback_port(host: str = "127.0.0.1") -> int:
    """Bind-and-release an ephemeral port.

    There is a small window between release and the child process re-binding
    it, but on a loopback CI host ephemeral ports are plentiful and the
    launcher fails loudly (the child exits, the ping barrier times out) in
    the unlikely collision case.
    """
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def build_address_book(config: SystemConfig, host: str = "127.0.0.1") -> AddressBook:
    ports = {
        AddressBook._key(ReplicaId(shard=shard.shard_id, index=index)): allocate_loopback_port(
            host
        )
        for shard in config.shards
        for index in range(shard.num_replicas)
    }
    return AddressBook(
        host=host, coordinator_port=allocate_loopback_port(host), replica_ports=ports
    )


# ---------------------------------------------------------------------------
# replica process body (``ringbft serve``)
# ---------------------------------------------------------------------------


def _replica_stats_payload(deployment: Deployment, replica_id: ReplicaId) -> dict:
    """Everything the coordinator aggregates, as codec-encodable plain data."""
    replica = deployment.replicas[replica_id]
    transport = deployment.backend.transport
    ledger_blocks = [
        [block.sequence, list(block.txn_ids), block.block_hash().hex()]
        for block in replica.ledger.blocks()[1:]
    ]
    return {
        "replica": str(replica_id),
        "shard": replica_id.shard,
        "index": replica_id.index,
        "view": replica.view,
        "executed_txns": replica.executed_txn_count,
        "committed_batches": replica.committed_batch_count,
        "auth_verifications": replica.auth_verifications,
        "auth_rejections": replica.auth_rejections,
        "auth_tags_created": replica.auth_tags_created,
        "sent_count": dict(replica.stats.sent_count),
        "sent_bytes": dict(replica.stats.sent_bytes),
        "dropped_requests": dict(replica.stats.dropped_requests),
        "ledger_blocks": ledger_blocks,
        "transport": transport.stats.snapshot(),
    }


def serve_replica(
    *,
    shard: int,
    index: int,
    address_book: AddressBook,
    config: SystemConfig,
    replica_class=None,
    batch_size: int = 1,
    seed: int = 2022,
    max_runtime: float = 600.0,
    geo: str | None = None,
) -> int:
    """Host one replica over TCP until the coordinator says shutdown.

    ``geo`` names the deployment's geo profile: the process emulates the WAN
    delay of every *outbound* link it owns (the far ends do the same in
    their processes, so each direction is delayed exactly once).

    Returns a process exit code: 0 after an orderly shutdown, 1 when
    ``max_runtime`` elapsed without one (an abandoned process must not
    outlive its deployment).
    """
    from repro.core.replica import RingBftReplica

    replica_id = ReplicaId(shard=shard, index=index)
    backend = SocketBackend(
        listen=address_book.replica_endpoint(replica_id),
        address_map=address_book.endpoint_map(config),
        default_endpoint=address_book.coordinator_endpoint(),
        seed=seed,
        netem=netem_policy_for(geo),
    )
    deployment = Deployment.build(
        config,
        backend=backend,
        replica_class=replica_class or RingBftReplica,
        local_replicas={replica_id},
        num_clients=0,
        batch_size=batch_size,
        seed=seed,
    )
    state = {"stop": False}

    def _control(request: ControlRequest) -> dict:
        if request.op == "ping":
            return {"replica": str(replica_id)}
        if request.op == "stats":
            return _replica_stats_payload(deployment, replica_id)
        if request.op == "shutdown":
            state["stop"] = True
            return {"replica": str(replica_id)}
        raise ConfigurationError(f"unknown control op {request.op!r}")

    backend.transport.control_handler = _control
    try:
        stopped = backend.run_until(lambda: state["stop"], timeout=max_runtime)
        # Let the in-flight shutdown reply drain before tearing the loop down.
        backend.run_for(0.1)
    finally:
        deployment.close()
    return 0 if stopped else 1


# ---------------------------------------------------------------------------
# coordinator (``ringbft deploy-local``)
# ---------------------------------------------------------------------------


@dataclass
class DeployLocalResult:
    """Outcome of one multi-process deployment run."""

    result: RunResult
    #: Aggregated wire/auth totals across every process (coordinator included).
    aggregate: dict
    #: Raw per-replica stats payloads, as scraped over the control plane.
    per_replica: list[dict] = field(default_factory=list)
    #: Per shard: the commit order (txn ids) of the shard's longest ledger.
    shard_commits: dict[int, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            self.result.all_completed
            and bool(self.result.ledgers_consistent)
            and self.aggregate.get("auth_rejections", 0) == 0
        )

    def report(self) -> dict:
        """JSON-serialisable report (the CI artifact)."""
        return {
            "result": self.result.as_row(),
            "p50_latency_s": round(self.result.p50_latency, 4),
            "p99_latency_s": round(self.result.p99_latency, 4),
            "aggregate": self.aggregate,
            "shard_commits": {str(s): txns for s, txns in self.shard_commits.items()},
            "per_replica": self.per_replica,
            "ok": self.ok,
        }


def _spawn_replica_process(
    shard: int,
    index: int,
    address_file: str,
    flags: dict,
    log_dir: Path,
) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--shard",
        str(shard),
        "--index",
        str(index),
        "--address-file",
        address_file,
    ]
    for name, value in flags.items():
        command.extend([f"--{name}", str(value)])
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    log_path = log_dir / f"replica-{shard}-{index}.log"
    # The child inherits its own copy of the descriptor; close ours so a
    # long-lived coordinator process does not accumulate one fd per replica.
    with open(log_path, "w") as log_file:
        return subprocess.Popen(command, env=env, stdout=log_file, stderr=subprocess.STDOUT)


def _ledger_consistency(per_replica: list[dict]) -> tuple[bool, dict[int, list[str]]]:
    """Cross-process non-divergence check on the scraped ledger evidence.

    Replicas of one shard must agree on the common prefix of their block-hash
    chains (laggards may be behind, as in the single-process check).  Returns
    the verdict and, per shard, the commit order of the longest chain.
    """
    by_shard: dict[int, list[list]] = {}
    for stats in per_replica:
        by_shard.setdefault(stats["shard"], []).append(stats["ledger_blocks"])
    consistent = True
    commits: dict[int, list[str]] = {}
    for shard, chains in by_shard.items():
        for a in chains:
            for b in chains:
                prefix = min(len(a), len(b))
                if [blk[2] for blk in a[:prefix]] != [blk[2] for blk in b[:prefix]]:
                    consistent = False
        longest = max(chains, key=len, default=[])
        commits[shard] = [txn for block in longest for txn in block[1]]
    return consistent, commits


def deploy_local(
    *,
    shards: int = 2,
    replicas_per_shard: int = 4,
    transactions: int = 24,
    num_clients: int = 2,
    cross_shard: float = 0.3,
    num_records: int = 1_000,
    checkpoint_interval: int = 100,
    batch_size: int = 1,
    seed: int = 2022,
    timeout: float = 120.0,
    host: str = "127.0.0.1",
    keep_logs_on_failure: bool = True,
    geo: str | None = None,
) -> DeployLocalResult:
    """Run a full deployment -- one process per replica -- on loopback TCP.

    ``geo`` selects a :mod:`repro.netem` profile: every process (replicas
    and the coordinator alike) emulates the region-to-region one-way delay
    of its outbound links, so the loopback fleet reproduces genuine WAN
    latency structure.

    Blocks until the workload completes (or ``timeout`` expires), then
    scrapes and aggregates every process's metrics and shuts the fleet down.
    """
    config = build_system_config(
        shards=shards,
        replicas_per_shard=replicas_per_shard,
        num_records=num_records,
        cross_shard=cross_shard,
        checkpoint_interval=checkpoint_interval,
        seed=seed,
        num_clients=num_clients,
        geo=geo,
    )
    book = build_address_book(config, host=host)
    workdir = Path(tempfile.mkdtemp(prefix="ringbft-deploy-"))
    address_file = workdir / "addresses.json"
    book.write(address_file)
    serve_flags = {
        "shards": shards,
        "replicas-per-shard": replicas_per_shard,
        "num-records": num_records,
        "cross-shard": cross_shard,
        "checkpoint-interval": checkpoint_interval,
        "batch-size": batch_size,
        "seed": seed,
        # Replicas never consume num_clients, but every process must rebuild
        # the byte-identical SystemConfig -- pass every config-shaping flag.
        "num-clients": num_clients,
    }
    if geo:
        serve_flags["geo"] = geo

    processes: dict[ReplicaId, subprocess.Popen] = {}
    backend = SocketBackend(
        listen=book.coordinator_endpoint(),
        address_map=book.endpoint_map(config),
        seed=seed,
        netem=netem_policy_for(geo),
    )
    deployment = Deployment.build(
        config,
        backend=backend,
        local_replicas=set(),
        num_clients=num_clients,
        batch_size=batch_size,
        seed=seed,
    )
    failed = False
    try:
        for shard_cfg in config.shards:
            for index in range(shard_cfg.num_replicas):
                processes[ReplicaId(shard=shard_cfg.shard_id, index=index)] = (
                    _spawn_replica_process(
                        shard_cfg.shard_id, index, str(address_file), serve_flags, workdir
                    )
                )

        _await_ready(backend, book, processes)

        workload = build_workload(config, list(deployment.clients), transactions, seed)
        local_result = deployment.run_workload(
            workload, timeout=timeout, check_consistency=False
        )

        per_replica = [
            _control_call(backend, book.replica_endpoint(rid), "stats") for rid in processes
        ]
        consistent, shard_commits = _ledger_consistency(per_replica)
        aggregate = _aggregate(per_replica, backend)
        aggregate["geo"] = geo or "none"
        # Mirror DeployLocalResult.ok (the CLI/CI failure gate) so the
        # replica logs survive in every mode the gate can fail on --
        # including completed-but-auth-rejecting runs.
        failed = not (
            local_result.completed == local_result.submitted
            and consistent
            and aggregate["auth_rejections"] == 0
        )
        result = RunResult(
            backend="socket",
            submitted=local_result.submitted,
            completed=local_result.completed,
            duration_s=local_result.duration_s,
            wall_clock_s=local_result.wall_clock_s,
            latencies=local_result.latencies,
            message_counts=aggregate["message_counts"],
            total_messages=sum(aggregate["message_counts"].values()),
            ledgers_consistent=consistent,
            cache_stats=local_result.cache_stats,
        )
        return DeployLocalResult(
            result=result,
            aggregate=aggregate,
            per_replica=per_replica,
            shard_commits=shard_commits,
        )
    except BaseException:
        failed = True
        raise
    finally:
        _shutdown_fleet(backend, book, processes)
        deployment.close()
        if failed and keep_logs_on_failure:
            print(f"[deploy-local] replica logs kept under {workdir}", file=sys.stderr)
        else:
            shutil.rmtree(workdir, ignore_errors=True)


def _control_call(
    backend: SocketBackend, endpoint: Endpoint, op: str, data: dict | None = None
) -> dict:
    reply = backend.run_coroutine(
        control_roundtrip(
            endpoint[0],
            endpoint[1],
            ControlRequest(op=op, data=data or {}),
            timeout=CONTROL_CALL_TIMEOUT_S,
        )
    )
    if not reply.ok:
        raise NetworkError(
            f"control op {op!r} failed on {endpoint[0]}:{endpoint[1]}: {reply.data}"
        )
    return reply.data


def _await_ready(
    backend: SocketBackend,
    book: AddressBook,
    processes: dict[ReplicaId, subprocess.Popen],
) -> None:
    """Ping barrier: every replica process must answer before traffic flows."""
    deadline = _time.monotonic() + READY_TIMEOUT_S
    for replica_id, process in processes.items():
        endpoint = book.replica_endpoint(replica_id)
        while True:
            exit_code = process.poll()
            if exit_code is not None:
                raise NetworkError(
                    f"replica process {replica_id} exited with {exit_code} before ready"
                )
            try:
                _control_call(backend, endpoint, "ping")
                break
            # asyncio.TimeoutError is a distinct class from the builtin
            # TimeoutError before 3.11; a replica that accepted the connect
            # (OS backlog) but is not driving its loop yet times out with it.
            # A replica dying mid-handshake surfaces as MalformedMessageError.
            except (
                ConnectionError,
                OSError,
                TimeoutError,
                _asyncio.TimeoutError,
                NetworkError,
                MalformedMessageError,
            ):
                if _time.monotonic() >= deadline:
                    raise NetworkError(
                        f"replica {replica_id} at {endpoint} never became ready"
                    ) from None
                _time.sleep(0.1)


def _aggregate(per_replica: list[dict], backend: SocketBackend) -> dict:
    message_counts: dict[str, int] = {}
    message_bytes: dict[str, int] = {}
    totals = {
        "auth_verifications": 0,
        "auth_rejections": 0,
        "auth_tags_created": 0,
        "executed_txns": 0,
        "committed_batches": 0,
    }
    wire = {"frames_sent": 0, "bytes_sent": 0, "frames_received": 0, "bytes_received": 0}
    for stats in per_replica:
        for name, count in stats["sent_count"].items():
            message_counts[name] = message_counts.get(name, 0) + count
        for name, nbytes in stats["sent_bytes"].items():
            message_bytes[name] = message_bytes.get(name, 0) + nbytes
        for key in totals:
            totals[key] += stats[key]
        for key in wire:
            wire[key] += stats["transport"][key]
    coordinator = backend.transport.stats.snapshot()
    for key in wire:
        wire[key] += coordinator[key]
    return {
        "message_counts": message_counts,
        "message_bytes": message_bytes,
        "bytes_on_wire": wire["bytes_sent"],
        "wire": wire,
        "coordinator_transport": coordinator,
        "processes": len(per_replica) + 1,
        **totals,
    }


def _shutdown_fleet(
    backend: SocketBackend,
    book: AddressBook,
    processes: dict[ReplicaId, subprocess.Popen],
) -> None:
    for replica_id, process in processes.items():
        if process.poll() is not None:
            continue
        try:
            _control_call(backend, book.replica_endpoint(replica_id), "shutdown")
        except Exception:  # noqa: BLE001 - fall through to terminate
            pass
    deadline = _time.monotonic() + 10.0
    for process in processes.values():
        remaining = max(0.1, deadline - _time.monotonic())
        try:
            process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                process.kill()
                process.wait()
