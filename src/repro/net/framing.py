"""Length-prefixed frame protocol over the canonical binary codec.

A TCP stream is just bytes; frames restore message boundaries.  Every frame
is::

    +-------+---------+------------+------------------------+
    | magic | version | length u32 | body (``length`` bytes) |
    | 2 B   | 1 B     | 4 B BE     | canonical encoding      |
    +-------+---------+------------+------------------------+

The body is one :func:`repro.common.codec.encode_canonical` value (see
:mod:`repro.net.wire` for the envelope shapes).  The header carries:

* **magic** (``RB``) -- rejects streams that are not speaking this protocol
  at all (port scanners, misrouted HTTP) on the first two bytes;
* **version** -- a peer from an incompatible build fails fast instead of
  producing confusing codec errors deep in a body;
* **length** -- bounded by ``max_frame`` so a hostile 4 GiB length prefix
  cannot balloon the receive buffer; the guard fires before any body bytes
  are buffered.

:class:`FrameDecoder` is incremental: feed it whatever ``read()`` returned --
half a header, ten frames and a partial eleventh -- and it yields exactly the
completed frame bodies, keeping the tail buffered.  Every malformed input
raises :class:`~repro.errors.MalformedMessageError`; the transport responds by
dropping the connection, never by crashing the peer.
"""

from __future__ import annotations

import struct

from repro.errors import MalformedMessageError

#: First bytes of every frame; anything else on the stream is garbage.
PROTOCOL_MAGIC = b"RB"
#: Bumped whenever the envelope shapes or the codec change incompatibly.
PROTOCOL_VERSION = 1
#: Default ceiling on one frame's body.  Generous -- a full state-transfer
#: snapshot fits -- while still rejecting absurd length prefixes outright.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">2sBI")
FRAME_HEADER_SIZE = _HEADER.size


def encode_frame(body: bytes, *, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Wrap one canonical-encoding body into a wire frame."""
    if not body:
        raise MalformedMessageError("cannot frame an empty body")
    if len(body) > max_frame:
        raise MalformedMessageError(
            f"frame body of {len(body)} bytes exceeds the {max_frame}-byte limit"
        )
    return _HEADER.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION, len(body)) + body


class FrameDecoder:
    """Incremental frame reassembly for one TCP stream.

    ``feed`` accepts arbitrary chunks (partial reads, coalesced writes) and
    returns the bodies of every frame completed so far.  The decoder validates
    the header as soon as its seven bytes are available, so oversized or
    alien traffic is rejected without buffering a body.  After any
    :class:`~repro.errors.MalformedMessageError` the decoder is poisoned --
    stream synchronisation is lost for good, the only safe reaction is to
    drop the connection.
    """

    def __init__(self, *, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self._poisoned = False
        #: Running totals, surfaced through the transport's stats.
        self.frames_decoded = 0
        self.bytes_consumed = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Buffer ``data`` and return every frame body it completed."""
        if self._poisoned:
            raise MalformedMessageError("frame stream already failed; reconnect")
        self._buffer.extend(data)
        bodies: list[bytes] = []
        while True:
            if len(self._buffer) < FRAME_HEADER_SIZE:
                break
            magic, version, length = _HEADER.unpack_from(self._buffer)
            if magic != PROTOCOL_MAGIC:
                self._poisoned = True
                raise MalformedMessageError(
                    f"bad frame magic {bytes(magic)!r} (expected {PROTOCOL_MAGIC!r})"
                )
            if version != PROTOCOL_VERSION:
                self._poisoned = True
                raise MalformedMessageError(
                    f"unsupported frame protocol version {version} "
                    f"(this build speaks {PROTOCOL_VERSION})"
                )
            if length == 0:
                self._poisoned = True
                raise MalformedMessageError("zero-length frame body")
            if length > self.max_frame:
                self._poisoned = True
                raise MalformedMessageError(
                    f"frame length {length} exceeds the {self.max_frame}-byte limit"
                )
            end = FRAME_HEADER_SIZE + length
            if len(self._buffer) < end:
                break
            bodies.append(bytes(self._buffer[FRAME_HEADER_SIZE:end]))
            del self._buffer[:end]
            self.frames_decoded += 1
            self.bytes_consumed += end
        return bodies
