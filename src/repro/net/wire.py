"""Wire envelopes: what actually travels inside a frame.

Two kinds of payload share the frame protocol:

* **Deliver envelopes** -- a 3-tuple ``(dst, tags, message)`` in canonical
  encoding.  ``dst`` is the destination address (a
  :class:`~repro.common.types.ReplicaId` or a client-id string), ``tags`` is
  the sender's *full* MAC vector (labels -> tag bytes; RingBFT's local relay
  means every receiver may need every tag, not just its own), and ``message``
  is the registered protocol dataclass itself.  Decoding rebuilds the message
  object and re-attaches the tags, so the receiving replica verifies exactly
  as it would in-process -- per-receiver deserialised copies carry the vector
  with them, which is what the in-process design promised a socket transport
  would need.

* **Control messages** -- :class:`ControlRequest`/:class:`ControlReply`,
  the tiny coordinator-to-replica plane (readiness pings, metrics scrapes,
  shutdown) used by the multi-process launcher.  They are ordinary registered
  wire types encoded directly as the frame body.

The multicast fast path mirrors the in-process transports: the expensive
shared suffix (tags + message, i.e. effectively the whole body) is encoded
once per fan-out and only the per-destination address is encoded per copy --
:func:`repro.common.codec.tuple_frame` reassembles bytes identical to a
direct :func:`~repro.common.codec.encode_canonical` of the tuple.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.common import codec
from repro.common.codec import register_wire_type
from repro.common.messages import Message
from repro.common.types import ReplicaId
from repro.errors import MalformedMessageError
from repro.net.framing import FrameDecoder, encode_frame

#: How long the control client waits for a TCP connect + reply by default.
CONTROL_TIMEOUT_S = 10.0


@register_wire_type
@dataclass(frozen=True)
class ControlRequest:
    """Coordinator -> replica-process control message.

    ``op`` is one of the launcher's verbs (``ping`` / ``stats`` /
    ``shutdown``); ``data`` carries op-specific parameters.  Control traffic
    rides the same frame protocol as consensus traffic but never enters the
    protocol dispatch path -- the transport hands it to the process's control
    handler and writes the reply back on the same connection.
    """

    op: str
    data: dict = field(default_factory=dict)


@register_wire_type
@dataclass(frozen=True)
class ControlReply:
    """Replica-process -> coordinator answer to a :class:`ControlRequest`."""

    op: str
    ok: bool = True
    data: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# deliver envelopes
# ---------------------------------------------------------------------------


def _encoded_message(message: Message) -> bytes:
    """Canonical encoding of ``message``, computed at most once per object.

    Mirrors the payload/digest memos in :mod:`repro.common.codec`: the frozen
    dataclass's encoding is immutable, so retransmissions of a reused message
    object (the cached Forward of a retransmission burst, a relayed
    cross-shard message) skip the codec walk entirely.  The MAC tag vector is
    *not* part of this memo -- tags accrue per audience and are encoded per
    envelope.
    """
    cached = message.__dict__.get("_wire_memo")
    if cached is None:
        cached = codec.encode_canonical(message)
        object.__setattr__(message, "_wire_memo", cached)
    return cached


def encode_envelope(dst: Hashable, message: Message) -> bytes:
    """Canonical body of one deliver envelope (unframed)."""
    return codec.tuple_frame(
        (
            codec.encode_canonical(dst),
            codec.encode_canonical(message.auth_tags()),
            _encoded_message(message),
        )
    )


def encode_envelope_multi(dsts, message: Message) -> list[bytes]:
    """Bodies for a fan-out of ``message``: shared suffix encoded once.

    Returns one body per destination, each byte-identical to
    ``encode_envelope(dst, message)``; only the destination address is
    encoded per copy.
    """
    encoded_tags = codec.encode_canonical(message.auth_tags())
    encoded_message = _encoded_message(message)
    return [
        codec.tuple_frame((codec.encode_canonical(dst), encoded_tags, encoded_message))
        for dst in dsts
    ]


def decode_wire_payload(body: bytes) -> Any:
    """Decode one frame body into a control message or a deliver triple.

    Returns a :class:`ControlRequest`/:class:`ControlReply` as-is, or a
    ``(dst, message)`` pair for deliver envelopes -- with the MAC vector
    already re-attached to the rebuilt message object.  Anything else is a
    malformed frame.
    """
    value = codec.decode_canonical(body)
    if isinstance(value, (ControlRequest, ControlReply)):
        return value
    if not (isinstance(value, tuple) and len(value) == 3):
        raise MalformedMessageError(
            f"frame body is neither a control message nor a deliver envelope: "
            f"{type(value).__name__}"
        )
    dst, tags, message = value
    if not isinstance(dst, (str, ReplicaId)):
        # Every address in this stack is a replica id or a client-id string;
        # anything else (say, an unhashable dict) must fail as garbage here,
        # not as a TypeError deep in the transport's routing table.
        raise MalformedMessageError(
            f"deliver envelope carries an invalid destination: {type(dst).__name__}"
        )
    if not isinstance(message, Message):
        raise MalformedMessageError(
            f"deliver envelope carries a non-message payload: {type(message).__name__}"
        )
    if not isinstance(tags, dict):
        raise MalformedMessageError("deliver envelope tag vector is not a mapping")
    for label, tag in tags.items():
        if not isinstance(label, str) or not isinstance(tag, bytes):
            raise MalformedMessageError("deliver envelope tag vector is malformed")
        message.attach_auth(label, tag)
    return dst, message


# ---------------------------------------------------------------------------
# control-plane client
# ---------------------------------------------------------------------------


async def control_roundtrip(
    host: str,
    port: int,
    request: ControlRequest,
    *,
    timeout: float = CONTROL_TIMEOUT_S,
) -> ControlReply:
    """Open a connection, send one control request, await its reply.

    One short-lived connection per call keeps the control plane trivially
    robust (no multiplexing, no reply routing); the launcher only issues a
    handful of these per deployment.
    """

    async def _exchange() -> ControlReply:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(encode_frame(encode_envelope_control(request)))
            await writer.drain()
            decoder = FrameDecoder()
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    raise MalformedMessageError(
                        f"control connection to {host}:{port} closed before a reply"
                    )
                bodies = decoder.feed(chunk)
                if bodies:
                    reply = decode_wire_payload(bodies[0])
                    if not isinstance(reply, ControlReply):
                        raise MalformedMessageError(
                            f"expected a ControlReply, got {type(reply).__name__}"
                        )
                    return reply
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    return await asyncio.wait_for(_exchange(), timeout)


def encode_envelope_control(message: ControlRequest | ControlReply) -> bytes:
    """Canonical body of one control message (unframed)."""
    return codec.encode_canonical(message)
