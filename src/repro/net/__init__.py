"""Real TCP networking: framed wire protocol, socket transport, launcher.

This package turns the canonical binary codec into a genuine networked
execution path:

* :mod:`repro.net.framing` -- the length-prefixed frame protocol (magic,
  version, max-frame guard, incremental decode tolerant of partial reads);
* :mod:`repro.net.wire` -- message envelopes and the control-plane
  request/reply pair carried inside frames;
* :mod:`repro.net.transport` -- the asyncio TCP :class:`SocketTransport`
  implementing the same :class:`~repro.engine.protocols.Transport` surface as
  the simulator's network, with per-peer reconnect/backoff and the multicast
  encode-once fast path;
* :mod:`repro.net.launcher` -- the multi-process deployment harness behind
  ``ringbft serve`` / ``ringbft deploy-local``.
"""

from repro.net.framing import (
    FRAME_HEADER_SIZE,
    MAX_FRAME_BYTES,
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
)
from repro.net.transport import SocketStats, SocketTransport
from repro.net.wire import (
    ControlReply,
    ControlRequest,
    decode_wire_payload,
    encode_envelope,
    encode_envelope_multi,
)

__all__ = [
    "ControlReply",
    "ControlRequest",
    "FRAME_HEADER_SIZE",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "SocketStats",
    "SocketTransport",
    "decode_wire_payload",
    "encode_envelope",
    "encode_envelope_multi",
    "encode_frame",
]
