"""Asyncio TCP transport: the third implementation of the ``Transport`` protocol.

``SocketTransport`` speaks real sockets while presenting the exact surface
the protocol classes already use (``register`` / ``send`` / ``multicast`` /
``node`` / ``known_addresses`` / ``simulator``), so replicas and clients run
over TCP unchanged.  Key properties:

* **Framed canonical wire format** -- every message crosses the network as a
  :mod:`repro.net.framing` frame holding a deliver envelope (destination,
  full MAC vector, message) in canonical encoding; receivers rebuild the
  message object and verify MACs exactly as in-process receivers do.
* **Per-peer connection management** -- one outgoing connection per remote
  endpoint, dialled lazily, re-dialled with exponential backoff after
  failures; frames queue (bounded) while a peer is unreachable, and losses
  are absorbed by the protocol's own retransmission timers, exactly like a
  lossy network.
* **Multicast fast path** -- mirroring the in-process transports: one
  fan-out encodes the tag vector and the message once and writes per-peer
  frames that differ only in the destination item.
* **Fail-stop on garbage** -- a malformed frame or envelope poisons only the
  connection that carried it; the transport counts it, drops the connection,
  and keeps serving every other peer.
* **Link emulation** -- the transport consults the same
  :class:`~repro.netem.LinkEmulator` as the in-process backends at send time:
  injected faults suppress the outbound copy, and under a geo policy every
  frame is held for the emulated one-way WAN delay (scheduled on the
  protocol scheduler) before it is queued for its peer, so ``--geo`` runs on
  loopback TCP reproduce real region-to-region latency.
* **Per-peer write coalescing** -- frames that are ready together leave in
  one ``write()``/``drain()`` per peer per loop tick instead of one syscall
  each; under emulated WAN delay whole protocol rounds release in bursts,
  which this collapses into single writes (``SocketStats.writes`` vs
  ``frames_sent`` shows the batching factor).

Addresses are the same values the rest of the stack uses
(:class:`~repro.common.types.ReplicaId` objects, client-id strings).  The
``address_map`` pins replicas to TCP endpoints; addresses missing from the
map (clients, which are created dynamically) route to ``default_endpoint`` --
in a launcher deployment, the coordinator process that hosts them.
"""

from __future__ import annotations

import asyncio
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.errors import ConfigurationError, MalformedMessageError, NetworkError
from repro.net.framing import MAX_FRAME_BYTES, FrameDecoder, encode_frame
from repro.net.wire import (
    ControlReply,
    ControlRequest,
    decode_wire_payload,
    encode_envelope,
    encode_envelope_control,
    encode_envelope_multi,
)
from repro.netem.conditions import NetworkConditions
from repro.netem.emulator import LinkEmulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.messages import Message
    from repro.rt.transport import RealTimeScheduler
    from repro.sim.node import Node

Endpoint = tuple[str, int]

#: First reconnect delay after a failed dial; doubles up to the ceiling.
RECONNECT_INITIAL_S = 0.05
RECONNECT_MAX_S = 1.0
#: Outbound frames buffered per peer while it is unreachable.
PEER_QUEUE_FRAMES = 4096
#: Write attempts per frame before it is dropped (the protocol's timers
#: retransmit anything that mattered).
FRAME_WRITE_ATTEMPTS = 2
#: Write-coalescing bounds: frames already queued for one peer are gathered
#: into a single ``write()`` up to these limits, so a burst released by an
#: emulated-WAN delay or a multicast fan-out costs one syscall, not one per
#: frame.  The byte bound keeps a single gathered write well under typical
#: kernel socket buffers.
COALESCE_MAX_FRAMES = 128
COALESCE_MAX_BYTES = 256 * 1024


@dataclass
class SocketStats:
    """Wire-level counters for one transport (one OS process)."""

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: ``write()``/``drain()`` round trips; ``frames_sent / writes`` is the
    #: per-peer coalescing factor.
    writes: int = 0
    #: Frames that rode an earlier frame's write instead of their own.
    coalesced_frames: int = 0
    #: Frames whose enqueue was deferred by an emulated link delay.
    netem_delayed: int = 0
    #: Messages handed to local nodes (both wire deliveries and the
    #: zero-copy local path).
    delivered: int = 0
    #: Fan-outs served by the encode-once multicast fast path.
    multicasts: int = 0
    #: Frames or envelopes rejected as garbage (connection dropped each time).
    malformed_frames: int = 0
    #: Outbound frames abandoned (peer queue full or write attempts exhausted).
    dropped_frames: int = 0
    #: Messages suppressed by injected fault conditions (drops, blocked links).
    faults_injected: int = 0
    #: Exceptions raised by a local node's handler for a delivered message.
    delivery_errors: int = 0
    #: Wire deliveries addressed to a node this process does not host.
    unroutable: int = 0
    connects: int = 0
    connect_failures: int = 0
    control_requests: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "writes": self.writes,
            "coalesced_frames": self.coalesced_frames,
            "netem_delayed": self.netem_delayed,
            "delivered": self.delivered,
            "multicasts": self.multicasts,
            "malformed_frames": self.malformed_frames,
            "dropped_frames": self.dropped_frames,
            "faults_injected": self.faults_injected,
            "delivery_errors": self.delivery_errors,
            "unroutable": self.unroutable,
            "connects": self.connects,
            "connect_failures": self.connect_failures,
            "control_requests": self.control_requests,
        }


class _PeerLink:
    """One outgoing connection: bounded frame queue + reconnecting writer task."""

    def __init__(
        self, endpoint: Endpoint, loop: asyncio.AbstractEventLoop, stats: SocketStats
    ) -> None:
        self.endpoint = endpoint
        self._loop = loop
        self._stats = stats
        self._queue: asyncio.Queue[bytes] = asyncio.Queue(maxsize=PEER_QUEUE_FRAMES)
        self._writer: asyncio.StreamWriter | None = None
        self._task: asyncio.Task | None = None
        self._backoff = RECONNECT_INITIAL_S
        self._closed = False

    def enqueue(self, frame: bytes) -> None:
        """Queue a frame for delivery; drops (and counts) when the peer is so
        far behind that its buffer is full -- network semantics, not an error."""
        if self._closed:
            return
        try:
            self._queue.put_nowait(frame)
        except asyncio.QueueFull:
            self._stats.dropped_frames += 1
            return
        self._ensure_task()

    def _ensure_task(self) -> None:
        if self._task is not None or self._closed:
            return
        if self._loop.is_running():
            self._task = self._loop.create_task(self._run())
        else:
            # Called from synchronous setup code before the backend starts
            # driving the loop; arm the task creation for the first tick.
            self._loop.call_soon(self._ensure_task)

    async def _run(self) -> None:
        while not self._closed:
            frame = await self._queue.get()
            # Coalesce: everything already queued for this peer rides the
            # same write (frames are self-delimiting, so concatenation is
            # exactly what the peer's FrameDecoder expects).
            frames = [frame]
            gathered = len(frame)
            while len(frames) < COALESCE_MAX_FRAMES and gathered < COALESCE_MAX_BYTES:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                frames.append(extra)
                gathered += len(extra)
            payload = frame if len(frames) == 1 else b"".join(frames)
            for attempt in range(FRAME_WRITE_ATTEMPTS):
                writer = await self._connect()
                if writer is None:  # link closed while backing off
                    return
                try:
                    writer.write(payload)
                    await writer.drain()
                    self._stats.frames_sent += len(frames)
                    self._stats.bytes_sent += gathered
                    self._stats.writes += 1
                    self._stats.coalesced_frames += len(frames) - 1
                    break
                except (ConnectionError, OSError):
                    self._disconnect()
            else:
                self._stats.dropped_frames += len(frames)

    async def _connect(self) -> asyncio.StreamWriter | None:
        """Dial the peer, backing off exponentially until it answers."""
        while self._writer is None and not self._closed:
            try:
                _, writer = await asyncio.open_connection(*self.endpoint)
                self._writer = writer
                self._backoff = RECONNECT_INITIAL_S
                self._stats.connects += 1
            except (ConnectionError, OSError):
                self._stats.connect_failures += 1
                await asyncio.sleep(self._backoff)
                self._backoff = min(self._backoff * 2, RECONNECT_MAX_S)
        return self._writer

    def _disconnect(self) -> None:
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()

    async def aclose(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
                pass
            self._task = None
        writer, self._writer = self._writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass


class SocketTransport:
    """Message fabric over real TCP, API-compatible with ``sim.network.Network``.

    ``wire_loopback=True`` (the default) routes even locally-hosted
    destinations through the full encode -> frame -> TCP -> decode -> verify
    path via the transport's own listening socket, so a single-process
    deployment still exercises the real wire; the multi-process launcher
    leaves it on (each process hosts disjoint nodes, so it is moot there) and
    tests can switch it off to get the zero-copy local path.
    """

    def __init__(
        self,
        scheduler: "RealTimeScheduler",
        loop: asyncio.AbstractEventLoop,
        *,
        listen: Endpoint = ("127.0.0.1", 0),
        address_map: dict[Hashable, Endpoint] | None = None,
        default_endpoint: Endpoint | None = None,
        max_frame: int = MAX_FRAME_BYTES,
        wire_loopback: bool = True,
        conditions: NetworkConditions | None = None,
        emulator: LinkEmulator | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._loop = loop
        self._listen = listen
        self._address_map = dict(address_map or {})
        self._default_endpoint = default_endpoint
        self.max_frame = max_frame
        self.wire_loopback = wire_loopback
        #: Consulted at send time exactly like the in-process backends: the
        #: emulator's fault conditions (drops, blocked links, isolation)
        #: suppress the outbound copy, emulated loss drops it, and a geo
        #: policy's one-way delay defers the enqueue -- so fault studies and
        #: WAN scenarios on ``--backend socket`` behave like the simulator's.
        #: Without an explicit emulator the transport gets the no-emulation
        #: engine (faults honoured, zero delay), preserving plain loopback.
        if emulator is None:
            emulator = LinkEmulator(None, conditions, seed=getattr(scheduler, "seed", 2022))
        elif conditions is not None:
            # Mirror the in-process transports: the emulator owns its
            # conditions, so a standalone argument must not coexist with it.
            raise ConfigurationError("pass either an emulator or conditions, not both")
        self.emulator = emulator
        self.stats = SocketStats()
        self._nodes: dict[Hashable, "Node"] = {}
        self._links: dict[Endpoint, _PeerLink] = {}
        self._server: asyncio.base_events.Server | None = None
        self._bound: Endpoint | None = None
        self._closing = False
        self._reader_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        #: Callback invoked with a :class:`ControlRequest`, returning the
        #: reply payload dict; installed by the serve runtime.
        self.control_handler = None

    # ------------------------------------------------------------------
    # Transport protocol surface
    # ------------------------------------------------------------------

    @property
    def simulator(self) -> "RealTimeScheduler":
        return self._scheduler

    @property
    def conditions(self) -> NetworkConditions:
        return self.emulator.conditions

    def register(self, node: "Node") -> None:
        if node.address in self._nodes:
            raise NetworkError(f"address {node.address!r} is already registered")
        self._nodes[node.address] = node
        self.emulator.assign_region(node.address, node.region)

    def node(self, address: Hashable) -> "Node":
        if address not in self._nodes:
            raise NetworkError(f"node {address!r} is not hosted by this process")
        return self._nodes[address]

    def known_addresses(self) -> tuple[Hashable, ...]:
        return tuple(self._nodes) + tuple(
            a for a in self._address_map if a not in self._nodes
        )

    def _decide(self, src: Hashable, dst: Hashable, size: int) -> tuple[bool, float]:
        """Send-time link decision, mirroring the in-process backends.

        Suppressed sends (injected faults and emulated loss alike) are
        tallied in ``faults_injected``; delivered sends carry the emulated
        one-way delay forward.
        """
        deliver, delay = self.emulator.decide(src, dst, size)
        if not deliver:
            self.stats.faults_injected += 1
        return deliver, delay

    def send(self, src: Hashable, dst: Hashable, message: "Message") -> None:
        deliver, delay = self._decide(src, dst, message.wire_size())
        if not deliver:
            return
        node = self._nodes.get(dst)
        if node is not None and not self.wire_loopback:
            self._deliver_local(node, message, delay)
            return
        self._send_frame(
            dst, encode_frame(encode_envelope(dst, message), max_frame=self.max_frame), delay
        )

    def multicast(self, src: Hashable, dsts, message: "Message") -> None:
        """Fan-out fast path: tag vector and message encoded once for all
        wire copies (per-destination frames differ only in the address item)."""
        if not dsts:
            return
        self.stats.multicasts += 1
        size = message.wire_size()
        wire_dsts: list = []
        wire_delays: list[float] = []
        for dst in dsts:
            deliver, delay = self._decide(src, dst, size)
            if not deliver:
                continue
            node = self._nodes.get(dst)
            if node is not None and not self.wire_loopback:
                self._deliver_local(node, message, delay)
            else:
                wire_dsts.append(dst)
                wire_delays.append(delay)
        if not wire_dsts:
            return
        for dst, delay, body in zip(
            wire_dsts, wire_delays, encode_envelope_multi(wire_dsts, message)
        ):
            self._send_frame(dst, encode_frame(body, max_frame=self.max_frame), delay)

    # ------------------------------------------------------------------
    # outbound path
    # ------------------------------------------------------------------

    def _deliver_local(self, node: "Node", message: "Message", delay: float = 0.0) -> None:
        if delay > 0.0:
            self._scheduler.schedule(delay, self._deliver_local_now, node, message)
        else:
            self._loop.call_soon(self._deliver_local_now, node, message)

    def _deliver_local_now(self, node: "Node", message: "Message") -> None:
        if self._closing:
            # Same teardown rule as the wire path: a netem-held local
            # delivery whose timer fires mid-aclose must not reach a node of
            # a deployment being dismantled.
            return
        self.stats.delivered += 1
        node.deliver(message)

    def _send_frame(self, dst: Hashable, frame: bytes, delay: float) -> None:
        """Queue a frame for its peer, after the emulated link delay if any.

        The hold happens send-side on the protocol scheduler (honouring the
        backend's ``time_scale``), so the bytes hit the TCP socket only when
        the emulated propagation time has passed -- the receiving process
        measures genuine one-way WAN latency on its loopback connection.

        The peer link is resolved *before* the hold: an unroutable
        destination raises :class:`NetworkError` at send time (a
        misconfigured address book must fail loudly in the caller, not as an
        unhandled exception inside a timer callback), and a delayed frame
        firing after :meth:`aclose` hits its already-closed link instead of
        recreating one.
        """
        link = self._link_for(dst)
        if delay > 0.0:
            self.stats.netem_delayed += 1
            self._scheduler.schedule(delay, self._enqueue_on_link, link, frame)
        else:
            self._enqueue_on_link(link, frame)

    def _endpoint_for(self, dst: Hashable) -> Endpoint:
        endpoint = self._address_map.get(dst)
        if endpoint is not None:
            return endpoint
        if dst in self._nodes:
            # wire_loopback: our own listening socket is the peer.
            if self._bound is None:
                raise NetworkError(
                    "wire loopback requires a started transport (call start() first)"
                )
            return self._bound
        if self._default_endpoint is not None:
            return self._default_endpoint
        raise NetworkError(f"no TCP endpoint known for destination {dst!r}")

    def _link_for(self, dst: Hashable) -> _PeerLink:
        endpoint = self._endpoint_for(dst)
        link = self._links.get(endpoint)
        if link is None:
            link = _PeerLink(endpoint, self._loop, self.stats)
            self._links[endpoint] = link
        return link

    def _enqueue_on_link(self, link: _PeerLink, frame: bytes) -> None:
        if self._closing:
            # A delayed frame outliving its transport is network semantics
            # (the deployment is gone); count it like any abandoned frame.
            self.stats.dropped_frames += 1
            return
        link.enqueue(frame)

    # ------------------------------------------------------------------
    # inbound path
    # ------------------------------------------------------------------

    async def start(self) -> Endpoint:
        """Bind the listening socket; returns the actual (host, port)."""
        if self._server is not None:
            return self._bound  # type: ignore[return-value]
        self._server = await asyncio.start_server(
            self._on_connection, self._listen[0], self._listen[1]
        )
        sockname = self._server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        return self._bound

    @property
    def bound_endpoint(self) -> Endpoint | None:
        return self._bound

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        self._conn_writers.add(writer)
        decoder = FrameDecoder(max_frame=self.max_frame)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                self.stats.bytes_received += len(chunk)
                try:
                    bodies = decoder.feed(chunk)
                    for body in bodies:
                        await self._dispatch(decode_wire_payload(body), writer)
                except MalformedMessageError:
                    # Garbage on the stream: drop this connection, keep the
                    # process (and every other connection) alive.
                    self.stats.malformed_frames += 1
                    break
        except (ConnectionError, OSError):  # pragma: no cover - peer went away
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _dispatch(self, payload, writer: asyncio.StreamWriter) -> None:
        if isinstance(payload, ControlRequest):
            self.stats.control_requests += 1
            reply = self._handle_control(payload)
            writer.write(encode_frame(encode_envelope_control(reply), max_frame=self.max_frame))
            await writer.drain()
            return
        if isinstance(payload, ControlReply):  # stray reply: nothing to route
            return
        dst, message = payload
        self.stats.frames_received += 1
        node = self._nodes.get(dst)
        if node is None:
            self.stats.unroutable += 1
            return
        self.stats.delivered += 1
        try:
            node.deliver(message)
        except Exception:  # noqa: BLE001 - a handler bug must not look like garbage
            # On the in-process backends a handler exception crashes the run
            # with a traceback; here it would otherwise die inside a reader
            # task ("exception was never retrieved") while the sender's
            # retransmit timer re-delivers the same poison message forever.
            # Surface it loudly (the launcher captures each process's stderr
            # in its log) and keep the connection -- the frame itself was fine.
            self.stats.delivery_errors += 1
            traceback.print_exc()

    def _handle_control(self, request: ControlRequest) -> ControlReply:
        handler = self.control_handler
        if handler is None:
            return ControlReply(op=request.op, ok=False, data={"error": "no control handler"})
        try:
            data = handler(request)
        except Exception as exc:  # noqa: BLE001 - control plane must answer
            return ControlReply(op=request.op, ok=False, data={"error": str(exc)})
        return ControlReply(op=request.op, ok=True, data=data or {})

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def aclose(self) -> None:
        # Flag first: netem-delayed frames whose timers fire while the awaits
        # below drive the loop must not enqueue onto (or recreate) links.
        self._closing = True
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._server = None
        # Close established connections instead of cancelling their reader
        # tasks: the readers observe EOF and exit on their own (cancelling a
        # start_server handler task trips asyncio's done-callback teardown).
        for writer in list(self._conn_writers):
            writer.close()
        if self._reader_tasks:
            await asyncio.wait(list(self._reader_tasks), timeout=1.0)
        for task in list(self._reader_tasks):  # pragma: no cover - stragglers
            task.cancel()
        for link in self._links.values():
            await link.aclose()
        self._links.clear()
