"""Ring topology and ring-order routing (Section 3, *Ring Order*).

Shards are logically arranged in a ring.  For a cross-shard transaction the
*route* is the subsequence of the ring restricted to the involved shards; the
first shard on the route is the *initiator*.  The default policy orders
shards by ascending identifier, but RingBFT explicitly allows any fixed
permutation, which :class:`RingTopology` supports.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError


class RingTopology:
    """A fixed permutation of shard identifiers defining the ring order."""

    def __init__(self, order: Sequence[int]) -> None:
        if not order:
            raise ConfigurationError("ring order must contain at least one shard")
        if len(set(order)) != len(order):
            raise ConfigurationError(f"ring order contains duplicate shards: {order}")
        self._order: tuple[int, ...] = tuple(int(s) for s in order)
        self._position: dict[int, int] = {shard: i for i, shard in enumerate(self._order)}

    @classmethod
    def ascending(cls, shard_ids: Iterable[int]) -> "RingTopology":
        """The paper's default policy: increasing shard identifiers."""
        return cls(sorted(shard_ids))

    @property
    def order(self) -> tuple[int, ...]:
        return self._order

    @property
    def size(self) -> int:
        return len(self._order)

    def __contains__(self, shard: int) -> bool:
        return shard in self._position

    def position(self, shard: int) -> int:
        """Ring position of ``shard`` (0-based)."""
        self._require_member(shard)
        return self._position[shard]

    def _require_member(self, shard: int) -> None:
        if shard not in self._position:
            raise ConfigurationError(f"shard {shard} is not part of the ring {self._order}")

    def _require_involved(self, involved: frozenset[int] | set[int]) -> list[int]:
        missing = [s for s in involved if s not in self._position]
        if missing:
            raise ConfigurationError(f"involved shards {missing} are not part of the ring")
        if not involved:
            raise ConfigurationError("a transaction must involve at least one shard")
        return sorted(involved, key=self._position.__getitem__)

    def route(self, involved: frozenset[int] | set[int]) -> tuple[int, ...]:
        """Involved shards sorted by ring position -- the path one rotation takes."""
        return tuple(self._require_involved(involved))

    def first_in_ring_order(self, involved: frozenset[int] | set[int]) -> int:
        """The initiator shard for a transaction involving ``involved``."""
        return self._require_involved(involved)[0]

    def last_in_ring_order(self, involved: frozenset[int] | set[int]) -> int:
        return self._require_involved(involved)[-1]

    def next_in_ring_order(self, current: int, involved: frozenset[int] | set[int]) -> int:
        """Shard following ``current`` on the route; wraps to the initiator.

        The wrap-around is what closes the first rotation: the last involved
        shard forwards back to the initiator, which learns that every shard
        locked its fragment.
        """
        ordered = self._require_involved(involved)
        if current not in ordered:
            raise ConfigurationError(f"shard {current} is not involved in {sorted(involved)}")
        idx = ordered.index(current)
        return ordered[(idx + 1) % len(ordered)]

    def prev_in_ring_order(self, current: int, involved: frozenset[int] | set[int]) -> int:
        """Shard preceding ``current`` on the route; wraps to the last shard."""
        ordered = self._require_involved(involved)
        if current not in ordered:
            raise ConfigurationError(f"shard {current} is not involved in {sorted(involved)}")
        idx = ordered.index(current)
        return ordered[(idx - 1) % len(ordered)]

    def is_initiator(self, shard: int, involved: frozenset[int] | set[int]) -> bool:
        return self.first_in_ring_order(involved) == shard

    def rotation_length(self, involved: frozenset[int] | set[int]) -> int:
        """Number of shard-to-shard hops in one full rotation over the route."""
        return len(self._require_involved(involved))
