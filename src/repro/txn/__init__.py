"""Transactions, read/write sets, and ring-order topology."""

from repro.txn.transaction import Operation, OpType, Transaction, TransactionBuilder
from repro.txn.ring import RingTopology

__all__ = [
    "Operation",
    "OpType",
    "Transaction",
    "TransactionBuilder",
    "RingTopology",
]
