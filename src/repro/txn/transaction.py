"""Deterministic transactions with declared read/write sets.

RingBFT (like AHL, Sharper, Calvin, and Q-Store) assumes *deterministic*
transactions: the data items a transaction reads and writes are known before
consensus starts (Section 3, *Deterministic Transactions*).  A replica can
therefore decide purely from the transaction envelope which fragment belongs
to its shard, which shards are involved, and whether dependencies on remote
data exist (making the transaction a *complex* cross-shard transaction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common import codec
from repro.common.codec import register_wire_type
from repro.errors import MalformedMessageError


@register_wire_type
class OpType(enum.Enum):
    """The two YCSB operation kinds used in the evaluation (read-modify-write)."""

    READ = "read"
    WRITE = "write"


@register_wire_type
@dataclass(frozen=True)
class Operation:
    """A single read or write of one data item.

    ``shard`` is the owner shard of ``key``.  For writes, ``value`` carries
    the new value; for reads it is ignored.  ``depends_on`` lists keys (in
    *other* shards) whose current value is needed to compute this write --
    the presence of any such dependency makes the enclosing transaction a
    complex cross-shard transaction that needs a second rotation.
    """

    shard: int
    key: str
    op_type: OpType
    value: str = ""
    depends_on: tuple[tuple[int, str], ...] = ()

    def to_wire(self) -> dict:
        return {
            "shard": self.shard,
            "key": self.key,
            "op": self.op_type.value,
            "value": self.value,
            "deps": list(list(d) for d in self.depends_on),
        }

    def packed_bytes(self) -> bytes:
        """Canonical bytes of :meth:`to_wire` via the compiled fixed layout."""
        deps = (
            _EMPTY_DEPS
            if not self.depends_on
            else codec.encode_canonical([list(d) for d in self.depends_on])
        )
        return _OP_LAYOUT(deps, self.key, self.op_type.value, self.shard, self.value)


# Fixed layouts for the envelope hot path (see compile_fixed_dict): keys are
# emitted in canonical (sorted) order, and the encoders accept dynamic values
# in the declared order below.  ``deps``/``operations`` are splice slots fed
# pre-encoded canonical frames.
_OP_LAYOUT = codec.compile_fixed_dict(
    {}, ("deps", "key", "op", "shard", "value"), raw_keys=("deps",)
)
_EMPTY_DEPS = codec.encode_canonical([])
_TXN_LAYOUT = codec.compile_fixed_dict(
    {}, ("client_id", "operations", "txn_id"), raw_keys=("operations",)
)


@register_wire_type
@dataclass(frozen=True)
class Transaction:
    """A client transaction ``T_I`` over one or more shards.

    The envelope is immutable; every field needed by the protocol is derived
    at most once per object and memoised (involved shards, canonical payload,
    digest) -- the routing layer, the batcher, and every ``batch_digest``
    recomputation hit the caches instead of re-deriving.
    """

    txn_id: str
    client_id: str
    operations: tuple[Operation, ...]

    def __post_init__(self) -> None:
        if not self.operations:
            raise MalformedMessageError(f"transaction {self.txn_id} has no operations")

    @property
    def involved_shards(self) -> frozenset[int]:
        """Set of shard identifiers the transaction touches (``I`` in the paper)."""
        cached = self.__dict__.get("_involved_memo")
        if cached is None:
            shards = {op.shard for op in self.operations}
            for op in self.operations:
                shards.update(shard for shard, _ in op.depends_on)
            cached = frozenset(shards)
            object.__setattr__(self, "_involved_memo", cached)
        return cached

    @property
    def is_cross_shard(self) -> bool:
        """True when more than one shard is involved."""
        return len(self.involved_shards) > 1

    @property
    def is_complex(self) -> bool:
        """True when any fragment needs data from another shard to execute."""
        return any(op.depends_on for op in self.operations)

    @property
    def is_simple(self) -> bool:
        """A simple cst executes each fragment independently after one rotation."""
        return not self.is_complex

    def fragment_for(self, shard: int) -> tuple[Operation, ...]:
        """Operations of this transaction that live in ``shard``."""
        return tuple(op for op in self.operations if op.shard == shard)

    def keys_for(self, shard: int) -> frozenset[str]:
        """Data-item keys this transaction locks in ``shard``."""
        return frozenset(op.key for op in self.operations if op.shard == shard)

    def write_keys_for(self, shard: int) -> frozenset[str]:
        return frozenset(
            op.key for op in self.operations if op.shard == shard and op.op_type is OpType.WRITE
        )

    def read_keys_for(self, shard: int) -> frozenset[str]:
        return frozenset(
            op.key for op in self.operations if op.shard == shard and op.op_type is OpType.READ
        )

    @property
    def remote_read_count(self) -> int:
        """Number of cross-shard data dependencies (Figure 10's x-axis)."""
        return sum(len(op.depends_on) for op in self.operations)

    def to_wire(self) -> dict:
        """Canonical field representation used for digests and signing."""
        return {
            "txn_id": self.txn_id,
            "client_id": self.client_id,
            "operations": [op.to_wire() for op in self.operations],
        }

    def payload_bytes(self) -> bytes:
        """Canonical bytes of the envelope, encoded at most once per object.

        The first encode goes through the compiled fixed layouts
        (``_TXN_LAYOUT``/``_OP_LAYOUT``) instead of the generic codec walker;
        the bytes are identical by construction (pinned by the packed-codec
        equivalence tests), so digests and signatures interoperate.
        """
        if codec.LEGACY.enabled:
            return codec.legacy_json_bytes(self.to_wire())
        cached = self.__dict__.get("_payload_memo")
        if cached is None:
            cached = _TXN_LAYOUT(
                self.client_id,
                codec.list_frame([op.packed_bytes() for op in self.operations]),
                self.txn_id,
            )
            object.__setattr__(self, "_payload_memo", cached)
            codec.STATS.payload_misses += 1
        else:
            codec.STATS.payload_hits += 1
        return cached

    def digest(self) -> bytes:
        """Collision-resistant digest of the envelope, hashed at most once."""
        return codec.memoized_digest(self, self.to_wire)

    def conflicts_with(self, other: "Transaction") -> bool:
        """True when the two transactions access a common data item with at least one write."""
        for shard in self.involved_shards & other.involved_shards:
            mine = self.keys_for(shard)
            theirs = other.keys_for(shard)
            overlap = mine & theirs
            if not overlap:
                continue
            my_writes = self.write_keys_for(shard)
            their_writes = other.write_keys_for(shard)
            if overlap & (my_writes | their_writes):
                return True
        return False


@dataclass
class TransactionBuilder:
    """Fluent helper for building transactions in examples and tests."""

    txn_id: str
    client_id: str
    _operations: list[Operation] = field(default_factory=list)

    def read(self, shard: int, key: str) -> "TransactionBuilder":
        self._operations.append(Operation(shard=shard, key=key, op_type=OpType.READ))
        return self

    def write(
        self,
        shard: int,
        key: str,
        value: str,
        depends_on: tuple[tuple[int, str], ...] = (),
    ) -> "TransactionBuilder":
        self._operations.append(
            Operation(shard=shard, key=key, op_type=OpType.WRITE, value=value, depends_on=depends_on)
        )
        return self

    def read_modify_write(self, shard: int, key: str, value: str) -> "TransactionBuilder":
        """The YCSB access pattern used in the paper's evaluation."""
        return self.read(shard, key).write(shard, key, value)

    def build(self) -> Transaction:
        return Transaction(
            txn_id=self.txn_id, client_id=self.client_id, operations=tuple(self._operations)
        )
