"""Baseline sharding BFT protocols the paper evaluates against: AHL and Sharper."""

from repro.baselines.ahl.replica import AhlReplica
from repro.baselines.sharper.replica import SharperReplica

__all__ = ["AhlReplica", "SharperReplica"]
