"""AHL baseline: reference-committee ordering plus two-phase commit (Dang et al., SIGMOD 2019)."""

from repro.baselines.ahl.messages import CommitteeDecision, CommitteeVote, Decide2PC, Prepare2PC, Vote2PC
from repro.baselines.ahl.replica import AhlReplica

__all__ = [
    "AhlReplica",
    "Prepare2PC",
    "Vote2PC",
    "Decide2PC",
    "CommitteeVote",
    "CommitteeDecision",
]
