"""Per-batch bookkeeping for AHL's reference-committee + 2PC path."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.messages import ClientRequest


@dataclass
class AhlRecord:
    """What one replica knows about one cross-shard batch under AHL."""

    batch_digest: bytes
    involved_shards: frozenset[int]
    requests: tuple[ClientRequest, ...] = ()

    #: Committee-side state.
    global_sequence: int | None = None
    #: Dense per-involved-shard prepare indices (committee commit order),
    #: computed once when the prepare is first sent.
    shard_sequences: dict[int, int] | None = None
    prepare_sent: bool = False
    shard_votes: dict[int, set[str]] = field(default_factory=dict)
    committee_votes: set[str] = field(default_factory=set)
    decision_sent: bool = False
    replied: bool = False

    #: Involved-shard-side state.
    prepare_senders: set[str] = field(default_factory=set)
    #: Claimed dense prepare index -> committee senders claiming it.  The
    #: index is adopted only once a weak quorum agrees, so a single
    #: Byzantine committee member cannot pin a bogus index.
    dest_sequence_claims: dict[int, set[str]] = field(default_factory=dict)
    #: This shard's quorum-confirmed dense prepare index for the batch.
    dest_sequence: int | None = None
    local_consensus_started: bool = False
    local_sequence: int | None = None
    locked: bool = False
    voted: bool = False
    decide_senders: set[str] = field(default_factory=set)
    decided: bool = False
    executed: bool = False

    def record_shard_vote(self, shard: int, sender: str) -> int:
        votes = self.shard_votes.setdefault(shard, set())
        votes.add(sender)
        return len(votes)

    @property
    def txn_ids(self) -> tuple[str, ...]:
        return tuple(req.transaction.txn_id for req in self.requests)
