"""AHL baseline replica (Dang et al., "Towards Scaling Blockchain Systems via
Sharding", SIGMOD 2019) as described in Section 2 of the RingBFT paper.

Single-shard transactions run plain PBFT inside their shard, exactly as in
RingBFT -- the paper makes all three protocols share this path.  Cross-shard
transactions take the *designated committee* path:

1. the client's transaction is routed to the **reference committee** (here:
   the shard with the lowest identifier), which orders it globally with PBFT;
2. the committee starts **two-phase commit**: every committee replica sends a
   ``Prepare2PC`` to every replica of every involved shard (all-to-all);
3. each involved shard runs local PBFT to agree on its vote, locks the data,
   and sends ``Vote2PC`` back to every committee replica;
4. the committee agrees on the global decision (a propose/vote round among
   committee replicas standing in for its second PBFT instance) and sends
   ``Decide2PC`` to every replica of every involved shard;
5. involved shards execute their fragments and release locks; the committee
   replies to the client.

The all-to-all communication and the extra committee consensus are exactly
what the paper blames for AHL's poor cross-shard scalability.
"""

from __future__ import annotations

from repro.baselines.ahl.messages import (
    CommitteeDecision,
    CommitteeVote,
    Decide2PC,
    Prepare2PC,
    Vote2PC,
)
from repro.baselines.ahl.records import AhlRecord
from repro.common.messages import ClientRequest, batch_digest
from repro.consensus.pbft.replica import PbftReplica


class AhlReplica(PbftReplica):
    """One replica participating in AHL; committee membership is by shard id."""

    #: AHL's 2PC messages are always broadcast by their actual sender with a
    #: MAC vector covering every receiving replica (and carry no signatures),
    #: so the tag is mandatory for them too -- omitting it must not skip the
    #: gate.
    _MAC_REQUIRED_TYPES = PbftReplica._MAC_REQUIRED_TYPES + (
        Prepare2PC,
        Vote2PC,
        CommitteeVote,
        CommitteeDecision,
        Decide2PC,
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._records: dict[bytes, AhlRecord] = {}
        #: Committee side: cross-shard prepares sent per destination shard,
        #: in commit order -- every committee replica derives the identical
        #: counts from the identical committed log.
        self._cross_dest_counts: dict[int, int] = {}
        #: Involved-shard side: prepares ready for local vote consensus,
        #: keyed by their dense per-shard index, proposed strictly in order.
        self._ready_cross: dict[int, AhlRecord] = {}
        self._next_cross_proposal = 1
        #: Set when this replica adopts state via transfer: its dense-index
        #: bookkeeping skipped every batch in the adopted window, so it can
        #: no longer claim indices (committee side) or trust its cursor
        #: (involved side).  See :meth:`_install_state`.
        self._cross_order_stale = False

    # ------------------------------------------------------------------
    # roles
    # ------------------------------------------------------------------

    @property
    def committee_shard(self) -> int:
        """The shard acting as AHL's reference committee (lowest identifier)."""
        return min(self.directory.shard_ids())

    @property
    def is_committee_member(self) -> bool:
        return self.shard_id == self.committee_shard

    def _record(
        self,
        digest: bytes,
        requests: tuple[ClientRequest, ...] = (),
        involved: frozenset[int] | None = None,
    ) -> AhlRecord:
        record = self._records.get(digest)
        if record is None:
            record = AhlRecord(
                batch_digest=digest,
                involved_shards=involved or frozenset(),
                requests=tuple(requests),
            )
            self._records[digest] = record
        if requests and not record.requests:
            record.requests = tuple(requests)
        if involved and not record.involved_shards:
            record.involved_shards = involved
        return record

    def ahl_record(self, digest: bytes) -> AhlRecord | None:
        """Accessor used by tests."""
        return self._records.get(digest)

    def _install_state(self, reply) -> None:
        super()._install_state(reply)
        # The adopted window bypassed _on_batch_committed, so the dense
        # prepare-index bookkeeping skipped an unknown number of batches.
        # Committee side: abstain from claiming indices from now on (the
        # up-to-date honest majority still reaches the weak quorum that
        # confirms them).  Involved side: drain whatever is queued and fall
        # back to arrival-order proposal -- the missed indices belong to
        # batches that settled while this replica lagged and will never be
        # retransmitted, so a strict cursor would stall the shard if this
        # replica were later promoted primary.
        self._cross_order_stale = True
        for record in sorted(self._ready_cross.values(), key=lambda r: r.dest_sequence or 0):
            if self.is_primary and not self.byzantine_silent:
                self._propose(record.requests)
        self._ready_cross.clear()

    # ------------------------------------------------------------------
    # client request routing
    # ------------------------------------------------------------------

    def _accepts_client_request(self, request: ClientRequest) -> bool:
        txn = request.transaction
        if txn.is_cross_shard:
            return self.is_committee_member
        return self.shard_id in txn.involved_shards

    def _redirect_client_request(self, request: ClientRequest) -> None:
        if not self.is_primary:
            return
        txn = request.transaction
        if txn.is_cross_shard:
            target = self.committee_shard
        else:
            target = next(iter(txn.involved_shards))
        if target != self.shard_id:
            self.send(self.directory.primary_of(target, view=0), request)

    # ------------------------------------------------------------------
    # commit hook: branch on single-shard vs committee vs involved shard
    # ------------------------------------------------------------------

    def _on_batch_committed(self, view, sequence, digest, batch) -> None:
        if not batch:
            return
        txn = batch[0].transaction
        if not txn.is_cross_shard:
            # Single-shard path: sequence-ordered locking, execute, release.
            self._acquire_locks_then(
                sequence, digest, batch, lambda: self._execute_local(sequence, digest, batch)
            )
            return
        involved = txn.involved_shards
        record = self._record(digest, requests=batch, involved=involved)
        if self.is_committee_member and not record.prepare_sent:
            # The committee just globally ordered the batch: start 2PC.
            record.global_sequence = sequence
            record.prepare_sent = True
            # Assign each involved shard this batch's dense prepare index
            # (identical on every committee replica: derived from the
            # committed log order).  Involved primaries propose in this
            # order, keeping cross-shard lock acquisition deadlock-free.
            record.shard_sequences = {}
            if not self._cross_order_stale:
                for shard in sorted(involved):
                    if shard == self.shard_id:
                        continue
                    self._cross_dest_counts[shard] = self._cross_dest_counts.get(shard, 0) + 1
                    record.shard_sequences[shard] = self._cross_dest_counts[shard]
            self._send_prepare_2pc(record, sequence)
            if self.shard_id in involved:
                # The committee shard also owns part of the data: vote as well.
                record.local_sequence = sequence
                self._acquire_locks_then(
                    sequence, digest, batch, lambda: self._cast_vote(digest)
                )
            self._check_decision(record)
        elif not self.is_committee_member:
            # An involved shard finished its local vote consensus.
            record.local_sequence = sequence
            self._acquire_locks_then(
                sequence, digest, batch, lambda: self._cast_vote(digest)
            )

    def _execute_local(self, sequence: int, digest: bytes, batch) -> None:
        self._execute_batch(sequence, digest, batch)
        self.last_executed = max(self.last_executed, sequence)
        self._release_lock_token(digest.hex())

    # ------------------------------------------------------------------
    # 2PC: prepare phase
    # ------------------------------------------------------------------

    def _send_prepare_2pc(self, record: AhlRecord, global_sequence: int) -> None:
        """Committee -> every replica of every involved shard (all-to-all)."""
        message = Prepare2PC(
            sender=self.replica_id,
            requests=record.requests,
            batch_digest=record.batch_digest,
            global_sequence=global_sequence,
            shard_sequences=dict(record.shard_sequences or {}),
        )
        audience = [s for s in sorted(record.involved_shards) if s != self.shard_id]
        self._authenticate_cross_shard_broadcast(message, audience)
        for shard in audience:
            self.broadcast(list(self.directory.replicas_of(shard)), message)

    def _handle_prepare_2pc(self, message: Prepare2PC) -> None:
        if batch_digest(message.requests) != message.batch_digest:
            return
        involved = message.requests[0].transaction.involved_shards
        if self.shard_id not in involved:
            return
        record = self._record(message.batch_digest, requests=message.requests, involved=involved)
        record.prepare_senders.add(str(message.sender))
        committee_weak = self.directory.quorum(self.committee_shard).weak_quorum
        claimed = message.shard_sequences.get(self.shard_id)
        if claimed is not None and record.dest_sequence is None:
            # Adopt the dense index only once a weak quorum of committee
            # replicas claims the *same* value: the MAC authenticates each
            # claim's sender, but a Byzantine sender signs whatever it wants,
            # so the f+1 agreement is what actually defends the order.
            claimants = record.dest_sequence_claims.setdefault(claimed, set())
            claimants.add(str(message.sender))
            if len(claimants) >= committee_weak:
                record.dest_sequence = claimed
        if len(record.prepare_senders) < committee_weak:
            return
        if record.local_consensus_started:
            return
        if record.dest_sequence is None or self._cross_order_stale:
            if record.dest_sequence is None and record.dest_sequence_claims:
                # Ordering info exists but no value is quorum-confirmed yet
                # (a Byzantine claim among the first f+1): wait for further
                # honest prepares instead of proposing out of order.
                return
            # Arrival-order fallback, used when no sender claimed an index
            # (pre-ordering committee, stripped messages) and by a replica
            # whose cursor went stale through state transfer -- indices it
            # missed will never be retransmitted, so strict ordering would
            # trade the deadlock risk for a certain stall.
            record.local_consensus_started = True
            if self.is_primary and not self.byzantine_silent:
                self._propose(message.requests)
            return
        # Queue for local vote consensus strictly in the committee-assigned
        # per-shard order: every involved shard then locks the same two
        # batches in the same relative order, which is what makes the
        # sequence-ordered LockManager deadlock-free across shards.
        record.local_consensus_started = True
        self._ready_cross[record.dest_sequence] = record
        self._drain_cross_proposals()

    def _drain_cross_proposals(self) -> None:
        """Consume contiguous ready prepares; only the primary proposes.

        Every replica advances the cursor identically (backups would
        otherwise accumulate ``_ready_cross`` entries forever, and a backup
        promoted by a view change would replay every historical batch from
        index 1); proposing is the primary's job alone.
        """
        while self._next_cross_proposal in self._ready_cross:
            record = self._ready_cross.pop(self._next_cross_proposal)
            self._next_cross_proposal += 1
            if self.is_primary and not self.byzantine_silent:
                self._propose(record.requests)

    # ------------------------------------------------------------------
    # 2PC: vote phase
    # ------------------------------------------------------------------

    def _cast_vote(self, digest: bytes) -> None:
        record = self._records.get(digest)
        if record is None or record.voted:
            return
        record.locked = True
        record.voted = True
        vote = Vote2PC(
            sender=self.replica_id,
            batch_digest=digest,
            shard=self.shard_id,
            commit=True,
        )
        committee = self.directory.replicas_of(self.committee_shard)
        self._authenticate_cross_shard_broadcast(vote, (self.committee_shard,))
        self.broadcast(list(committee), vote, include_self=self.is_committee_member)
        if record.decided:
            # The global decision raced ahead of our local locking.
            self._finish_cross_shard(record)

    def _handle_vote_2pc(self, message: Vote2PC) -> None:
        if not self.is_committee_member:
            return
        record = self._record(message.batch_digest)
        count = record.record_shard_vote(message.shard, str(message.sender))
        shard_weak = self.directory.quorum(message.shard).weak_quorum
        if count < shard_weak:
            return
        self._check_decision(record)

    def _all_votes_collected(self, record: AhlRecord) -> bool:
        if not record.involved_shards:
            return False
        for shard in record.involved_shards:
            weak = self.directory.quorum(shard).weak_quorum
            if len(record.shard_votes.get(shard, set())) < weak:
                return False
        return True

    def _check_decision(self, record: AhlRecord) -> None:
        """Once every involved shard voted, run the committee's decision round."""
        if not self._all_votes_collected(record) or record.decision_sent:
            return
        vote = CommitteeVote(sender=self.replica_id, batch_digest=record.batch_digest, commit=True)
        self._authenticate_cross_shard_broadcast(vote, (self.committee_shard,))
        self.broadcast(list(self.directory.replicas_of(self.committee_shard)), vote, include_self=True)

    def _handle_committee_vote(self, message: CommitteeVote) -> None:
        if not self.is_committee_member:
            return
        record = self._record(message.batch_digest)
        record.committee_votes.add(str(message.sender))
        if record.decision_sent:
            return
        if len(record.committee_votes) < self.quorum.commit_quorum:
            return
        record.decision_sent = True
        self._send_decision(record)

    # ------------------------------------------------------------------
    # 2PC: decide phase
    # ------------------------------------------------------------------

    def _send_decision(self, record: AhlRecord) -> None:
        decision = Decide2PC(sender=self.replica_id, batch_digest=record.batch_digest, commit=True)
        self._authenticate_cross_shard_broadcast(decision, record.involved_shards)
        for shard in sorted(record.involved_shards):
            self.broadcast(
                list(self.directory.replicas_of(shard)),
                decision,
                include_self=(shard == self.shard_id),
            )
        if not record.replied:
            record.replied = True
            for request in record.requests:
                self._reply_to_client(request, record.global_sequence or 0)

    def _handle_decide_2pc(self, message: Decide2PC) -> None:
        record = self._records.get(message.batch_digest)
        if record is None:
            return
        record.decide_senders.add(str(message.sender))
        committee_weak = self.directory.quorum(self.committee_shard).weak_quorum
        if len(record.decide_senders) < committee_weak or record.decided:
            return
        record.decided = True
        self._finish_cross_shard(record)

    def _finish_cross_shard(self, record: AhlRecord) -> None:
        """Execute the local fragment and release its locks after the global decision."""
        if record.executed or self.shard_id not in record.involved_shards:
            return
        if not record.locked or record.local_sequence is None:
            # Decision arrived before the local vote consensus finished; it
            # will be finished when the vote path completes.
            return
        transactions = [req.transaction for req in record.requests]
        self.executor.execute_batch(transactions)
        self.executed_txn_count += len(transactions)
        self.last_executed = max(self.last_executed, record.local_sequence)
        record.executed = True
        self._release_lock_token(record.batch_digest.hex())
        self._maybe_checkpoint(record.local_sequence, tuple(transactions))

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _handle_protocol_message(self, message) -> None:
        if isinstance(message, Prepare2PC):
            self._handle_prepare_2pc(message)
        elif isinstance(message, Vote2PC):
            self._handle_vote_2pc(message)
        elif isinstance(message, CommitteeVote):
            self._handle_committee_vote(message)
        elif isinstance(message, Decide2PC):
            self._handle_decide_2pc(message)
