"""Messages of AHL's cross-shard path (reference committee + 2PC).

AHL (Section 2, *Designated Committee*) orders every cross-shard transaction
through a reference committee, then runs two-phase commit between the
committee and the involved shards; all of the 2PC phases use all-to-all
communication between the replicas of each shard and the committee replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.codec import register_wire_type

from repro.common.crypto import Signature
from repro.common.messages import ClientRequest, Message


@register_wire_type
@dataclass(frozen=True)
class Prepare2PC(Message):
    """Committee -> involved shards: start local consensus and vote on the batch.

    ``shard_sequences`` maps each involved shard to this batch's dense index
    among the cross-shard batches involving that shard, in the committee's
    commit order.  Involved-shard primaries propose their local vote
    consensus in this order, which keeps lock-acquisition order consistent
    across shards -- without it, two shards receiving two prepares in
    opposite network orders lock in opposite orders and 2PC deadlocks.
    """

    requests: tuple[ClientRequest, ...]
    batch_digest: bytes
    global_sequence: int
    shard_sequences: dict[int, int] = field(default_factory=dict)

    def wire_size(self) -> int:
        return 5408  # carries the full batch, like a PrePrepare

    def _payload_fields(self) -> dict:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "digest": self.batch_digest,
            "gseq": self.global_sequence,
            # MAC-bound so a relay cannot relabel an honest sender's claimed
            # order; receivers additionally require a weak quorum of senders
            # agreeing on the index before adopting it (a Byzantine sender
            # signs whatever it wants).
            "sseq": self.shard_sequences,
        }


@register_wire_type
@dataclass(frozen=True)
class Vote2PC(Message):
    """Involved shard -> committee: this shard's commit/abort vote for the batch."""

    batch_digest: bytes
    shard: int
    commit: bool
    signature: Signature | None = None

    def wire_size(self) -> int:
        return 269

    def _payload_fields(self) -> dict:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "digest": self.batch_digest,
            "shard": self.shard,
            "commit": self.commit,
        }


@register_wire_type
@dataclass(frozen=True)
class CommitteeVote(Message):
    """Committee-internal agreement vote on the final 2PC decision."""

    batch_digest: bytes
    commit: bool

    def wire_size(self) -> int:
        return 216

    def _payload_fields(self) -> dict:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "digest": self.batch_digest,
            "commit": self.commit,
        }


@register_wire_type
@dataclass(frozen=True)
class CommitteeDecision(Message):
    """Committee-internal broadcast installing the agreed decision."""

    batch_digest: bytes
    commit: bool

    def wire_size(self) -> int:
        return 269

    def _payload_fields(self) -> dict:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "digest": self.batch_digest,
            "commit": self.commit,
        }


@register_wire_type
@dataclass(frozen=True)
class Decide2PC(Message):
    """Committee -> involved shards: the global commit/abort decision."""

    batch_digest: bytes
    commit: bool
    signature: Signature | None = None

    def wire_size(self) -> int:
        return 269

    def _payload_fields(self) -> dict:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "digest": self.batch_digest,
            "commit": self.commit,
        }
