"""Sharper baseline replica as described in Section 2 of the RingBFT paper.

Single-shard transactions run plain PBFT inside their shard (identical to
RingBFT and AHL).  A cross-shard transaction is coordinated by the primary of
the first involved shard (the *initiator shard*):

1. the initiator primary sends a ``CrossPropose`` to every replica of every
   involved shard;
2. every replica of every involved shard broadcasts a ``CrossPrepare`` to
   every replica of every involved shard (global all-to-all);
3. once a replica holds a prepare quorum *from each involved shard*, it
   broadcasts a ``CrossCommit`` the same way;
4. once a replica holds a commit quorum from each involved shard, the batch is
   globally committed: every shard executes its fragment and the replicas of
   the initiator shard reply to the client.

The two rounds of global quadratic communication are precisely what the paper
measures as Sharper's scalability limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.sharper.messages import CrossCommit, CrossPrepare, CrossPropose
from repro.common.messages import ClientRequest, batch_digest
from repro.consensus.pbft.replica import PbftReplica


@dataclass
class SharperRecord:
    """Per-batch state of Sharper's global consensus on one replica."""

    batch_digest: bytes
    involved_shards: frozenset[int]
    requests: tuple[ClientRequest, ...] = ()
    global_sequence: int | None = None
    prepare_votes: dict[int, set[str]] = field(default_factory=dict)
    commit_votes: dict[int, set[str]] = field(default_factory=dict)
    prepared: bool = False
    committed: bool = False
    executed: bool = False
    replied: bool = False

    def record_vote(self, table: dict[int, set[str]], shard: int, sender: str) -> int:
        votes = table.setdefault(shard, set())
        votes.add(sender)
        return len(votes)


class SharperReplica(PbftReplica):
    """One replica participating in Sharper."""

    #: Sharper's global rounds are always broadcast by their actual sender
    #: with a MAC vector covering every receiving replica, so the tag is
    #: mandatory -- omitting it must not skip the gate.
    _MAC_REQUIRED_TYPES = PbftReplica._MAC_REQUIRED_TYPES + (
        CrossPropose,
        CrossPrepare,
        CrossCommit,
    )

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._records: dict[bytes, SharperRecord] = {}
        self._global_sequence = 0

    # ------------------------------------------------------------------
    # client request routing
    # ------------------------------------------------------------------

    def _initiator_shard(self, involved: frozenset[int]) -> int:
        return self.directory.ring.first_in_ring_order(involved)

    def _accepts_client_request(self, request: ClientRequest) -> bool:
        txn = request.transaction
        if not txn.is_cross_shard:
            return self.shard_id in txn.involved_shards
        # Cross-shard requests are handled out of band by the initiator primary.
        return False

    def _handle_client_request(self, request: ClientRequest) -> None:
        txn = request.transaction
        if txn.is_cross_shard:
            if self._initiator_shard(txn.involved_shards) != self.shard_id:
                self._redirect_client_request(request)
                return
            if self.is_primary and not self.byzantine_silent:
                self._propose_cross_shard(request)
            else:
                self.send(self.primary, request)
            return
        super()._handle_client_request(request)

    def _redirect_client_request(self, request: ClientRequest) -> None:
        if not self.is_primary:
            return
        txn = request.transaction
        if txn.is_cross_shard:
            target = self._initiator_shard(txn.involved_shards)
        else:
            target = next(iter(txn.involved_shards))
        if target != self.shard_id:
            self.send(self.directory.primary_of(target, view=0), request)

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------

    def _record(
        self,
        digest: bytes,
        requests: tuple[ClientRequest, ...] = (),
        involved: frozenset[int] | None = None,
    ) -> SharperRecord:
        record = self._records.get(digest)
        if record is None:
            record = SharperRecord(
                batch_digest=digest,
                involved_shards=involved or frozenset(),
                requests=tuple(requests),
            )
            self._records[digest] = record
        if requests and not record.requests:
            record.requests = tuple(requests)
        if involved and not record.involved_shards:
            record.involved_shards = involved
        return record

    def sharper_record(self, digest: bytes) -> SharperRecord | None:
        """Accessor used by tests."""
        return self._records.get(digest)

    def _involved_replicas(self, record: SharperRecord) -> list:
        replicas = []
        for shard in sorted(record.involved_shards):
            replicas.extend(self.directory.replicas_of(shard))
        return replicas

    # ------------------------------------------------------------------
    # global consensus phases
    # ------------------------------------------------------------------

    def _propose_cross_shard(self, request: ClientRequest) -> None:
        """Initiator primary: propose the batch to every involved replica."""
        requests = (request,)
        digest = batch_digest(requests)
        if digest in self._records and self._records[digest].global_sequence is not None:
            return
        self._global_sequence += 1
        record = self._record(digest, requests, request.transaction.involved_shards)
        record.global_sequence = self._global_sequence
        message = CrossPropose(
            sender=self.replica_id,
            requests=requests,
            batch_digest=digest,
            global_sequence=self._global_sequence,
        )
        self._authenticate_cross_shard_broadcast(message, record.involved_shards)
        self.broadcast(self._involved_replicas(record), message, include_self=True)

    def _handle_cross_propose(self, message: CrossPropose) -> None:
        if batch_digest(message.requests) != message.batch_digest:
            return
        involved = message.requests[0].transaction.involved_shards
        if self.shard_id not in involved:
            return
        initiator = self._initiator_shard(involved)
        if message.sender != self.directory.primary_of(initiator, view=0) and message.sender.shard != initiator:
            return
        record = self._record(message.batch_digest, message.requests, involved)
        if record.global_sequence is None:
            record.global_sequence = message.global_sequence
        prepare = CrossPrepare(
            sender=self.replica_id, batch_digest=message.batch_digest, shard=self.shard_id
        )
        self._authenticate_cross_shard_broadcast(prepare, record.involved_shards)
        self.broadcast(self._involved_replicas(record), prepare, include_self=True)
        # Votes may have raced ahead of the proposal; re-evaluate both quorums.
        self._advance_record(record)

    def _quorum_from_every_shard(
        self, record: SharperRecord, votes: dict[int, set[str]]
    ) -> bool:
        if not record.involved_shards:
            return False
        for shard in record.involved_shards:
            needed = self.directory.quorum(shard).commit_quorum
            if len(votes.get(shard, set())) < needed:
                return False
        return True

    def _handle_cross_prepare(self, message: CrossPrepare) -> None:
        record = self._record(message.batch_digest)
        record.record_vote(record.prepare_votes, message.shard, str(message.sender))
        self._advance_record(record)

    def _handle_cross_commit(self, message: CrossCommit) -> None:
        record = self._record(message.batch_digest)
        record.record_vote(record.commit_votes, message.shard, str(message.sender))
        self._advance_record(record)

    def _advance_record(self, record: SharperRecord) -> None:
        """Advance the global consensus state machine as far as its quorums allow."""
        if not record.requests:
            return
        if not record.prepared and self._quorum_from_every_shard(record, record.prepare_votes):
            record.prepared = True
            commit = CrossCommit(
                sender=self.replica_id, batch_digest=record.batch_digest, shard=self.shard_id
            )
            self._authenticate_cross_shard_broadcast(commit, record.involved_shards)
            self.broadcast(self._involved_replicas(record), commit, include_self=True)
        if (
            not record.committed
            and record.prepared
            and self._quorum_from_every_shard(record, record.commit_votes)
        ):
            record.committed = True
            self._execute_cross_shard(record)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _execute_cross_shard(self, record: SharperRecord) -> None:
        if record.executed or self.shard_id not in record.involved_shards:
            return
        record.executed = True
        transactions = [req.transaction for req in record.requests]
        self.executor.execute_batch(transactions)
        self.executed_txn_count += len(transactions)
        sequence = record.global_sequence or 0
        self.ledger.append_batch(sequence, str(self.primary), transactions)
        self._maybe_checkpoint(sequence, tuple(transactions))
        if self._initiator_shard(record.involved_shards) == self.shard_id and not record.replied:
            record.replied = True
            for request in record.requests:
                self._reply_to_client(request, sequence)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _handle_protocol_message(self, message) -> None:
        if isinstance(message, CrossPropose):
            self._handle_cross_propose(message)
        elif isinstance(message, CrossPrepare):
            self._handle_cross_prepare(message)
        elif isinstance(message, CrossCommit):
            self._handle_cross_commit(message)
