"""Sharper baseline: initiator-shard cross-shard consensus with global all-to-all phases."""

from repro.baselines.sharper.messages import CrossCommit, CrossPrepare, CrossPropose
from repro.baselines.sharper.replica import SharperReplica

__all__ = ["SharperReplica", "CrossPropose", "CrossPrepare", "CrossCommit"]
