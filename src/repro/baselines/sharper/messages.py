"""Messages of Sharper's cross-shard consensus (Amiri et al., 2019).

Sharper routes each cross-shard transaction through the primary of one
involved shard (the *initiator*), which proposes it to every replica of every
involved shard; the prepare and commit phases are then exchanged all-to-all
among the replicas of all involved shards -- the global quadratic
communication the RingBFT paper identifies as Sharper's bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.codec import register_wire_type

from repro.common.messages import ClientRequest, Message


@register_wire_type
@dataclass(frozen=True)
class CrossPropose(Message):
    """Initiator primary -> all replicas of all involved shards: global proposal."""

    requests: tuple[ClientRequest, ...]
    batch_digest: bytes
    global_sequence: int

    def wire_size(self) -> int:
        return 5408

    def _payload_fields(self) -> dict:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "digest": self.batch_digest,
            "gseq": self.global_sequence,
        }


@register_wire_type
@dataclass(frozen=True)
class CrossPrepare(Message):
    """Global prepare vote broadcast to every replica of every involved shard."""

    batch_digest: bytes
    shard: int

    def wire_size(self) -> int:
        return 216

    def _payload_fields(self) -> dict:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "digest": self.batch_digest,
            "shard": self.shard,
        }


@register_wire_type
@dataclass(frozen=True)
class CrossCommit(Message):
    """Global commit vote broadcast to every replica of every involved shard."""

    batch_digest: bytes
    shard: int

    def wire_size(self) -> int:
        return 269

    def _payload_fields(self) -> dict:
        return {
            "type": self.type_name,
            "sender": str(self.sender),
            "digest": self.batch_digest,
            "shard": self.shard,
        }
