"""RingBFT reproduction: resilient consensus over a sharded ring topology.

The package reproduces the system described in "RingBFT: Resilient Consensus
over Sharded Ring Topology" (EDBT 2022): a meta-BFT protocol for
sharded-replicated permissioned blockchains, the AHL and Sharper baselines it
is evaluated against, the YCSB-style workload generator, a deterministic
discrete-event simulation substrate, and the analytical performance model
used to regenerate the paper's figures at full scale.

Quickstart::

    from repro import Cluster, SystemConfig, TransactionBuilder

    config = SystemConfig.uniform(num_shards=3, replicas_per_shard=4)
    cluster = Cluster.build(config)
    txn = (TransactionBuilder("txn-1", "client-0")
           .read_modify_write(0, "user100", "new-value")
           .build())
    cluster.submit(txn)
    cluster.run_until_clients_done()
"""

from repro.cluster import Cluster
from repro.config import ShardConfig, SystemConfig, TimerConfig, WorkloadConfig
from repro.engine import (
    Deployment,
    ExecutionBackend,
    RealTimeBackend,
    RunResult,
    SimBackend,
    WorkloadDriver,
    backend_by_name,
)
from repro.consensus.directory import Directory
from repro.core.replica import RingBftReplica
from repro.consensus.pbft.replica import PbftReplica
from repro.txn.ring import RingTopology
from repro.txn.transaction import Operation, OpType, Transaction, TransactionBuilder

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "Deployment",
    "ExecutionBackend",
    "RealTimeBackend",
    "RunResult",
    "SimBackend",
    "WorkloadDriver",
    "backend_by_name",
    "SystemConfig",
    "ShardConfig",
    "TimerConfig",
    "WorkloadConfig",
    "Directory",
    "RingBftReplica",
    "PbftReplica",
    "RingTopology",
    "Transaction",
    "TransactionBuilder",
    "Operation",
    "OpType",
    "__version__",
]
