"""The link emulator: every per-link delivery decision, for every backend.

One :class:`LinkEmulator` instance sits under each transport (simulated,
asyncio real-time, TCP socket) and answers the only question a delivery layer
needs to ask: *given a message of this size from src to dst, is it delivered,
and after what one-way delay?*  Everything behind that answer -- region
assignment, the :class:`~repro.netem.policy.NetemPolicy` delay/loss math,
injected fault conditions, and the random draws -- is owned here, so the
three backends cannot drift apart.

Determinism contract
--------------------

Every (src, dst) link owns a private RNG stream seeded from
``(seed, str(src), str(dst))`` via SHA-256 (stable across processes and
Python hash randomisation).  A link's decision sequence therefore depends
only on the sequence of sends *on that link*, not on global interleaving:
the same seed and the same per-link traffic produce identical delay/loss
decisions on the simulator, the real-time stack, and a socket fleet where
each process only ever sees its own outbound links.

Draw order per decision is fixed and documented: one fault coin (always),
one loss coin (only when the link's spec has ``loss > 0``), one jitter coin
(only on delivery under a policy).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from repro.netem.conditions import NetworkConditions
from repro.netem.policy import LinkSpec, NetemPolicy

NodeAddress = Hashable

#: Decision returned by :meth:`LinkEmulator.decide`.
#: ``deliver`` is False for both injected faults and emulated loss;
#: ``delay_s`` is the unscaled one-way delay (0.0 when not delivered).
Decision = tuple[bool, float]


class _LinkState:
    """Per-(src, dst) state: resolved spec + private RNG + counters."""

    __slots__ = ("spec", "rng", "delivered", "dropped")

    def __init__(self, spec: LinkSpec | None, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self.delivered = 0
        self.dropped = 0


@dataclass
class NetemStats:
    """Emulator-wide counters (per transport instance)."""

    delivered: int = 0
    #: Messages suppressed by injected fault conditions (blocks, isolation,
    #: fault drop probability).
    faulted: int = 0
    #: Messages lost to the policy's steady-state emulated loss.
    lost: int = 0

    def snapshot(self) -> dict[str, int]:
        return {"delivered": self.delivered, "faulted": self.faulted, "lost": self.lost}


class LinkEmulator:
    """Stateful decision engine over one :class:`NetemPolicy`.

    ``policy=None`` means "no emulation": links have zero delay and no loss,
    but injected :class:`NetworkConditions` faults are still honoured (this
    is the socket backend's default -- loopback wire realism without WAN
    behaviour until a geo profile asks for it).
    """

    def __init__(
        self,
        policy: NetemPolicy | None = None,
        conditions: NetworkConditions | None = None,
        *,
        seed: int = 2022,
    ) -> None:
        self.policy = policy
        self.conditions = conditions or NetworkConditions()
        self.seed = seed
        self.stats = NetemStats()
        self._regions: dict[NodeAddress, str] = {}
        self._links: dict[tuple[NodeAddress, NodeAddress], _LinkState] = {}

    # ------------------------------------------------------------------
    # region assignment
    # ------------------------------------------------------------------

    def assign_region(self, address: NodeAddress, region: str) -> None:
        """Pin ``address`` to ``region``; affected link specs are refreshed.

        Only the *spec* of links touching ``address`` is recomputed -- each
        link's private RNG stream and counters survive, so an assignment
        made after traffic has flowed (a client added mid-run) can never
        rewind a stream and replay delay/loss decisions already drawn.
        """
        if self._regions.get(address) == region:
            return
        self._regions[address] = region
        if self.policy is None:
            return
        for (src, dst), state in self._links.items():
            if src == address or dst == address:
                state.spec = self.policy.spec_for(self.region_of(src), self.region_of(dst))

    def assign_regions(self, mapping: Mapping[NodeAddress, str]) -> None:
        for address, region in mapping.items():
            self.assign_region(address, region)

    def region_of(self, address: NodeAddress) -> str:
        return self._regions.get(address, "local")

    def known_regions(self) -> dict[NodeAddress, str]:
        return dict(self._regions)

    # ------------------------------------------------------------------
    # link resolution
    # ------------------------------------------------------------------

    def _link_rng(self, src: NodeAddress, dst: NodeAddress) -> random.Random:
        # Length-prefix each component: addresses are caller-supplied strings,
        # so naive "seed|src|dst" joining would let two distinct links collide
        # on one RNG stream (e.g. "a|b"->"c" vs "a"->"b|c").
        digest = hashlib.sha256()
        for part in (str(self.seed), str(src), str(dst)):
            body = part.encode()
            digest.update(len(body).to_bytes(4, "big"))
            digest.update(body)
        return random.Random(int.from_bytes(digest.digest()[:8], "big"))

    def link(self, src: NodeAddress, dst: NodeAddress) -> _LinkState:
        state = self._links.get((src, dst))
        if state is None:
            spec = None
            if self.policy is not None:
                spec = self.policy.spec_for(self.region_of(src), self.region_of(dst))
            state = _LinkState(spec, self._link_rng(src, dst))
            self._links[(src, dst)] = state
        return state

    def link_spec(self, src: NodeAddress, dst: NodeAddress) -> LinkSpec | None:
        """The resolved spec for a link (None under the no-emulation policy)."""
        return self.link(src, dst).spec

    def expected_one_way_delay(self, src: NodeAddress, dst: NodeAddress, size_bytes: int) -> float:
        """Pre-jitter one-way delay for a message (tests / reports)."""
        spec = self.link_spec(src, dst)
        return 0.0 if spec is None else spec.base_delay(size_bytes)

    # ------------------------------------------------------------------
    # the decision
    # ------------------------------------------------------------------

    def decide(self, src: NodeAddress, dst: NodeAddress, size_bytes: int) -> Decision:
        """One delivery decision; see the module docstring for the RNG contract."""
        link = self.link(src, dst)
        coin = link.rng.random()
        if not self.conditions.allows(src, dst, coin):
            link.dropped += 1
            self.stats.faulted += 1
            return (False, 0.0)
        spec = link.spec
        if spec is None:
            link.delivered += 1
            self.stats.delivered += 1
            return (True, 0.0)
        if spec.loss > 0.0 and link.rng.random() < spec.loss:
            link.dropped += 1
            self.stats.lost += 1
            return (False, 0.0)
        delay = spec.delay_with_jitter(size_bytes, link.rng.random())
        link.delivered += 1
        self.stats.delivered += 1
        return (True, delay)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-friendly summary: policy, regions, per-link counters."""
        links = {
            f"{src}->{dst}": {
                "delay_ms": (
                    round(state.spec.delay_s * 1000.0, 3) if state.spec else 0.0
                ),
                "delivered": state.delivered,
                "dropped": state.dropped,
            }
            for (src, dst), state in self._links.items()
        }
        return {
            "profile": self.policy.profile if self.policy else None,
            "emulated": self.policy is not None,
            "loss": self.policy.loss if self.policy else 0.0,
            "seed": self.seed,
            "regions": {str(addr): region for addr, region in self._regions.items()},
            "stats": self.stats.snapshot(),
            "links": links,
        }


def region_map_for(directory, shards: Iterable) -> dict:
    """Address -> region for every configured replica of a deployment.

    Built from the :class:`~repro.consensus.directory.Directory` so it covers
    *all* replicas -- including ones hosted by other OS processes, which never
    register locally on a socket transport but whose outbound-link delays this
    process must still model.
    """
    mapping = {}
    for shard in shards:
        for replica_id in directory.replicas_of(shard.shard_id):
            mapping[replica_id] = directory.region_of(shard.shard_id)
    return mapping
