"""The link policy: what delay, jitter, bandwidth, and loss a link gets.

A :class:`NetemPolicy` describes the steady-state behaviour of every link of
one deployment.  It is pure description -- no randomness, no mutable state --
so the same policy object can be handed to the simulator, the asyncio
real-time network, and the TCP socket transport, and all three derive the
identical :class:`LinkSpec` for any (source region, destination region) pair.
The stateful side (per-link RNG streams, fault conditions, counters) lives in
:class:`repro.netem.emulator.LinkEmulator`.

Delay resolution order for a link:

1. an explicit :class:`DelayMatrix` entry for the (src, dst) region pair --
   this is how tests inject asymmetric matrices and how a measured RTT table
   would be plugged in;
2. the great-circle :class:`~repro.sim.regions.LatencyModel` over the region
   names (the default used for the GCP geo profiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netem.regions import LatencyModel


@dataclass(frozen=True)
class LinkSpec:
    """Resolved per-link parameters (one direction of one region pair)."""

    #: One-way propagation delay in seconds.
    delay_s: float
    #: Uniform jitter as a fraction of the total pre-jitter delay.
    jitter_fraction: float
    #: Steady-state emulated loss probability (beyond injected faults).
    loss: float
    #: Sender uplink bandwidth in bits/second; 0 disables serialisation delay.
    bandwidth_bps: float

    def serialisation_delay(self, size_bytes: int) -> float:
        if self.bandwidth_bps <= 0:
            return 0.0
        return (size_bytes * 8.0) / self.bandwidth_bps

    def base_delay(self, size_bytes: int) -> float:
        """Propagation + serialisation delay, before the jitter draw."""
        return self.delay_s + self.serialisation_delay(size_bytes)

    def delay_with_jitter(self, size_bytes: int, jitter_coin: float) -> float:
        """Total one-way delay given a uniform ``jitter_coin`` in [0, 1)."""
        return self.base_delay(size_bytes) * (1.0 + self.jitter_fraction * jitter_coin)


@dataclass
class DelayMatrix:
    """Explicit one-way delays per (src region, dst region) pair, in seconds.

    Entries are directional, so asymmetric routes (the reality of WAN paths)
    are expressible; missing pairs fall back to the policy's latency model.
    """

    one_way_s: dict[tuple[str, str], float] = field(default_factory=dict)

    def set(self, src_region: str, dst_region: str, delay_s: float) -> "DelayMatrix":
        self.one_way_s[(src_region, dst_region)] = delay_s
        return self

    def get(self, src_region: str, dst_region: str) -> float | None:
        return self.one_way_s.get((src_region, dst_region))

    @classmethod
    def symmetric(cls, rtt_s: dict[tuple[str, str], float]) -> "DelayMatrix":
        """Build from an RTT table: each direction gets half the round trip."""
        matrix = cls()
        for (a, b), rtt in rtt_s.items():
            matrix.set(a, b, rtt / 2.0)
            matrix.set(b, a, rtt / 2.0)
        return matrix


@dataclass(frozen=True)
class NetemPolicy:
    """Immutable description of one deployment's link behaviour."""

    #: Delay/bandwidth/jitter math over region names.
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: Steady-state emulated loss probability applied to every link.
    loss: float = 0.0
    #: Explicit per-region-pair one-way delays overriding the latency model.
    matrix: DelayMatrix | None = None
    #: Informational: the geo profile this policy was built for (CLI reports).
    profile: str | None = None

    def spec_for(self, src_region: str, dst_region: str) -> LinkSpec:
        """The resolved :class:`LinkSpec` for one directional region pair."""
        same = src_region == dst_region
        override = self.matrix.get(src_region, dst_region) if self.matrix else None
        delay = (
            override
            if override is not None
            else self.latency.one_way_delay(src_region, dst_region)
        )
        return LinkSpec(
            delay_s=delay,
            jitter_fraction=self.latency.jitter_fraction,
            loss=self.loss,
            bandwidth_bps=(
                self.latency.lan_bandwidth_bps if same else self.latency.wan_bandwidth_bps
            ),
        )

    @classmethod
    def for_profile(cls, name: str, *, loss: float = 0.0) -> "NetemPolicy":
        """Policy for a named geo profile (validates the name)."""
        from repro.netem.profiles import profile_by_name

        profile = profile_by_name(name)
        return cls(loss=loss, profile=profile.name)
