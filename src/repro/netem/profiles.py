"""Named geo profiles: which region each shard lives in.

The paper's deployment pins one shard per GCP region across fifteen regions;
smaller experiments use a prefix of that list.  A :class:`GeoProfile` is just
that mapping plus a name the CLI can spell (``deploy-local --geo wan5``), so
every process of a deployment -- coordinator, ``serve`` replicas, and any
backend built from the same flags -- derives the identical region layout
without shipping a config object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GCP_REGIONS
from repro.errors import ConfigurationError
from repro.netem.regions import rtt_matrix


@dataclass(frozen=True)
class GeoProfile:
    """An ordered region list; shard ``i`` lives in ``regions[i % len]``."""

    name: str
    regions: tuple[str, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.regions:
            raise ConfigurationError(f"geo profile {self.name!r} has no regions")

    def rtt_table(self) -> dict[tuple[str, str], float]:
        """Pairwise RTT matrix (seconds) over the profile's distinct regions."""
        return rtt_matrix(tuple(dict.fromkeys(self.regions)))


#: Built-in profiles, keyed by their CLI name.
GEO_PROFILES: dict[str, GeoProfile] = {
    profile.name: profile
    for profile in (
        GeoProfile(
            "local",
            ("local",),
            "every shard in one datacentre (sub-millisecond RTT; no WAN)",
        ),
        GeoProfile(
            "wan3",
            GCP_REGIONS[:3],
            "Oregon / Iowa / Montreal -- one continent, tens of ms",
        ),
        GeoProfile(
            "wan5",
            GCP_REGIONS[:5],
            "adds Netherlands and Taiwan -- trans-Atlantic + trans-Pacific links",
        ),
        GeoProfile(
            "wan15",
            GCP_REGIONS,
            "the paper's full fifteen-region deployment",
        ),
    )
}


def profile_by_name(name: str) -> GeoProfile:
    """Look up a built-in profile; raises with the known names on a typo."""
    profile = GEO_PROFILES.get(name)
    if profile is None:
        raise ConfigurationError(
            f"unknown geo profile {name!r}; known: {sorted(GEO_PROFILES)}"
        )
    return profile


def regions_for(geo: str | None) -> tuple[str, ...]:
    """Region layout for an optional profile name.

    ``None`` keeps the historical default (the full GCP region list baked
    into ``SystemConfig.uniform``) so existing call sites behave unchanged.
    """
    return profile_by_name(geo).regions if geo else GCP_REGIONS


def netem_policy_for(geo: str | None):
    """The link policy an optional ``--geo`` flag implies (None = no emulation).

    The single resolution point shared by ``demo``, ``serve``, and
    ``deploy-local``: profile-specific policy defaults added here apply to
    every geo-aware entry point at once.
    """
    from repro.netem.policy import NetemPolicy

    return NetemPolicy.for_profile(geo) if geo else None
