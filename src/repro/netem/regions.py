"""WAN latency model for the fifteen GCP regions used in the paper.

The paper deploys one shard per region across Oregon, Iowa, Montreal,
Netherlands, Taiwan, Sydney, Singapore, South Carolina, North Virginia,
Los Angeles, Las Vegas, London, Belgium, Tokyo, and Hong Kong.  We do not have
the authors' measured RTT matrix, so inter-region round-trip times are derived
from great-circle distances at two-thirds of the speed of light (a standard
approximation for long-haul fibre) plus a small fixed overhead, which
reproduces the qualitative structure the paper relies on: same-continent pairs
are tens of milliseconds apart, trans-Pacific and trans-Atlantic pairs are
100-200 ms apart.

(Historically this module lived at :mod:`repro.sim.regions`; it moved into
``repro.netem`` when the link model was unified across the execution
backends.  The old path remains as a re-exporting shim.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Approximate data-centre coordinates (latitude, longitude) per region.
REGION_COORDINATES: dict[str, tuple[float, float]] = {
    "oregon": (45.59, -121.18),
    "iowa": (41.26, -95.86),
    "montreal": (45.50, -73.57),
    "netherlands": (53.44, 6.84),
    "taiwan": (24.05, 120.52),
    "sydney": (-33.87, 151.21),
    "singapore": (1.35, 103.82),
    "south-carolina": (33.20, -80.01),
    "north-virginia": (39.03, -77.47),
    "los-angeles": (34.05, -118.24),
    "las-vegas": (36.17, -115.14),
    "london": (51.51, -0.13),
    "belgium": (50.47, 3.87),
    "tokyo": (35.69, 139.69),
    "hong-kong": (22.32, 114.17),
    # Same-datacentre placeholder used by purely local test deployments.
    "local": (0.0, 0.0),
}

_EARTH_RADIUS_KM = 6371.0
_FIBRE_SPEED_KM_PER_S = 200_000.0  # ~2/3 c in glass
_FIXED_OVERHEAD_S = 0.004  # routing / switching overhead per round trip
_LOCAL_RTT_S = 0.0006  # same-region, same-datacentre round trip


def _great_circle_km(a: tuple[float, float], b: tuple[float, float]) -> float:
    lat1, lon1 = map(math.radians, a)
    lat2, lon2 = map(math.radians, b)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def region_rtt_seconds(region_a: str, region_b: str) -> float:
    """Round-trip time between two regions in seconds."""
    if region_a == region_b:
        return _LOCAL_RTT_S
    try:
        coord_a = REGION_COORDINATES[region_a]
        coord_b = REGION_COORDINATES[region_b]
    except KeyError as exc:  # pragma: no cover - defensive
        raise KeyError(f"unknown region {exc.args[0]!r}") from exc
    distance = _great_circle_km(coord_a, coord_b)
    return 2.0 * distance / _FIBRE_SPEED_KM_PER_S + _FIXED_OVERHEAD_S


@dataclass(frozen=True)
class LatencyModel:
    """One-way delay and bandwidth model used by the link emulator.

    ``wan_bandwidth_bps`` models the per-node WAN egress limit; the paper
    repeatedly notes that available bandwidth between regions limits the
    protocols that concentrate cross-shard traffic on few nodes.
    """

    wan_bandwidth_bps: float = 1.0e9  # ~1 Gbit/s effective per node
    lan_bandwidth_bps: float = 8.0e9
    jitter_fraction: float = 0.05

    def one_way_delay(self, region_a: str, region_b: str) -> float:
        """Propagation delay for a single message between two regions."""
        return region_rtt_seconds(region_a, region_b) / 2.0

    def transmission_delay(self, size_bytes: int, same_region: bool) -> float:
        """Serialisation delay of ``size_bytes`` on the sender's uplink."""
        bandwidth = self.lan_bandwidth_bps if same_region else self.wan_bandwidth_bps
        return (size_bytes * 8.0) / bandwidth

    def message_delay(self, region_a: str, region_b: str, size_bytes: int) -> float:
        """Total one-way delay (propagation + serialisation), without jitter."""
        same = region_a == region_b
        return self.one_way_delay(region_a, region_b) + self.transmission_delay(size_bytes, same)


def rtt_matrix(regions: tuple[str, ...] | list[str]) -> dict[tuple[str, str], float]:
    """Full pairwise RTT matrix for a list of regions (seconds)."""
    return {
        (a, b): region_rtt_seconds(a, b)
        for a in regions
        for b in regions
    }
