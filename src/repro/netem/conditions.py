"""Mutable fault state shared by every transport.

``NetworkConditions`` is the *fault-injection* half of the link model:
message-loss probability, one-directional link blocks (the paper's *no
communication* / *partial communication* cross-shard attacks), and full node
isolation (crash).  It is deliberately separate from the steady-state WAN
emulation in :mod:`repro.netem.policy` -- faults are mutated mid-run by the
:class:`~repro.faults.injector.FaultInjector`, while the emulation policy is
fixed for the lifetime of a deployment.

Historically this class lived in :mod:`repro.sim.network`; it moved here when
the link model was unified across the three execution backends (the socket
transport honours the same object at send time), and is re-exported from its
old home for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

NodeAddress = Hashable


@dataclass
class NetworkConditions:
    """Mutable fault state applied to every message the network carries."""

    drop_probability: float = 0.0
    blocked_links: set[tuple[NodeAddress, NodeAddress]] = field(default_factory=set)
    isolated_nodes: set[NodeAddress] = field(default_factory=set)

    def block_link(self, src: NodeAddress, dst: NodeAddress) -> None:
        self.blocked_links.add((src, dst))

    def unblock_link(self, src: NodeAddress, dst: NodeAddress) -> None:
        self.blocked_links.discard((src, dst))

    def isolate(self, node: NodeAddress) -> None:
        self.isolated_nodes.add(node)

    def restore(self, node: NodeAddress) -> None:
        self.isolated_nodes.discard(node)

    def allows(self, src: NodeAddress, dst: NodeAddress, coin: float) -> bool:
        """Whether a message from ``src`` to ``dst`` is delivered."""
        if src in self.isolated_nodes or dst in self.isolated_nodes:
            return False
        if (src, dst) in self.blocked_links:
            return False
        return coin >= self.drop_probability
