"""Unified link emulation: one WAN model for all three execution backends.

``repro.netem`` owns the entire link model of a deployment -- per-link
one-way delay derived from the region RTT matrix (or an explicit, possibly
asymmetric :class:`DelayMatrix`), jitter, bandwidth/serialisation delay,
steady-state loss, and the injected fault conditions -- behind one seeded,
deterministic decision engine (:class:`LinkEmulator`).  The simulator's
network, the asyncio real-time network, and the TCP socket transport all
consume the same engine, so a geo workload expressed once as a
:class:`NetemPolicy` runs identically (modulo clock) on any backend.
"""

from repro.netem.conditions import NetworkConditions
from repro.netem.emulator import LinkEmulator, NetemStats, region_map_for
from repro.netem.policy import DelayMatrix, LinkSpec, NetemPolicy
from repro.netem.profiles import (
    GEO_PROFILES,
    GeoProfile,
    netem_policy_for,
    profile_by_name,
    regions_for,
)
from repro.netem.regions import LatencyModel, region_rtt_seconds, rtt_matrix

__all__ = [
    "GEO_PROFILES",
    "DelayMatrix",
    "GeoProfile",
    "LatencyModel",
    "LinkEmulator",
    "LinkSpec",
    "NetemPolicy",
    "NetemStats",
    "NetworkConditions",
    "netem_policy_for",
    "profile_by_name",
    "region_map_for",
    "regions_for",
    "region_rtt_seconds",
    "rtt_matrix",
]
