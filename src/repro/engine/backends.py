"""Execution backends: the two clocks a deployment can run on.

An :class:`ExecutionBackend` owns a :class:`~repro.engine.protocols.Scheduler`
and a :class:`~repro.engine.protocols.Transport` and knows how to *drive* them:
run until a predicate holds, run for a stretch of protocol time, report the
current protocol time.  :class:`repro.engine.deployment.Deployment` builds the
replicas and clients against whichever backend it is handed, so every
experiment, benchmark, and example can run on either clock.

* :class:`SimBackend` -- deterministic discrete-event simulation; protocol
  time is virtual, a given seed always produces the same execution.
* :class:`RealTimeBackend` -- asyncio; protocol timers are real timers and
  message delays are real delays, optionally compressed by ``time_scale`` so
  WAN-sized runs finish in wall-clock seconds.  The backend owns a private
  event loop, which keeps construction eager and symmetric with the simulator
  and lets one deployment be driven several times (run, inspect, run again).
* :class:`SocketBackend` -- asyncio over real TCP sockets; messages leave the
  process as canonical-codec frames (:mod:`repro.net`) and protocol time is
  wall-clock time.  One process can host any subset of a deployment's nodes,
  which is what the multi-process launcher builds on.
"""

from __future__ import annotations

import abc
import asyncio
from typing import Callable, Hashable

from repro.engine.protocols import Scheduler, Transport
from repro.errors import ConfigurationError
from repro.net.framing import MAX_FRAME_BYTES
from repro.net.transport import SocketTransport
from repro.netem import LatencyModel, LinkEmulator, NetemPolicy, NetworkConditions
from repro.rt.transport import AsyncNetwork, RealTimeScheduler
from repro.sim.kernel import Simulator
from repro.sim.network import Network


def _resolve_policy(netem: NetemPolicy | None, latency: LatencyModel | None) -> NetemPolicy:
    """One link policy from the two ways callers can spell it.

    ``netem`` carries its own :class:`LatencyModel`, so accepting a separate
    ``latency`` alongside it would silently ignore one of them -- that
    combination is a configuration error, not a precedence question.
    """
    if netem is not None:
        if latency is not None:
            raise ConfigurationError(
                "pass either latency or netem, not both -- a NetemPolicy carries "
                "its own LatencyModel (NetemPolicy(latency=...))"
            )
        return netem
    return NetemPolicy(latency=latency or LatencyModel())


class ExecutionBackend(abc.ABC):
    """A clock + scheduler + transport bundle that can host a deployment."""

    #: Short identifier used by ``--backend`` flags and :func:`backend_by_name`.
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def scheduler(self) -> Scheduler:
        """Timer facility handed to every node of the deployment."""

    @property
    @abc.abstractmethod
    def transport(self) -> Transport:
        """Message fabric handed to every node of the deployment."""

    @property
    def now(self) -> float:
        """Current protocol time in seconds."""
        return self.scheduler.now

    @abc.abstractmethod
    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int | None = None,
    ) -> bool:
        """Drive the backend until ``predicate()`` holds or ``timeout`` protocol
        seconds elapse; returns the final predicate value."""

    @abc.abstractmethod
    def run_for(self, duration: float, max_events: int | None = None) -> float:
        """Drive the backend for ``duration`` protocol seconds; returns ``now``."""

    @abc.abstractmethod
    def run_until_time(self, time: float, max_events: int | None = None) -> float:
        """Drive the backend until absolute protocol time ``time``."""

    def drain(self, max_events: int | None = None) -> float:
        """Drive until quiescent; only meaningful on the deterministic backend."""
        raise ConfigurationError(
            f"backend {self.name!r} has no quiescence notion; pass an explicit duration"
        )

    def close(self) -> None:
        """Release any resources the backend owns (idempotent)."""

    # ------------------------------------------------------------------

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SimBackend(ExecutionBackend):
    """Deterministic discrete-event execution (the figure-regeneration mode)."""

    name = "sim"

    def __init__(
        self,
        *,
        seed: int = 2022,
        latency: LatencyModel | None = None,
        conditions: NetworkConditions | None = None,
        netem: NetemPolicy | None = None,
    ) -> None:
        self.simulator = Simulator(seed=seed)
        emulator = LinkEmulator(
            _resolve_policy(netem, latency),
            conditions or NetworkConditions(),
            seed=seed,
        )
        self.network = Network(self.simulator, emulator=emulator)

    @property
    def scheduler(self) -> Simulator:
        return self.simulator

    @property
    def transport(self) -> Network:
        return self.network

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int | None = 5_000_000,
    ) -> bool:
        deadline = self.simulator.now + timeout
        fired = 0
        while max_events is None or fired < max_events:
            if predicate():
                return True
            if self.simulator.pending_events == 0 or self.simulator.now > deadline:
                break
            self.simulator.step()
            fired += 1
        return predicate()

    def run_for(self, duration: float, max_events: int | None = None) -> float:
        return self.simulator.run(until=self.simulator.now + duration, max_events=max_events)

    def run_until_time(self, time: float, max_events: int | None = None) -> float:
        return self.simulator.run(until=time, max_events=max_events)

    def drain(self, max_events: int | None = None) -> float:
        return self.simulator.run(max_events=max_events)


class _EventLoopBackend(ExecutionBackend):
    """Shared asyncio driving logic: poll a predicate while the loop runs.

    Subclasses own a private event loop (``self._loop``) and a
    ``time_scale`` converting protocol seconds to wall-clock seconds; this
    base provides the three ``run_*`` drivers on top of them, so the
    realtime and socket backends cannot drift apart in deadline or scaling
    semantics.
    """

    #: Wall-clock pause between predicate polls while driving the loop.
    POLL_INTERVAL_S = 0.002

    _loop: asyncio.AbstractEventLoop
    time_scale: float

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int | None = None,
    ) -> bool:
        async def _drive() -> bool:
            wall_deadline = self._loop.time() + timeout * self.time_scale
            while not predicate():
                if self._loop.time() >= wall_deadline:
                    break
                await asyncio.sleep(self.POLL_INTERVAL_S)
            return predicate()

        return self._loop.run_until_complete(_drive())

    def run_for(self, duration: float, max_events: int | None = None) -> float:
        async def _sleep() -> None:
            await asyncio.sleep(duration * self.time_scale)

        self._loop.run_until_complete(_sleep())
        return self.now

    def run_until_time(self, time: float, max_events: int | None = None) -> float:
        remaining = time - self.now
        if remaining > 0:
            self.run_for(remaining)
        return self.now


class RealTimeBackend(_EventLoopBackend):
    """Asyncio execution: the same protocol code on a real clock.

    ``time_scale`` compresses every timer delay and ``latency_scale`` every
    network delay (both default to 0.05, i.e. 20x compression), which keeps
    demo workloads within a couple of wall-clock seconds while preserving
    relative timer ordering.  Protocol time (``now``, latencies, timeouts) is
    always reported *unscaled*, so results are directly comparable with the
    simulator's.
    """

    name = "realtime"

    def __init__(
        self,
        *,
        seed: int = 2022,
        latency: LatencyModel | None = None,
        conditions: NetworkConditions | None = None,
        netem: NetemPolicy | None = None,
        time_scale: float = 0.05,
        latency_scale: float | None = None,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._closed = False
        self.time_scale = time_scale
        self._scheduler = RealTimeScheduler(self._loop, seed=seed, time_scale=time_scale)
        emulator = LinkEmulator(
            _resolve_policy(netem, latency),
            conditions or NetworkConditions(),
            seed=seed,
        )
        self._network = AsyncNetwork(
            self._scheduler,
            emulator=emulator,
            latency_scale=latency_scale if latency_scale is not None else time_scale,
        )

    @property
    def scheduler(self) -> RealTimeScheduler:
        return self._scheduler

    @property
    def transport(self) -> AsyncNetwork:
        return self._network

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._loop.close()


class SocketBackend(_EventLoopBackend):
    """Real TCP execution: messages cross the network as codec frames.

    The backend owns an event loop, a :class:`RealTimeScheduler` (protocol
    timers are real timers; ``time_scale`` defaults to 1.0 -- on sockets,
    protocol time *is* wall-clock time, so throughput and latency numbers
    are genuine), and a :class:`~repro.net.transport.SocketTransport` bound
    to ``listen``.  ``address_map`` pins remote replicas to endpoints;
    addresses missing from it (clients) route to ``default_endpoint``.

    Constructed by name (``--backend socket``) it hosts every node locally
    with ``wire_loopback`` on, so even a single-process deployment pushes
    every message through encode -> frame -> TCP -> decode -> MAC-verify via
    its own listening socket.  The listening socket is bound eagerly during
    construction (nodes enqueue wire traffic before the loop first runs), so
    ``listen_endpoint`` is valid immediately.
    """

    name = "socket"

    def __init__(
        self,
        *,
        listen: tuple[str, int] = ("127.0.0.1", 0),
        address_map: dict[Hashable, tuple[str, int]] | None = None,
        default_endpoint: tuple[str, int] | None = None,
        seed: int = 2022,
        time_scale: float = 1.0,
        max_frame: int = MAX_FRAME_BYTES,
        wire_loopback: bool = True,
        conditions: NetworkConditions | None = None,
        netem: NetemPolicy | None = None,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._closed = False
        self.time_scale = time_scale
        self._scheduler = RealTimeScheduler(self._loop, seed=seed, time_scale=time_scale)
        # ``netem=None`` keeps the historical plain-loopback behaviour: the
        # emulator only injects faults; a geo policy adds real WAN delays.
        self._transport = SocketTransport(
            self._scheduler,
            self._loop,
            listen=listen,
            address_map=address_map,
            default_endpoint=default_endpoint,
            max_frame=max_frame,
            wire_loopback=wire_loopback,
            emulator=LinkEmulator(netem, conditions, seed=seed),
        )
        self._loop.run_until_complete(self._transport.start())

    @property
    def scheduler(self) -> RealTimeScheduler:
        return self._scheduler

    @property
    def transport(self) -> SocketTransport:
        return self._transport

    @property
    def listen_endpoint(self) -> tuple[str, int]:
        return self._transport.bound_endpoint

    def run_coroutine(self, coro):
        """Run an auxiliary coroutine (control calls, teardown) on the loop."""
        return self._loop.run_until_complete(coro)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._loop.run_until_complete(self._transport.aclose())
            self._loop.close()


#: Registry of the built-in backends, keyed by their ``--backend`` name.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    SimBackend.name: SimBackend,
    RealTimeBackend.name: RealTimeBackend,
    SocketBackend.name: SocketBackend,
}

#: Construction knobs each backend understands when built by name (everything
#: else a uniform call site passes is silently dropped).
_BACKEND_KWARGS: dict[str, tuple[str, ...]] = {
    SimBackend.name: ("seed", "latency", "conditions", "netem"),
    RealTimeBackend.name: (
        "seed",
        "latency",
        "conditions",
        "netem",
        "time_scale",
        "latency_scale",
    ),
    SocketBackend.name: (
        "seed",
        "conditions",
        "netem",
        "listen",
        "address_map",
        "default_endpoint",
        "max_frame",
        "wire_loopback",
    ),
}


def backend_by_name(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a built-in backend from its ``--backend`` name.

    Keyword arguments not understood by the selected backend (e.g.
    ``time_scale`` for the simulator, latency models for the socket backend)
    are silently dropped, so call sites can pass one uniform set of knobs.
    """
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; known: {sorted(BACKENDS)}"
        )
    allowed = _BACKEND_KWARGS[name]
    kwargs = {k: v for k, v in kwargs.items() if k in allowed}
    return BACKENDS[name](**kwargs)
