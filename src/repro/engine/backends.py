"""Execution backends: the two clocks a deployment can run on.

An :class:`ExecutionBackend` owns a :class:`~repro.engine.protocols.Scheduler`
and a :class:`~repro.engine.protocols.Transport` and knows how to *drive* them:
run until a predicate holds, run for a stretch of protocol time, report the
current protocol time.  :class:`repro.engine.deployment.Deployment` builds the
replicas and clients against whichever backend it is handed, so every
experiment, benchmark, and example can run on either clock.

* :class:`SimBackend` -- deterministic discrete-event simulation; protocol
  time is virtual, a given seed always produces the same execution.
* :class:`RealTimeBackend` -- asyncio; protocol timers are real timers and
  message delays are real delays, optionally compressed by ``time_scale`` so
  WAN-sized runs finish in wall-clock seconds.  The backend owns a private
  event loop, which keeps construction eager and symmetric with the simulator
  and lets one deployment be driven several times (run, inspect, run again).
"""

from __future__ import annotations

import abc
import asyncio
from typing import Callable

from repro.engine.protocols import Scheduler, Transport
from repro.errors import ConfigurationError
from repro.rt.transport import AsyncNetwork, RealTimeScheduler
from repro.sim.kernel import Simulator
from repro.sim.network import Network, NetworkConditions
from repro.sim.regions import LatencyModel


class ExecutionBackend(abc.ABC):
    """A clock + scheduler + transport bundle that can host a deployment."""

    #: Short identifier used by ``--backend`` flags and :func:`backend_by_name`.
    name: str = "abstract"

    @property
    @abc.abstractmethod
    def scheduler(self) -> Scheduler:
        """Timer facility handed to every node of the deployment."""

    @property
    @abc.abstractmethod
    def transport(self) -> Transport:
        """Message fabric handed to every node of the deployment."""

    @property
    def now(self) -> float:
        """Current protocol time in seconds."""
        return self.scheduler.now

    @abc.abstractmethod
    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int | None = None,
    ) -> bool:
        """Drive the backend until ``predicate()`` holds or ``timeout`` protocol
        seconds elapse; returns the final predicate value."""

    @abc.abstractmethod
    def run_for(self, duration: float, max_events: int | None = None) -> float:
        """Drive the backend for ``duration`` protocol seconds; returns ``now``."""

    @abc.abstractmethod
    def run_until_time(self, time: float, max_events: int | None = None) -> float:
        """Drive the backend until absolute protocol time ``time``."""

    def drain(self, max_events: int | None = None) -> float:
        """Drive until quiescent; only meaningful on the deterministic backend."""
        raise ConfigurationError(
            f"backend {self.name!r} has no quiescence notion; pass an explicit duration"
        )

    def close(self) -> None:
        """Release any resources the backend owns (idempotent)."""

    # ------------------------------------------------------------------

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SimBackend(ExecutionBackend):
    """Deterministic discrete-event execution (the figure-regeneration mode)."""

    name = "sim"

    def __init__(
        self,
        *,
        seed: int = 2022,
        latency: LatencyModel | None = None,
        conditions: NetworkConditions | None = None,
    ) -> None:
        self.simulator = Simulator(seed=seed)
        self.network = Network(
            self.simulator, latency=latency, conditions=conditions or NetworkConditions()
        )

    @property
    def scheduler(self) -> Simulator:
        return self.simulator

    @property
    def transport(self) -> Network:
        return self.network

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int | None = 5_000_000,
    ) -> bool:
        deadline = self.simulator.now + timeout
        fired = 0
        while max_events is None or fired < max_events:
            if predicate():
                return True
            if self.simulator.pending_events == 0 or self.simulator.now > deadline:
                break
            self.simulator.step()
            fired += 1
        return predicate()

    def run_for(self, duration: float, max_events: int | None = None) -> float:
        return self.simulator.run(until=self.simulator.now + duration, max_events=max_events)

    def run_until_time(self, time: float, max_events: int | None = None) -> float:
        return self.simulator.run(until=time, max_events=max_events)

    def drain(self, max_events: int | None = None) -> float:
        return self.simulator.run(max_events=max_events)


class RealTimeBackend(ExecutionBackend):
    """Asyncio execution: the same protocol code on a real clock.

    ``time_scale`` compresses every timer delay and ``latency_scale`` every
    network delay (both default to 0.05, i.e. 20x compression), which keeps
    demo workloads within a couple of wall-clock seconds while preserving
    relative timer ordering.  Protocol time (``now``, latencies, timeouts) is
    always reported *unscaled*, so results are directly comparable with the
    simulator's.
    """

    name = "realtime"

    #: Wall-clock pause between predicate polls while driving the loop.
    POLL_INTERVAL_S = 0.002

    def __init__(
        self,
        *,
        seed: int = 2022,
        latency: LatencyModel | None = None,
        conditions: NetworkConditions | None = None,
        time_scale: float = 0.05,
        latency_scale: float | None = None,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._closed = False
        self.time_scale = time_scale
        self._scheduler = RealTimeScheduler(self._loop, seed=seed, time_scale=time_scale)
        self._network = AsyncNetwork(
            self._scheduler,
            latency=latency or LatencyModel(),
            conditions=conditions or NetworkConditions(),
            latency_scale=latency_scale if latency_scale is not None else time_scale,
        )

    @property
    def scheduler(self) -> RealTimeScheduler:
        return self._scheduler

    @property
    def transport(self) -> AsyncNetwork:
        return self._network

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float,
        max_events: int | None = None,
    ) -> bool:
        async def _drive() -> bool:
            wall_deadline = self._loop.time() + timeout * self.time_scale
            while not predicate():
                if self._loop.time() >= wall_deadline:
                    break
                await asyncio.sleep(self.POLL_INTERVAL_S)
            return predicate()

        return self._loop.run_until_complete(_drive())

    def run_for(self, duration: float, max_events: int | None = None) -> float:
        async def _sleep() -> None:
            await asyncio.sleep(duration * self.time_scale)

        self._loop.run_until_complete(_sleep())
        return self.now

    def run_until_time(self, time: float, max_events: int | None = None) -> float:
        remaining = time - self.now
        if remaining > 0:
            self.run_for(remaining)
        return self.now

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._loop.close()


#: Registry of the built-in backends, keyed by their ``--backend`` name.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    SimBackend.name: SimBackend,
    RealTimeBackend.name: RealTimeBackend,
}


def backend_by_name(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a built-in backend from its ``--backend`` name.

    Keyword arguments not understood by the selected backend (e.g.
    ``time_scale`` for the simulator) are silently dropped, so call sites can
    pass one uniform set of knobs.
    """
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; known: {sorted(BACKENDS)}"
        )
    if name == SimBackend.name:
        kwargs = {k: v for k, v in kwargs.items() if k in ("seed", "latency", "conditions")}
    return BACKENDS[name](**kwargs)
