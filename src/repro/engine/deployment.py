"""Deployment: one harness for every execution backend.

``Deployment.build`` wires together everything a protocol run needs --
execution backend (scheduler + transport), keystore, directory, one replica
object per configured replica, and any number of clients -- and offers the
convenience helpers used by the examples, the integration tests, the
experiments, and the protocol-mode benchmarks.  The backend is pluggable:

    deployment = Deployment.build(config, backend="sim")        # deterministic
    deployment = Deployment.build(config, backend="realtime")   # asyncio

Workload runs on either backend return the same :class:`RunResult`, so a
figure or demo written against ``Deployment`` can switch clocks with a
``--backend`` flag and nothing else.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.common import codec
from repro.common.crypto import KeyStore
from repro.common.types import ReplicaId
from repro.config import SystemConfig
from repro.consensus.directory import Directory
from repro.consensus.pbft.client import Client
from repro.consensus.pbft.replica import PbftReplica
from repro.core.replica import RingBftReplica
from repro.engine.backends import ExecutionBackend, backend_by_name
from repro.engine.protocols import Scheduler, Transport
from repro.errors import ConfigurationError
from repro.metrics.collector import percentile, summarize_pipeline
from repro.netem import LatencyModel, NetemPolicy, region_map_for
from repro.storage.kvstore import ShardedKeyValueStore
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class RunResult:
    """Unified outcome of one workload run, identical across backends.

    ``duration_s`` is protocol time (virtual seconds in the simulator,
    unscaled seconds in real time), so throughput numbers are directly
    comparable between backends; ``wall_clock_s`` additionally reports how
    long the run took on the host.
    """

    backend: str
    submitted: int
    completed: int
    duration_s: float
    wall_clock_s: float
    latencies: tuple[float, ...] = ()
    message_counts: dict[str, int] = field(default_factory=dict)
    total_messages: int = 0
    ledgers_consistent: bool | None = None
    #: Hit/miss counters of the hot-path caches for this run window:
    #: ``verify``/``certificate`` (the keystore's signature memo LRUs) and
    #: ``payload``/``digest`` (the codec's per-object memoisation).
    cache_stats: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Proposal-window occupancy aggregated over this process's replicas:
    #: peak open slots, batches proposed, average adaptive batch size, and
    #: the mean time a request queued at its primary before proposal.
    pipeline_stats: dict[str, float | int] = field(default_factory=dict)

    @property
    def all_completed(self) -> bool:
        return self.completed == self.submitted

    @property
    def avg_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def p50_latency(self) -> float:
        return self._latency_percentile(0.50)

    @property
    def p99_latency(self) -> float:
        return self._latency_percentile(0.99)

    @property
    def throughput_tps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def wall_clock_seconds(self) -> float:
        """Backwards-compatible alias for ``wall_clock_s``."""
        return self.wall_clock_s

    def _latency_percentile(self, fraction: float) -> float:
        return percentile(sorted(self.latencies), fraction)

    def as_row(self) -> dict:
        """The run as one experiment-table row."""
        return {
            "backend": self.backend,
            "submitted": self.submitted,
            "completed": self.completed,
            "duration_s": round(self.duration_s, 3),
            "throughput_tps": round(self.throughput_tps, 1),
            "avg_latency_s": round(self.avg_latency, 4),
            "p99_latency_s": round(self.p99_latency, 4),
            "messages": self.total_messages,
        }


@dataclass
class Deployment:
    """A running deployment of one protocol on one execution backend."""

    config: SystemConfig
    directory: Directory
    backend: ExecutionBackend
    keystore: KeyStore
    replicas: dict[ReplicaId, PbftReplica]
    clients: dict[str, Client] = field(default_factory=dict)
    table: ShardedKeyValueStore | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        config: SystemConfig,
        *,
        backend: str | ExecutionBackend = "sim",
        replica_class: type[PbftReplica] = RingBftReplica,
        num_clients: int = 1,
        batch_size: int | None = None,
        latency: LatencyModel | None = None,
        netem: NetemPolicy | None = None,
        seed: int = 2022,
        preload_table: bool = True,
        time_scale: float = 0.05,
        latency_scale: float | None = None,
        local_replicas: "set[ReplicaId] | frozenset[ReplicaId] | None" = None,
    ) -> "Deployment":
        """Build a deployment running ``replica_class`` on every replica.

        ``backend`` is either a backend name (``"sim"`` / ``"realtime"`` /
        ``"socket"``) or an already-constructed :class:`ExecutionBackend`;
        ``time_scale`` and ``latency_scale`` only apply to the real-time
        backend.

        ``netem`` is the shared link-emulation policy
        (:class:`~repro.netem.NetemPolicy`) applied to every backend's
        transport; the region of *every* configured replica (hosted here or
        not) is threaded into the transport's
        :class:`~repro.netem.LinkEmulator`, so a socket process models the
        WAN delay of links whose far end lives in another OS process.

        ``local_replicas`` restricts which of the configured replicas this
        process actually instantiates (the multi-process socket launcher
        gives each OS process one replica and the coordinator none --
        ``local_replicas=set()``); the directory still describes the full
        deployment, so routing and quorum arithmetic are unchanged.  With the
        default ``None`` every replica is hosted in-process.
        """
        if isinstance(backend, str):
            backend = backend_by_name(
                backend,
                seed=seed,
                latency=latency,
                netem=netem,
                time_scale=time_scale,
                latency_scale=latency_scale,
            )
        directory = Directory.from_config(config)
        emulator = getattr(backend.transport, "emulator", None)
        if emulator is not None:
            # Every configured replica -- not just the locally-hosted subset
            # -- so the socket transport knows the region of remote peers it
            # only ever dials.
            emulator.assign_regions(region_map_for(directory, config.shards))
        keystore = KeyStore()
        table = ShardedKeyValueStore(config.shard_ids, config.workload.num_records)

        replicas: dict[ReplicaId, PbftReplica] = {}
        for shard in config.shards:
            shard_members = [
                replica_id
                for replica_id in directory.replicas_of(shard.shard_id)
                if local_replicas is None or replica_id in local_replicas
            ]
            if not shard_members:
                continue
            partition = table.build_partition(shard.shard_id) if preload_table else None
            for replica_id in shard_members:
                replicas[replica_id] = replica_class(
                    replica_id,
                    directory,
                    backend.transport,
                    keystore,
                    batch_size=batch_size or 1,
                    initial_records=partition,
                )

        deployment = cls(
            config=config,
            directory=directory,
            backend=backend,
            keystore=keystore,
            replicas=replicas,
            table=table,
        )
        for i in range(num_clients):
            deployment.add_client(f"client-{i}")
        return deployment

    def add_client(self, client_id: str, region: str = "local") -> Client:
        if client_id in self.clients:
            raise ConfigurationError(f"client {client_id!r} already exists")
        client = Client(
            client_id, self.directory, self.backend.transport, self.keystore, region=region
        )
        self.clients[client_id] = client
        return client

    # ------------------------------------------------------------------
    # backend access
    # ------------------------------------------------------------------

    @property
    def scheduler(self) -> Scheduler:
        return self.backend.scheduler

    @property
    def transport(self) -> Transport:
        return self.backend.transport

    @property
    def simulator(self) -> Scheduler:
        """The backend scheduler (named after the historical sim-only field)."""
        return self.backend.scheduler

    @property
    def network(self) -> Transport:
        """The backend transport (named after the historical sim-only field)."""
        return self.backend.transport

    @property
    def now(self) -> float:
        return self.backend.now

    def close(self) -> None:
        """Release backend resources (the real-time backend owns a loop)."""
        self.backend.close()

    def __enter__(self) -> "Deployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # access helpers
    # ------------------------------------------------------------------

    def replica(self, shard: int, index: int) -> PbftReplica:
        return self.replicas[ReplicaId(shard=shard, index=index)]

    def shard_replicas(self, shard: int) -> list[PbftReplica]:
        """The replicas of ``shard`` hosted by *this* process (all of them in
        a single-process deployment, a subset under the socket launcher)."""
        return [
            self.replicas[r] for r in self.directory.replicas_of(shard) if r in self.replicas
        ]

    def primary_of(self, shard: int, view: int = 0) -> PbftReplica:
        return self.replicas[self.directory.primary_of(shard, view)]

    @property
    def client(self) -> Client:
        """The first client (convenience for single-client scenarios)."""
        return next(iter(self.clients.values()))

    # ------------------------------------------------------------------
    # driving workloads
    # ------------------------------------------------------------------

    def submit(self, txn: Transaction, client_id: str | None = None) -> None:
        """Submit a transaction through a client (defaults to the first client)."""
        client = self.clients[client_id] if client_id else self.client
        client.submit(txn)

    def run(self, duration: float | None = None, max_events: int | None = 2_000_000) -> float:
        """Drive the backend until quiescent (sim only), absolute protocol time
        ``duration``, or ``max_events``."""
        if duration is None:
            return self.backend.drain(max_events=max_events)
        return self.backend.run_until_time(duration, max_events=max_events)

    def run_until_clients_done(
        self, timeout: float = 120.0, max_events: int = 5_000_000
    ) -> bool:
        """Drive until every client transaction completed or ``timeout`` protocol seconds."""
        return self.backend.run_until(
            lambda: all(client.outstanding == 0 for client in self.clients.values()),
            timeout,
            max_events=max_events,
        )

    def run_workload(
        self,
        transactions: list[Transaction],
        timeout: float = 120.0,
        *,
        max_events: int = 5_000_000,
        check_consistency: bool = True,
    ) -> RunResult:
        """Submit ``transactions`` round-robin over the clients and await completion.

        Returns the unified :class:`RunResult` regardless of backend.
        ``timeout`` is in protocol seconds.
        """
        started_at = self.backend.now
        wall_started = _time.perf_counter()
        completed_before = self.completed_transactions()
        message_counts_before = self.message_counts()
        cache_stats_before = self.cache_stats_snapshot()
        client_ids = list(self.clients)
        for i, txn in enumerate(transactions):
            self.submit(txn, client_ids[i % len(client_ids)])
        self.run_until_clients_done(timeout, max_events=max_events)
        return self.collect_result(
            submitted=len(transactions),
            started_at=started_at,
            wall_started=wall_started,
            completed_before=completed_before,
            message_counts_before=message_counts_before,
            cache_stats_before=cache_stats_before,
            check_consistency=check_consistency,
        )

    def cache_stats_snapshot(self) -> dict:
        """Snapshot of every hot-path cache counter, taken at a window start.

        Pass the result to :meth:`collect_result` as ``cache_stats_before`` so
        the reported ``RunResult.cache_stats`` covers only that run window --
        both the process-wide codec memo counters and the deployment's
        verification LRUs are windowed the same way.
        """
        return {
            "codec": codec.STATS.snapshot(),
            "keystore": self.keystore.cache_stats(),
        }

    def _windowed_cache_stats(self, before: dict | None) -> dict[str, dict[str, int]]:
        keystore_before = (before or {}).get("keystore", {})
        cache_stats: dict[str, dict[str, int]] = {}
        for name, stats in self.keystore.cache_stats().items():
            if not stats:
                cache_stats[name] = {}
                continue
            base = keystore_before.get(name, {})
            windowed = dict(stats)
            windowed["hits"] = stats.get("hits", 0) - base.get("hits", 0)
            windowed["misses"] = stats.get("misses", 0) - base.get("misses", 0)
            cache_stats[name] = windowed
        cache_stats.update(codec.STATS.delta_since((before or {}).get("codec")))
        return cache_stats

    def collect_result(
        self,
        *,
        submitted: int,
        started_at: float,
        wall_started: float,
        completed_before: int = 0,
        message_counts_before: dict[str, int] | None = None,
        cache_stats_before: dict | None = None,
        check_consistency: bool = True,
    ) -> RunResult:
        """Snapshot the deployment into a :class:`RunResult` for one run window.

        ``completed_before`` and ``message_counts_before`` window the counters
        so that driving one deployment several times reports per-run numbers,
        not cumulative deployment totals.
        """
        latencies = tuple(
            record.latency
            for client in self.clients.values()
            for record in client.completed
            if record.submitted_at >= started_at
        )
        counts = self.message_counts()
        if message_counts_before:
            counts = {
                name: total - message_counts_before.get(name, 0)
                for name, total in counts.items()
                if total - message_counts_before.get(name, 0)
            }
        consistent: bool | None = None
        if check_consistency:
            consistent = all(self.ledgers_consistent(s) for s in self.config.shard_ids)
        cache_stats = self._windowed_cache_stats(cache_stats_before)
        return RunResult(
            backend=self.backend.name,
            submitted=submitted,
            completed=self.completed_transactions() - completed_before,
            duration_s=max(self.backend.now - started_at, 0.0),
            wall_clock_s=_time.perf_counter() - wall_started,
            latencies=latencies,
            message_counts=counts,
            total_messages=sum(counts.values()),
            ledgers_consistent=consistent,
            cache_stats=cache_stats,
            pipeline_stats=summarize_pipeline(self.replicas.values()),
        )

    # ------------------------------------------------------------------
    # deployment-wide metrics and invariants
    # ------------------------------------------------------------------

    def completed_transactions(self) -> int:
        return sum(client.completed_count for client in self.clients.values())

    def latencies(self) -> list[float]:
        values: list[float] = []
        for client in self.clients.values():
            values.extend(client.latencies())
        return values

    def total_messages(self) -> int:
        return sum(node.stats.total_messages for node in self.replicas.values())

    def message_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for node in self.replicas.values():
            for name, count in node.stats.sent_count.items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def retained_state_totals(self) -> dict[str, int]:
        """Deployment-wide retained-state gauges (summed over all replicas).

        Sampled periodically by the sustained-load harness to prove that
        steady-state memory is bounded by O(checkpoint_interval + in-flight)
        rather than O(total committed work).
        """
        totals: dict[str, int] = {}
        for replica in self.replicas.values():
            for gauge, value in replica.retained_state().items():
                totals[gauge] = totals.get(gauge, 0) + value
        return totals

    def committed_batch_total(self) -> int:
        """Total batches committed across all replicas (cumulative work gauge)."""
        return sum(replica.committed_batch_count for replica in self.replicas.values())

    def set_gc_enabled(self, enabled: bool) -> None:
        """Toggle checkpoint-driven garbage collection on every replica."""
        for replica in self.replicas.values():
            replica.gc_enabled = enabled

    def dropped_request_counts(self) -> dict[str, int]:
        """Client requests replicas dropped as unroutable, by reason."""
        totals: dict[str, int] = {}
        for node in self.replicas.values():
            for reason, count in node.stats.dropped_requests.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def ledgers_consistent(self, shard: int) -> bool:
        """Every non-crashed replica of ``shard`` holds a ledger with the same blocks.

        Replicas that lag (fewer blocks) are compared on their common prefix,
        mirroring the paper's non-divergence property (identical order, some
        replicas may be behind until the next checkpoint).
        """
        chains = [
            [block.block_hash() for block in replica.ledger.blocks()]
            for replica in self.shard_replicas(shard)
            if not replica.crashed
        ]
        if not chains:
            return True
        for a in chains:
            for b in chains:
                prefix = min(len(a), len(b))
                if a[:prefix] != b[:prefix]:
                    return False
        return True

    def executed_in_same_order(self, shard: int, txn_ids: set[str]) -> bool:
        """All replicas of ``shard`` executed the given transactions in one order."""
        orders = {
            tuple(replica.ledger.commit_order(txn_ids))
            for replica in self.shard_replicas(shard)
            if not replica.crashed and replica.executed_txn_count > 0
        }
        return len(orders) <= 1
