"""Pluggable execution engine: one harness, two clocks.

The engine package decouples *what* a deployment runs (replicas, clients,
workloads) from *how* it is executed (deterministic simulation vs asyncio
real time).  See :mod:`repro.engine.protocols` for the structural interfaces,
:mod:`repro.engine.backends` for the two built-in backends, and
:mod:`repro.engine.deployment` for the unified harness.
"""

from repro.engine.backends import (
    BACKENDS,
    ExecutionBackend,
    RealTimeBackend,
    SimBackend,
    SocketBackend,
    backend_by_name,
)
from repro.engine.deployment import Deployment, RunResult
from repro.engine.driver import (
    OpenLoopWorkloadDriver,
    PoissonSaturationDriver,
    SustainedLoadDriver,
    WorkloadDriver,
    run_protocol_workload,
    run_sustained_load,
)
from repro.engine.protocols import Clock, Scheduler, TimerCancelHandle, Transport

__all__ = [
    "BACKENDS",
    "Clock",
    "Deployment",
    "ExecutionBackend",
    "OpenLoopWorkloadDriver",
    "PoissonSaturationDriver",
    "RealTimeBackend",
    "RunResult",
    "Scheduler",
    "SimBackend",
    "SocketBackend",
    "SustainedLoadDriver",
    "TimerCancelHandle",
    "Transport",
    "WorkloadDriver",
    "backend_by_name",
    "run_protocol_workload",
    "run_sustained_load",
]
