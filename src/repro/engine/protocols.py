"""Structural protocols every execution backend must provide.

The protocol classes (``PbftReplica``, its subclasses, and ``Client``) touch
their environment through three narrow surfaces only:

* a :class:`Clock` -- ``now`` in *protocol seconds* (virtual seconds in the
  simulator, scaled wall-clock seconds in real time);
* a :class:`Scheduler` -- one-shot timers plus a deterministic random source;
* a :class:`Transport` -- node registry and message delivery with fault
  conditions.

Anything implementing these three protocols can host the unmodified protocol
code, which is what makes the execution engine pluggable (the same pattern
Hyperledger Sawtooth uses for dynamic consensus engines).  The two built-in
implementations are the deterministic discrete-event simulator
(:class:`repro.sim.kernel.Simulator` + :class:`repro.sim.network.Network`)
and the asyncio real-time stack (:class:`repro.rt.transport.RealTimeScheduler`
+ :class:`repro.rt.transport.AsyncNetwork`).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Hashable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.messages import Message
    from repro.netem.conditions import NetworkConditions
    from repro.sim.node import Node


@runtime_checkable
class TimerCancelHandle(Protocol):
    """Handle returned by :meth:`Scheduler.schedule`; allows cancellation."""

    def cancel(self) -> None: ...

    @property
    def cancelled(self) -> bool: ...

    @property
    def fire_time(self) -> float: ...


@runtime_checkable
class Clock(Protocol):
    """A monotonically increasing protocol-time clock."""

    @property
    def now(self) -> float: ...


@runtime_checkable
class Scheduler(Protocol):
    """Clock plus one-shot timers and a shared random source."""

    @property
    def now(self) -> float: ...

    @property
    def rng(self) -> random.Random: ...

    def schedule(self, delay: float, callback, *args) -> TimerCancelHandle: ...

    def schedule_at(self, time: float, callback, *args) -> TimerCancelHandle: ...


@runtime_checkable
class Transport(Protocol):
    """Message fabric connecting the nodes of one deployment."""

    conditions: "NetworkConditions"

    @property
    def simulator(self) -> Scheduler: ...

    def register(self, node: "Node") -> None: ...

    def node(self, address: Hashable) -> "Node": ...

    def known_addresses(self) -> tuple[Hashable, ...]: ...

    def send(self, src: Hashable, dst: Hashable, message: "Message") -> None: ...

    def multicast(self, src: Hashable, dsts, message: "Message") -> None: ...
