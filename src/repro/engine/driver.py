"""Backend-agnostic workload driving.

:class:`WorkloadDriver` keeps a fixed window of transactions in flight per
client until a total completes (closed loop) -- the classical way to saturate
a consensus pipeline -- or injects at a fixed offered rate (open loop).  It
only talks to the deployment through the :class:`~repro.engine.protocols`
surfaces (``scheduler.schedule`` for its refill poll, ``backend.run_until``
to drive), so the exact same driver code runs on the simulator and on the
asyncio real-time stack, and every run returns the unified
:class:`~repro.engine.deployment.RunResult`.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.deployment import Deployment, RunResult
from repro.metrics.collector import RetainedStateSeries

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.workloads.ycsb import YcsbWorkloadGenerator


@dataclass
class WorkloadDriver:
    """Closed-loop driver: ``window`` transactions outstanding per client."""

    deployment: Deployment
    generator: "YcsbWorkloadGenerator"
    total: int
    window: int = 4
    poll_interval: float = 0.05
    submitted: int = 0
    _client_ids: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._client_ids = list(self.deployment.clients)

    @property
    def completed(self) -> int:
        return self.deployment.completed_transactions()

    def start(self) -> None:
        """Prime every client's window and arm the refill poll."""
        for client_id in self._client_ids:
            for _ in range(self.window):
                self._submit_next(client_id)
        self._arm_poll()

    def _submit_next(self, client_id: str) -> None:
        if self.submitted >= self.total:
            return
        txn = self.generator.generate(1, client_id)[0]
        self.deployment.submit(txn, client_id)
        self.submitted += 1

    def _arm_poll(self) -> None:
        self.deployment.scheduler.schedule(self.poll_interval, self._poll)

    def _poll(self) -> None:
        """Refill client windows as transactions complete."""
        if self.completed >= self.total:
            return
        for client_id in self._client_ids:
            client = self.deployment.clients[client_id]
            while client.outstanding < self.window and self.submitted < self.total:
                self._submit_next(client_id)
        self._arm_poll()

    def run(self, timeout: float = 300.0, *, check_consistency: bool = True) -> RunResult:
        """Drive the workload until ``total`` transactions complete (or timeout)."""
        started_at = self.deployment.now
        wall_started = _time.perf_counter()
        completed_before = self.completed
        message_counts_before = self.deployment.message_counts()
        cache_stats_before = self.deployment.cache_stats_snapshot()
        target = completed_before + self.total
        self.start()
        self.deployment.backend.run_until(lambda: self.completed >= target, timeout)
        return self.deployment.collect_result(
            submitted=self.submitted,
            started_at=started_at,
            wall_started=wall_started,
            completed_before=completed_before,
            message_counts_before=message_counts_before,
            cache_stats_before=cache_stats_before,
            check_consistency=check_consistency,
        )


@dataclass
class OpenLoopWorkloadDriver:
    """Open-loop driver: submits at ``rate_per_second`` regardless of completions."""

    deployment: Deployment
    generator: "YcsbWorkloadGenerator"
    rate_per_second: float
    duration: float
    submitted: int = 0

    def start(self) -> None:
        """Schedule every submission over the injection window up front."""
        interval = 1.0 / self.rate_per_second
        client_ids = list(self.deployment.clients)
        total = int(self.rate_per_second * self.duration)
        for i in range(total):
            client_id = client_ids[i % len(client_ids)]
            self.deployment.scheduler.schedule(i * interval, self._make_submit(client_id))

    def _make_submit(self, client_id: str):
        def _submit() -> None:
            txn = self.generator.generate(1, client_id)[0]
            self.deployment.submit(txn, client_id)
            self.submitted += 1

        return _submit

    def run(self, extra_drain: float = 30.0, *, check_consistency: bool = True) -> RunResult:
        """Inject for ``duration`` protocol seconds, then drain the backlog."""
        started_at = self.deployment.now
        wall_started = _time.perf_counter()
        completed_before = self.deployment.completed_transactions()
        message_counts_before = self.deployment.message_counts()
        cache_stats_before = self.deployment.cache_stats_snapshot()
        self.start()
        self.deployment.backend.run_until_time(started_at + self.duration + extra_drain)
        return self.deployment.collect_result(
            submitted=self.submitted,
            started_at=started_at,
            wall_started=wall_started,
            completed_before=completed_before,
            message_counts_before=message_counts_before,
            cache_stats_before=cache_stats_before,
            check_consistency=check_consistency,
        )


@dataclass
class SustainedLoadDriver:
    """Open-loop Poisson driver sustained across checkpoint intervals.

    Injects transactions with exponential inter-arrival times at
    ``rate_per_second`` until every replica's *stable* checkpoint reaches
    ``checkpoint_intervals`` full intervals, sampling the deployment's
    retained-state gauges every ``sample_interval`` protocol seconds along the
    way.  Because arrivals are scheduled lazily (each one schedules the next)
    the driver itself holds O(1) state no matter how long the run is, and
    because it only talks to the deployment through the scheduler/backend
    protocols it runs unchanged on the simulator and the real-time stack.
    """

    deployment: Deployment
    generator: "YcsbWorkloadGenerator"
    rate_per_second: float
    checkpoint_intervals: int
    seed: int = 2022
    sample_interval: float = 1.0
    max_duration: float = 600.0
    drain: float = 10.0
    submitted: int = 0
    series: RetainedStateSeries = field(default_factory=RetainedStateSeries)
    _rng: random.Random = field(init=False, repr=False)
    _client_ids: list[str] = field(default_factory=list, repr=False)
    _next_client: int = 0
    _started_at: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if self.checkpoint_intervals <= 0:
            raise ValueError("checkpoint_intervals must be positive")
        self._rng = random.Random(self.seed)
        self._client_ids = list(self.deployment.clients)

    # -- progress ----------------------------------------------------------

    @property
    def target_sequence(self) -> int:
        return self.checkpoint_intervals * self.deployment.config.timers.checkpoint_interval

    def stable_floor(self) -> int:
        """The lowest stable-checkpoint sequence across live replicas."""
        stables = [
            replica.checkpoints.last_stable_sequence
            for replica in self.deployment.replicas.values()
            if not replica.crashed
        ]
        return min(stables, default=0)

    def _target_reached(self) -> bool:
        return self.stable_floor() >= self.target_sequence

    def _injection_done(self) -> bool:
        return (
            self._target_reached()
            or self.deployment.now - self._started_at >= self.max_duration
        )

    # -- open-loop Poisson arrivals ----------------------------------------

    def start(self) -> None:
        self._started_at = self.deployment.now
        self._sample()
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        self.deployment.scheduler.schedule(
            self._rng.expovariate(self.rate_per_second), self._arrive
        )

    def _arrive(self) -> None:
        if self._injection_done():
            return
        client_id = self._client_ids[self._next_client % len(self._client_ids)]
        self._next_client += 1
        txn = self.generator.generate(1, client_id)[0]
        self.deployment.submit(txn, client_id)
        self.submitted += 1
        self._schedule_next_arrival()

    # -- retained-state sampling -------------------------------------------

    def _sample(self) -> None:
        self.series.record(
            time=self.deployment.now - self._started_at,
            committed_batches=self.deployment.committed_batch_total(),
            gauges=self.deployment.retained_state_totals(),
        )
        if not self._injection_done():
            self.deployment.scheduler.schedule(self.sample_interval, self._sample)

    # -- driving ------------------------------------------------------------

    def run(self, *, check_consistency: bool = True) -> RunResult:
        """Sustain the load until the target stable checkpoint, then drain."""
        started_at = self.deployment.now
        wall_started = _time.perf_counter()
        completed_before = self.deployment.completed_transactions()
        message_counts_before = self.deployment.message_counts()
        cache_stats_before = self.deployment.cache_stats_snapshot()
        self.start()
        self.deployment.backend.run_until(self._target_reached, self.max_duration)
        self.deployment.backend.run_until_time(self.deployment.now + self.drain)
        # One final sample after the drain: in-flight work has settled, so this
        # is the truest picture of steady-state retained memory.
        self._sample()
        return self.deployment.collect_result(
            submitted=self.submitted,
            started_at=started_at,
            wall_started=wall_started,
            completed_before=completed_before,
            message_counts_before=message_counts_before,
            cache_stats_before=cache_stats_before,
            check_consistency=check_consistency,
        )


@dataclass
class PoissonSaturationDriver:
    """Open-loop Poisson injection for a fixed duration at a fixed rate.

    Where :class:`SustainedLoadDriver` runs until a stable-checkpoint target
    (GC experiments), this driver measures *capacity*: inject Poisson
    arrivals at ``rate_per_second`` for ``duration_s`` protocol seconds and
    report the completion rate inside the injection window after a
    ``warmup_s`` ramp.  When the offered rate exceeds the deployment's
    capacity the queue grows and the in-window completion rate plateaus at
    the capacity -- the knee of the sustained-throughput curve.

    Two readings matter and both are taken at the *end of injection*, before
    the drain: :attr:`sustained_tps` (in-window completions per second) and
    :attr:`steady_pipeline_stats` (the proposal-window gauges while the load
    was still applied -- after the drain the pacing EWMAs decay toward the
    idle regime and stop describing the run).
    """

    deployment: Deployment
    generator: "YcsbWorkloadGenerator"
    rate_per_second: float
    duration_s: float
    warmup_s: float = 0.0
    drain_s: float = 10.0
    seed: int = 2022
    submitted: int = 0
    sustained_tps: float = 0.0
    steady_pipeline_stats: dict = field(default_factory=dict)
    _rng: random.Random = field(init=False, repr=False)
    _client_ids: list[str] = field(default_factory=list, repr=False)
    _next_client: int = 0
    _started_at: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ValueError("rate_per_second must be positive")
        if not 0.0 <= self.warmup_s < self.duration_s:
            raise ValueError("warmup_s must lie inside the injection window")
        self._rng = random.Random(self.seed)
        self._client_ids = list(self.deployment.clients)

    def _schedule_next_arrival(self) -> None:
        self.deployment.scheduler.schedule(
            self._rng.expovariate(self.rate_per_second), self._arrive
        )

    def _arrive(self) -> None:
        if self.deployment.now - self._started_at >= self.duration_s:
            return
        client_id = self._client_ids[self._next_client % len(self._client_ids)]
        self._next_client += 1
        txn = self.generator.generate(1, client_id)[0]
        self.deployment.submit(txn, client_id)
        self.submitted += 1
        self._schedule_next_arrival()

    def run(self, *, check_consistency: bool = True) -> RunResult:
        """Inject for ``duration_s``, snapshot steady gauges, drain, report."""
        from repro.metrics.collector import summarize_pipeline

        started_at = self.deployment.now
        wall_started = _time.perf_counter()
        completed_before = self.deployment.completed_transactions()
        message_counts_before = self.deployment.message_counts()
        cache_stats_before = self.deployment.cache_stats_snapshot()
        self._started_at = started_at
        self._schedule_next_arrival()
        self.deployment.backend.run_until_time(started_at + self.duration_s)
        self.steady_pipeline_stats = summarize_pipeline(
            self.deployment.replicas.values()
        )
        self.deployment.backend.run_until_time(self.deployment.now + self.drain_s)
        window_start = started_at + self.warmup_s
        window_end = started_at + self.duration_s
        in_window = sum(
            1
            for client in self.deployment.clients.values()
            for record in client.completed
            if window_start <= record.completed_at <= window_end
        )
        self.sustained_tps = in_window / (window_end - window_start)
        return self.deployment.collect_result(
            submitted=self.submitted,
            started_at=started_at,
            wall_started=wall_started,
            completed_before=completed_before,
            message_counts_before=message_counts_before,
            cache_stats_before=cache_stats_before,
            check_consistency=check_consistency,
        )


def run_sustained_load(
    config,
    *,
    backend: str = "sim",
    replica_class=None,
    rate_per_second: float = 40.0,
    checkpoint_intervals: int = 20,
    num_clients: int = 2,
    batch_size: int = 1,
    seed: int = 2022,
    sample_interval: float = 0.25,
    max_duration: float = 600.0,
    time_scale: float = 0.02,
    gc_enabled: bool = True,
):
    """Build a deployment and sustain Poisson load across checkpoint intervals.

    Returns ``(RunResult, SustainedLoadDriver)`` -- the driver exposes the
    sampled :class:`~repro.metrics.collector.RetainedStateSeries` and the
    stable-checkpoint floor reached.  ``gc_enabled=False`` runs the identical
    workload with checkpoint-driven truncation switched off, which is how
    ``bench_steady_state`` measures the growth GC prevents.
    """
    from repro.core.replica import RingBftReplica
    from repro.workloads.ycsb import YcsbWorkloadGenerator

    deployment = Deployment.build(
        config,
        backend=backend,
        replica_class=replica_class or RingBftReplica,
        num_clients=num_clients,
        batch_size=batch_size,
        seed=seed,
        time_scale=time_scale,
    )
    try:
        deployment.set_gc_enabled(gc_enabled)
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, config.workload, seed=seed
        )
        driver = SustainedLoadDriver(
            deployment,
            generator,
            rate_per_second=rate_per_second,
            checkpoint_intervals=checkpoint_intervals,
            seed=seed,
            sample_interval=sample_interval,
            max_duration=max_duration,
        )
        result = driver.run()
        return result, driver
    finally:
        deployment.close()


def run_protocol_workload(
    config,
    *,
    backend: str = "sim",
    replica_class=None,
    total: int = 12,
    window: int = 2,
    num_clients: int = 2,
    batch_size: int = 1,
    seed: int = 2022,
    timeout: float = 300.0,
    time_scale: float = 0.02,
) -> RunResult:
    """Build a deployment, run a generated closed-loop workload, return the result.

    One-call helper used by the figure modules' protocol-mode validations and
    the CLI demo; honours the ``--backend`` choice end to end.
    """
    from repro.core.replica import RingBftReplica
    from repro.workloads.ycsb import YcsbWorkloadGenerator

    deployment = Deployment.build(
        config,
        backend=backend,
        replica_class=replica_class or RingBftReplica,
        num_clients=num_clients,
        batch_size=batch_size,
        seed=seed,
        time_scale=time_scale,
    )
    try:
        generator = YcsbWorkloadGenerator(
            deployment.table, deployment.directory.ring, config.workload, seed=seed
        )
        driver = WorkloadDriver(deployment, generator, total=total, window=window)
        return driver.run(timeout=timeout)
    finally:
        deployment.close()
